//! Parameter storage and optimizers.

use crate::matrix::Matrix;

/// Handle to a parameter slot in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

/// Owns model parameters and their accumulated gradients across graph
/// rebuilds.
#[derive(Debug, Default, Clone)]
pub struct ParamSet {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter, returning its handle.
    pub fn add(&mut self, value: Matrix) -> ParamId {
        self.grads.push(Matrix::zeros(value.rows, value.cols));
        self.values.push(value);
        ParamId(self.values.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Reset all gradients to zero (call before each backward pass unless
    /// accumulating across a minibatch on purpose).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.clear();
        }
    }

    /// Global L2 norm of all gradients (for clipping / diagnostics).
    pub fn grad_norm(&self) -> f64 {
        self.grads
            .iter()
            .map(|g| g.norm().powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// Clip gradients to a maximum global norm, the standard LSTM-training
    /// safeguard against exploding gradients.
    pub fn clip_grad_norm(&mut self, max_norm: f64) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for g in &mut self.grads {
                for x in g.data_mut() {
                    *x *= scale;
                }
            }
        }
    }

    fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Snapshot all parameter values (registration order) — the checkpoint
    /// payload.
    pub fn export_matrices(&self) -> Vec<Matrix> {
        self.values.clone()
    }

    /// Restore parameter values from a snapshot. The layer structure must
    /// already exist (same count and shapes); gradients are reset.
    pub fn import_matrices(&mut self, matrices: Vec<Matrix>) -> Result<(), String> {
        if matrices.len() != self.values.len() {
            return Err(format!(
                "parameter count mismatch: checkpoint has {}, model has {}",
                matrices.len(),
                self.values.len()
            ));
        }
        for (i, (current, new)) in self.values.iter().zip(&matrices).enumerate() {
            if current.shape() != new.shape() {
                return Err(format!(
                    "parameter {i} shape mismatch: checkpoint {:?}, model {:?}",
                    new.shape(),
                    current.shape()
                ));
            }
        }
        self.values = matrices;
        self.zero_grads();
        Ok(())
    }
}

/// An optimizer updates a [`ParamSet`] from its gradients.
pub trait Optimizer {
    fn step(&mut self, params: &mut ParamSet);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    pub lr: f64,
    pub momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    pub fn new(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0);
        assert!((0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .ids()
                .map(|id| Matrix::zeros(params.value(id).rows, params.value(id).cols))
                .collect();
        }
        for (i, id) in params.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let grad = params.grad(id).clone();
            let v = &mut self.velocity[i];
            for (vx, gx) in v.data_mut().iter_mut().zip(grad.data()) {
                *vx = self.momentum * *vx + gx;
            }
            let v = self.velocity[i].clone();
            params.value_mut(id).add_scaled(&v, -self.lr);
        }
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Debug)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0);
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) {
        if self.m.len() != params.len() {
            self.m = params
                .ids()
                .map(|id| Matrix::zeros(params.value(id).rows, params.value(id).cols))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, id) in params.ids().collect::<Vec<_>>().into_iter().enumerate() {
            let grad = params.grad(id).clone();
            for ((mx, vx), gx) in self.m[i]
                .data_mut()
                .iter_mut()
                .zip(self.v[i].data_mut())
                .zip(grad.data())
            {
                *mx = self.beta1 * *mx + (1.0 - self.beta1) * gx;
                *vx = self.beta2 * *vx + (1.0 - self.beta2) * gx * gx;
            }
            let value = params.value_mut(id);
            for ((x, mx), vx) in value
                .data_mut()
                .iter_mut()
                .zip(self.m[i].data())
                .zip(self.v[i].data())
            {
                let m_hat = mx / bc1;
                let v_hat = vx / bc2;
                *x -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn quadratic_step(params: &mut ParamSet, w: ParamId, target: f64) {
        params.zero_grads();
        let mut g = Graph::new();
        let wv = g.param(params, w);
        let loss = g.mse(wv, Matrix::from_vec(1, 1, vec![target]));
        g.backward(loss, params);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.add(Matrix::from_vec(1, 1, vec![-5.0]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..300 {
            quadratic_step(&mut params, w, 2.0);
            opt.step(&mut params);
        }
        assert!((params.value(w).get(0, 0) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f64, steps: usize| {
            let mut params = ParamSet::new();
            let w = params.add(Matrix::from_vec(1, 1, vec![-5.0]));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..steps {
                quadratic_step(&mut params, w, 2.0);
                opt.step(&mut params);
            }
            (params.value(w).get(0, 0) - 2.0).abs()
        };
        assert!(
            run(0.9, 100) < run(0.0, 100),
            "momentum should be closer after equal steps"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut params = ParamSet::new();
        let w = params.add(Matrix::from_vec(1, 1, vec![50.0]));
        let mut opt = Adam::new(0.5);
        for _ in 0..500 {
            quadratic_step(&mut params, w, -1.0);
            opt.step(&mut params);
        }
        assert!((params.value(w).get(0, 0) + 1.0).abs() < 1e-2);
    }

    #[test]
    fn grad_clipping_bounds_norm() {
        let mut params = ParamSet::new();
        let w = params.add(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        params.grad_mut(w).set(0, 0, 30.0);
        params.grad_mut(w).set(0, 1, 40.0);
        assert_eq!(params.grad_norm(), 50.0);
        params.clip_grad_norm(5.0);
        assert!((params.grad_norm() - 5.0).abs() < 1e-9);
        // Direction preserved.
        let g = params.grad(w);
        assert!((g.get(0, 0) / g.get(0, 1) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn export_import_round_trip() {
        let mut params = ParamSet::new();
        let a = params.add(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = params.add(Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        let snapshot = params.export_matrices();
        params.value_mut(a).set(0, 0, 99.0);
        params.grad_mut(b).set(0, 0, 5.0);
        params.import_matrices(snapshot).expect("shapes match");
        assert_eq!(params.value(a).get(0, 0), 1.0);
        assert_eq!(params.grad(b).get(0, 0), 0.0, "grads reset on import");
    }

    #[test]
    fn import_rejects_mismatches() {
        let mut params = ParamSet::new();
        params.add(Matrix::zeros(2, 2));
        assert!(params.import_matrices(vec![]).is_err(), "count");
        assert!(
            params.import_matrices(vec![Matrix::zeros(3, 2)]).is_err(),
            "shape"
        );
    }

    #[test]
    fn zero_grads_resets() {
        let mut params = ParamSet::new();
        let w = params.add(Matrix::from_vec(1, 1, vec![1.0]));
        params.grad_mut(w).set(0, 0, 7.0);
        params.zero_grads();
        assert_eq!(params.grad(w).get(0, 0), 0.0);
    }
}
