//! Parser traits and shared outcome types.

use monilog_model::{TemplateId, TemplateStore};

/// Result of parsing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOutcome {
    /// The template the message was assigned to.
    pub template: TemplateId,
    /// True if this message caused a brand-new template to be created.
    pub is_new: bool,
    /// Values at the template's variable positions at the time of parsing,
    /// in token order. (Templates can widen later; variables reflect the
    /// template state when the line was parsed, as in streaming deployment.)
    pub variables: Vec<String>,
}

/// Which parser produced an outcome — used by benchmark tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParserKind {
    Drain,
    Spell,
    LenMa,
    Logan,
    Shiso,
    Logram,
    ShardedDrain,
    IpLoM,
    Slct,
}

impl ParserKind {
    pub fn name(self) -> &'static str {
        match self {
            ParserKind::Drain => "Drain",
            ParserKind::Spell => "Spell",
            ParserKind::LenMa => "LenMa",
            ParserKind::Logan => "Logan",
            ParserKind::Shiso => "SHISO",
            ParserKind::Logram => "Logram",
            ParserKind::ShardedDrain => "ShardedDrain",
            ParserKind::IpLoM => "IPLoM",
            ParserKind::Slct => "SLCT",
        }
    }
}

/// A streaming log parser: consumes one message at a time, discovering
/// templates on the job ("online parsing methods can discover new patterns
/// on the job", Section IV).
pub trait OnlineParser {
    /// Parse one message, updating internal state.
    fn parse(&mut self, message: &str) -> ParseOutcome;

    /// The templates discovered so far.
    fn store(&self) -> &TemplateStore;

    /// Parser identity for reports.
    fn kind(&self) -> ParserKind;

    /// Parse a whole slice, returning per-line outcomes. Provided for
    /// benchmarking convenience; semantics identical to repeated `parse`.
    fn parse_all(&mut self, messages: &[&str]) -> Vec<ParseOutcome> {
        messages.iter().map(|m| self.parse(m)).collect()
    }
}

/// A batch log parser: needs the whole corpus up front. The paper rejects
/// these for deployment ("log statement instability made it impossible to
/// collect a representative training set") but benchmarks them as baselines.
pub trait BatchParser {
    /// Parse the corpus, returning one outcome per message (same order).
    fn parse_batch(&mut self, messages: &[&str]) -> Vec<ParseOutcome>;

    /// The templates discovered by the last `parse_batch` call.
    fn store(&self) -> &TemplateStore;

    fn kind(&self) -> ParserKind;
}
