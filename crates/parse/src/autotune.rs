//! Auto-parametrization of Drain via unsupervised quality (Section IV).
//!
//! "We can imagine a component deployed according to the following flow.
//! First, it acquires a fixed quantity of loglines within its environment.
//! Then it calibrates the value of its parameters by estimating its
//! performance using an unsupervised metric. Once it detects the supposed
//! optimal values, it starts parsing logs."
//!
//! [`autotune_drain`] implements exactly that flow: grid-search Drain's two
//! hyper-parameters (tree depth, similarity threshold) and the mask choice
//! on a calibration sample, scoring each candidate with
//! [`crate::eval::unsupervised_quality`], and return the best configuration
//! ready for deployment. Experiment P6 compares it against the
//! supervised-best parameters.

use crate::api::OnlineParser;
use crate::eval::unsupervised::{unsupervised_quality, UnsupervisedReport};
use crate::parsers::drain::{Drain, DrainConfig};
use crate::preprocess::MaskConfig;
use serde::{Deserialize, Serialize};

/// The search space of the calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneGrid {
    pub depths: Vec<usize>,
    pub sim_thresholds: Vec<f64>,
    pub masks: Vec<MaskConfig>,
}

impl Default for TuneGrid {
    fn default() -> Self {
        TuneGrid {
            depths: vec![3, 4, 5],
            sim_thresholds: vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
            masks: vec![
                MaskConfig::NONE,
                MaskConfig::STANDARD,
                MaskConfig::AGGRESSIVE,
            ],
        }
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePoint {
    pub config: DrainConfig,
    pub report: UnsupervisedReport,
}

/// Result of a calibration run: the winner plus the whole grid (for the P6
/// sensitivity table).
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    pub best: TunePoint,
    pub all: Vec<TunePoint>,
}

/// Calibrate Drain on `sample` (the "fixed quantity of loglines"), scoring
/// each grid point by unsupervised quality. `max_pairs` bounds metric
/// sampling (2000 is a good default).
pub fn autotune_drain(sample: &[&str], grid: &TuneGrid, max_pairs: usize) -> TuneResult {
    assert!(!sample.is_empty(), "calibration sample must not be empty");
    let mut all = Vec::new();
    for &depth in &grid.depths {
        for &st in &grid.sim_thresholds {
            for &mask in &grid.masks {
                let config = DrainConfig {
                    depth,
                    sim_threshold: st,
                    mask,
                    ..DrainConfig::default()
                };
                let mut parser = Drain::new(config);
                let labels: Vec<u32> = sample.iter().map(|m| parser.parse(m).template.0).collect();
                let report = unsupervised_quality(sample, &labels, max_pairs);
                all.push(TunePoint { config, report });
            }
        }
    }
    let best = all
        .iter()
        .max_by(|a, b| {
            a.report
                .quality
                .partial_cmp(&b.report.quality)
                .expect("quality is never NaN")
        })
        .expect("grid is non-empty")
        .clone();
    TuneResult { best, all }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_loggen::corpus;

    #[test]
    fn tuned_config_is_from_the_grid() {
        let corpus = corpus::hdfs_like(60, 21);
        let messages: Vec<&str> = corpus.messages().collect();
        let grid = TuneGrid::default();
        let result = autotune_drain(&messages[..300.min(messages.len())], &grid, 500);
        assert!(grid.depths.contains(&result.best.config.depth));
        assert!(grid
            .sim_thresholds
            .iter()
            .any(|&s| (s - result.best.config.sim_threshold).abs() < 1e-12));
        assert_eq!(
            result.all.len(),
            grid.depths.len() * grid.sim_thresholds.len() * grid.masks.len()
        );
    }

    #[test]
    fn tuned_quality_is_grid_maximum() {
        let corpus = corpus::cloud_mixed(8, 31);
        let messages: Vec<&str> = corpus.messages().take(400).collect();
        let result = autotune_drain(&messages, &TuneGrid::default(), 500);
        for p in &result.all {
            assert!(p.report.quality <= result.best.report.quality + 1e-12);
        }
    }

    #[test]
    fn tuned_drain_groups_well_on_held_out_data() {
        // Calibrate on a prefix, evaluate grouping on the rest: the point
        // of P6 is that unsupervised calibration transfers.
        let corpus = corpus::hdfs_like(120, 41);
        let messages: Vec<&str> = corpus.messages().collect();
        let split = messages.len() / 3;
        let result = autotune_drain(&messages[..split], &TuneGrid::default(), 800);

        let mut parser = Drain::new(result.best.config);
        let parsed: Vec<u32> = messages[split..]
            .iter()
            .map(|m| parser.parse(m).template.0)
            .collect();
        let truth: Vec<u32> = corpus.logs[split..]
            .iter()
            .map(|l| l.truth.template.0)
            .collect();
        let ga = crate::eval::grouping_accuracy(&parsed, &truth);
        assert!(ga > 0.8, "auto-tuned Drain only reached GA {ga}");
    }

    #[test]
    #[should_panic(expected = "calibration sample must not be empty")]
    fn empty_sample_panics() {
        autotune_drain(&[], &TuneGrid::default(), 100);
    }
}
