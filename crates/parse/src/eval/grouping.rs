//! Grouping accuracy and pairwise clustering scores.

use std::collections::HashMap;

/// Grouping accuracy (Zhu et al., ICSE-SEIP 2019): a line is correctly
/// parsed iff the set of lines sharing its *parsed* template equals the set
/// of lines sharing its *true* template. Returns the fraction of correctly
/// parsed lines.
///
/// `parsed[i]` and `truth[i]` are the template ids (any integer labeling)
/// of line `i`.
pub fn grouping_accuracy(parsed: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(parsed.len(), truth.len(), "label slices must align");
    if parsed.is_empty() {
        return 1.0;
    }
    let mut parsed_groups: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, &p) in parsed.iter().enumerate() {
        parsed_groups.entry(p).or_default().push(i);
    }
    let mut truth_sizes: HashMap<u32, usize> = HashMap::new();
    for &t in truth {
        *truth_sizes.entry(t).or_default() += 1;
    }
    let mut correct = 0usize;
    for lines in parsed_groups.values() {
        let t0 = truth[lines[0]];
        // The parsed group equals the truth group iff every member shares
        // the same truth label and the truth group has no members outside
        // this parsed group.
        let homogeneous = lines.iter().all(|&i| truth[i] == t0);
        if homogeneous && truth_sizes[&t0] == lines.len() {
            correct += lines.len();
        }
    }
    correct as f64 / parsed.len() as f64
}

/// Pairwise clustering precision / recall / F1.
///
/// Over all unordered line pairs: a *true-positive* pair shares both the
/// parsed and the true template. Softer than [`grouping_accuracy`]: a
/// single stray line does not zero out a whole group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseScores {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Compute pairwise scores via the contingency table (O(n) memory, no
/// quadratic pair enumeration).
pub fn pairwise_scores(parsed: &[u32], truth: &[u32]) -> PairwiseScores {
    assert_eq!(parsed.len(), truth.len());
    let choose2 = |n: usize| (n * n.saturating_sub(1) / 2) as f64;

    let mut cells: HashMap<(u32, u32), usize> = HashMap::new();
    let mut parsed_sizes: HashMap<u32, usize> = HashMap::new();
    let mut truth_sizes: HashMap<u32, usize> = HashMap::new();
    for (&p, &t) in parsed.iter().zip(truth) {
        *cells.entry((p, t)).or_default() += 1;
        *parsed_sizes.entry(p).or_default() += 1;
        *truth_sizes.entry(t).or_default() += 1;
    }
    let tp: f64 = cells.values().map(|&n| choose2(n)).sum();
    let parsed_pairs: f64 = parsed_sizes.values().map(|&n| choose2(n)).sum();
    let truth_pairs: f64 = truth_sizes.values().map(|&n| choose2(n)).sum();

    let precision = if parsed_pairs > 0.0 {
        tp / parsed_pairs
    } else {
        1.0
    };
    let recall = if truth_pairs > 0.0 {
        tp / truth_pairs
    } else {
        1.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PairwiseScores {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_grouping() {
        let labels = [0, 0, 1, 1, 2];
        assert_eq!(grouping_accuracy(&labels, &labels), 1.0);
        let s = pairwise_scores(&labels, &labels);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn relabeling_does_not_matter() {
        let parsed = [7, 7, 3, 3, 9];
        let truth = [0, 0, 1, 1, 2];
        assert_eq!(grouping_accuracy(&parsed, &truth), 1.0);
    }

    #[test]
    fn one_stray_line_zeroes_both_groups_in_ga() {
        // Truth: {0,1,2} and {3,4}. Parser puts line 2 with {3,4}.
        let truth = [0, 0, 0, 1, 1];
        let parsed = [0, 0, 1, 1, 1];
        // Strict GA: every line is wrong (no parsed group equals a truth group).
        assert_eq!(grouping_accuracy(&parsed, &truth), 0.0);
        // Pairwise scores degrade gracefully instead.
        let s = pairwise_scores(&parsed, &truth);
        assert!(s.f1 > 0.0 && s.f1 < 1.0);
    }

    #[test]
    fn split_template_counts_partial() {
        // Truth has one group of 4; parser splits it 2+2, and also has a
        // perfect second group.
        let truth = [0, 0, 0, 0, 1, 1];
        let parsed = [0, 0, 1, 1, 2, 2];
        // The split group is fully wrong, the other fully right.
        assert!((grouping_accuracy(&parsed, &truth) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn over_merging_is_penalized() {
        let truth = [0, 0, 1, 1];
        let parsed = [5, 5, 5, 5];
        assert_eq!(grouping_accuracy(&parsed, &truth), 0.0);
        let s = pairwise_scores(&parsed, &truth);
        assert!(
            s.recall > s.precision,
            "merging keeps recall, kills precision"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(grouping_accuracy(&[], &[]), 1.0);
        let s = pairwise_scores(&[], &[]);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn singletons_everywhere() {
        let truth = [0, 1, 2, 3];
        let parsed = [9, 8, 7, 6];
        assert_eq!(grouping_accuracy(&parsed, &truth), 1.0);
    }

    #[test]
    #[should_panic(expected = "label slices must align")]
    fn mismatched_lengths_panic() {
        grouping_accuracy(&[0], &[0, 1]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// GA and pairwise scores are always in [0,1]; identical labelings
        /// score 1.
        #[test]
        fn bounds(labels in proptest::collection::vec(0u32..6, 0..40),
                  other in proptest::collection::vec(0u32..6, 0..40)) {
            let n = labels.len().min(other.len());
            let (a, b) = (&labels[..n], &other[..n]);
            let ga = grouping_accuracy(a, b);
            prop_assert!((0.0..=1.0).contains(&ga));
            let s = pairwise_scores(a, b);
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f1));
            prop_assert_eq!(grouping_accuracy(a, a), 1.0);
        }

        /// GA is symmetric in parsed/truth (group equality is symmetric).
        #[test]
        fn ga_symmetric(a in proptest::collection::vec(0u32..5, 1..30),
                        b in proptest::collection::vec(0u32..5, 1..30)) {
            let n = a.len().min(b.len());
            prop_assert_eq!(
                grouping_accuracy(&a[..n], &b[..n]),
                grouping_accuracy(&b[..n], &a[..n])
            );
        }
    }
}
