//! Parser evaluation metrics (Section IV).
//!
//! - [`grouping`] — the literature's reference metric ("log messages L1 &
//!   L3 are considered correctly classified if they are identified as
//!   coming from the same log class") plus pairwise precision/recall.
//! - [`token_acc`] — **the paper's Eq. 1**: token-level accuracy of the
//!   static/variable split, "to evaluate whether the static and variable
//!   parts of a log message are correctly identified".
//! - [`unsupervised`] — label-free quality estimates ("unsupervised metrics
//!   open promising perspectives for auto-parametrizing log parsers"),
//!   consumed by [`crate::autotune`].

pub mod grouping;
pub mod token_acc;
pub mod unsupervised;

pub use grouping::{grouping_accuracy, pairwise_scores, PairwiseScores};
pub use token_acc::{classify_tokens, token_accuracy, TokenAccuracyInput, TokenPrediction};
pub use unsupervised::{unsupervised_quality, UnsupervisedReport};
