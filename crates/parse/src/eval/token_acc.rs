//! The paper's Eq. 1: token-level parsing accuracy.
//!
//! "We would like to propose a metric to evaluate whether the static and
//! variable parts of a log message are correctly identified. [...]
//! Considering a pool of n parsed loglines, l_i represents the number of
//! tokens within logline i, t_j the value of the j-th token (static or
//! variable), and T_j the expected value of the j-th token."
//!
//! ```text
//!   (1/n) Σ_i (1/l_i) Σ_j  [ t_j == T_j ]
//! ```
//!
//! A parsed token is correct when the parser classified it as the ground
//! truth says: a *static* token must be kept literally (same text), a
//! *variable* token must be wildcarded. Grouping accuracy cannot see the
//! difference ("detection [of quantitative anomalies] is only possible if
//! the variable parts were correctly identified") — this metric can.

use monilog_model::{Template, TemplateToken};

/// The parser's decision for one message token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenPrediction {
    /// Template kept the token static and the text matches.
    StaticMatch,
    /// Template kept a static token whose text does NOT match the message —
    /// wrong whichever way the truth goes (`t_j` equals neither a correct
    /// literal nor a wildcard).
    StaticMismatch,
    /// Template wildcards the position.
    Variable,
}

/// Per-line input to the Eq. 1 metric.
#[derive(Debug, Clone)]
pub struct TokenAccuracyInput<'a> {
    /// The message's whitespace tokens.
    pub tokens: Vec<&'a str>,
    /// Ground truth: `true` at static positions, `false` at variable ones.
    pub truth_static: Vec<bool>,
    /// The template the parser assigned to this line (its *final* state,
    /// as read back from the parser's store after the run).
    pub template: &'a Template,
}

/// Classify each message token as static/variable according to `template`.
///
/// When the template has the same token count as the message, the mapping
/// is positional. When it differs (LCS-style parsers collapse wildcard
/// runs), static template tokens are aligned to message tokens by longest
/// common subsequence and everything unmatched counts as variable.
pub fn classify_tokens(template: &Template, tokens: &[&str]) -> Vec<TokenPrediction> {
    if template.tokens.len() == tokens.len() {
        return template
            .tokens
            .iter()
            .zip(tokens)
            .map(|(t, tok)| match t {
                TemplateToken::Static(s) if s == tok => TokenPrediction::StaticMatch,
                TemplateToken::Static(_) => TokenPrediction::StaticMismatch,
                TemplateToken::Wildcard => TokenPrediction::Variable,
            })
            .collect();
    }
    // LCS alignment of template statics to the message tokens.
    let statics: Vec<&str> = template
        .tokens
        .iter()
        .filter_map(|t| match t {
            TemplateToken::Static(s) => Some(s.as_str()),
            TemplateToken::Wildcard => None,
        })
        .collect();
    let n = statics.len();
    let m = tokens.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 0..n {
        for j in 0..m {
            dp[i + 1][j + 1] = if statics[i] == tokens[j] {
                dp[i][j] + 1
            } else {
                dp[i][j + 1].max(dp[i + 1][j])
            };
        }
    }
    let mut out = vec![TokenPrediction::Variable; m];
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        if statics[i - 1] == tokens[j - 1] {
            out[j - 1] = TokenPrediction::StaticMatch;
            i -= 1;
            j -= 1;
        } else if dp[i - 1][j] >= dp[i][j - 1] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    out
}

/// Eq. 1 over a pool of parsed lines. Lines with zero tokens are skipped
/// (they contribute no token decisions). Returns a value in [0, 1]; an
/// empty pool scores 1.
pub fn token_accuracy(lines: &[TokenAccuracyInput<'_>]) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for line in lines {
        let l = line.tokens.len();
        if l == 0 {
            continue;
        }
        assert_eq!(
            line.truth_static.len(),
            l,
            "ground truth must align with tokens"
        );
        let predicted = classify_tokens(line.template, &line.tokens);
        let correct = predicted
            .iter()
            .zip(&line.truth_static)
            .filter(|(p, truth_static)| match p {
                TokenPrediction::StaticMatch => **truth_static,
                TokenPrediction::StaticMismatch => false,
                TokenPrediction::Variable => !**truth_static,
            })
            .count();
        total += correct as f64 / l as f64;
        counted += 1;
    }
    if counted == 0 {
        1.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_model::TemplateId;

    fn template(pattern: &str) -> Template {
        Template::from_pattern(TemplateId(0), pattern)
    }

    #[test]
    fn perfect_line_scores_one() {
        let t = template("Sending <*> bytes src: <*> dest: <*>");
        let tokens: Vec<&str> = "Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53"
            .split_whitespace()
            .collect();
        let truth = vec![true, false, true, true, false, true, false];
        let input = TokenAccuracyInput {
            tokens,
            truth_static: truth,
            template: &t,
        };
        assert_eq!(token_accuracy(&[input]), 1.0);
    }

    #[test]
    fn overgeneralized_template_loses_static_tokens() {
        // Parser wildcarded "bytes" although it is static: 1 of 7 wrong.
        let t = template("Sending <*> <*> src: <*> dest: <*>");
        let tokens: Vec<&str> = "Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53"
            .split_whitespace()
            .collect();
        let truth = vec![true, false, true, true, false, true, false];
        let input = TokenAccuracyInput {
            tokens,
            truth_static: truth,
            template: &t,
        };
        assert!((token_accuracy(&[input]) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn undergeneralized_template_misses_variables() {
        // Parser kept the byte count literal: correct grouping is possible
        // but the quantitative variable was NOT extracted — Eq. 1 sees it.
        let t = template("Sending 138 bytes src: <*> dest: <*>");
        let tokens: Vec<&str> = "Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53"
            .split_whitespace()
            .collect();
        let truth = vec![true, false, true, true, false, true, false];
        let input = TokenAccuracyInput {
            tokens,
            truth_static: truth,
            template: &t,
        };
        assert!((token_accuracy(&[input]) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_static_text_is_wrong_even_if_classified_static() {
        // Template says "Transmitting" where the message says "Sending":
        // a positional static with mismatching text cannot be correct.
        let t = template("Transmitting <*> bytes");
        let tokens = vec!["Sending", "138", "bytes"];
        let truth = vec![true, false, true];
        let input = TokenAccuracyInput {
            tokens,
            truth_static: truth,
            template: &t,
        };
        assert!((token_accuracy(&[input]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn collapsed_wildcard_template_aligns_by_lcs() {
        // A Spell-style template with one collapsed wildcard run and 4
        // message tokens: "job <*> done".
        let t = template("job <*> done");
        let tokens = vec!["job", "alpha", "beta", "done"];
        let truth = vec![true, false, false, true];
        let input = TokenAccuracyInput {
            tokens,
            truth_static: truth,
            template: &t,
        };
        assert_eq!(token_accuracy(&[input]), 1.0);
    }

    #[test]
    fn averaging_over_lines_matches_eq1() {
        // Line 1 scores 1.0 (1 token), line 2 scores 0.5 (2 tokens):
        // Eq. 1 averages per-line scores → 0.75 (not 2/3 as a flat token
        // average would give).
        let t1 = template("tick");
        let t2 = template("a b");
        let l1 = TokenAccuracyInput {
            tokens: vec!["tick"],
            truth_static: vec![true],
            template: &t1,
        };
        let l2 = TokenAccuracyInput {
            tokens: vec!["a", "x"],
            truth_static: vec![true, false],
            template: &t2,
        };
        assert!((token_accuracy(&[l1, l2]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_scores_one() {
        assert_eq!(token_accuracy(&[]), 1.0);
    }

    #[test]
    fn zero_token_lines_are_skipped() {
        let t = template("a");
        let empty = TokenAccuracyInput {
            tokens: vec![],
            truth_static: vec![],
            template: &t,
        };
        let full = TokenAccuracyInput {
            tokens: vec!["a"],
            truth_static: vec![true],
            template: &t,
        };
        assert_eq!(token_accuracy(&[empty, full]), 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use monilog_model::TemplateId;
    use proptest::prelude::*;

    proptest! {
        /// Eq. 1 is always within [0,1].
        #[test]
        fn bounded(tokens in proptest::collection::vec("[a-c]{1,3}", 1..8),
                   truth in proptest::collection::vec(any::<bool>(), 8),
                   pattern in proptest::collection::vec(prop_oneof![Just("<*>"), Just("a"), Just("bb")], 1..8)) {
            let t = Template::from_pattern(
                TemplateId(0),
                &pattern.join(" "),
            );
            let refs: Vec<&str> = tokens.iter().map(String::as_str).collect();
            let input = TokenAccuracyInput {
                truth_static: truth[..refs.len()].to_vec(),
                tokens: refs,
                template: &t,
            };
            let acc = token_accuracy(&[input]);
            prop_assert!((0.0..=1.0).contains(&acc));
        }

        /// A template that exactly reproduces the truth scores 1.
        #[test]
        fn exact_template_scores_one(spec in proptest::collection::vec(
            prop_oneof![Just(("lit", true)), Just(("<*>", false))], 1..10)) {
            let pattern: Vec<&str> = spec.iter().map(|(p, _)| *p).collect();
            let t = Template::from_pattern(TemplateId(0), &pattern.join(" "));
            let tokens: Vec<&str> = spec
                .iter()
                .map(|(p, is_static)| if *is_static { *p } else { "9234" })
                .collect();
            let truth: Vec<bool> = spec.iter().map(|(_, s)| *s).collect();
            let input = TokenAccuracyInput { tokens, truth_static: truth, template: &t };
            prop_assert_eq!(token_accuracy(&[input]), 1.0);
        }
    }
}
