//! Unsupervised parsing-quality estimation.
//!
//! "Unsupervised metrics open promising perspectives for auto-parametrizing
//! log parsers. We can imagine a component deployed according to the
//! following flow: first, it acquires a fixed quantity of loglines within
//! its environment; then it calibrates the value of its parameters by
//! estimating its performance using an unsupervised metric." (Section IV)
//!
//! The estimator reports four label-free signals — *coverage* (fraction of
//! lines in multi-member templates), *cohesion* (within-template token
//! similarity), *separation* (cross-template similarity) and the template
//! count — and a composite `quality = coverage − separation` used as the
//! auto-tuning objective. The composite was selected empirically by the
//! metric-pertinence study (experiment A2): it picks the best grid point
//! on every benchmark corpus, while cohesion-based composites mis-rank
//! because heavier masking *lowers* cohesion yet raises true accuracy.
//! Both degenerate parsings fail it: merge-everything has worst-case
//! separation (defined as 1 when no cross pairs exist); split-everything
//! has zero coverage. Sampling is deterministic (internal xorshift) so the
//! score is reproducible.

use std::collections::HashMap;

/// Label-free quality report for one parsing of a corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnsupervisedReport {
    /// Number of distinct templates produced.
    pub template_count: usize,
    /// Fraction of lines whose template has at least two members. A
    /// parsing that shatters the corpus into singletons "explains" nothing.
    pub coverage: f64,
    /// Mean token similarity of same-template line pairs (line-weighted).
    pub cohesion: f64,
    /// Mean token similarity of cross-template line pairs.
    pub separation: f64,
    /// The composite tuning objective `coverage − separation`.
    pub quality: f64,
}

/// Token-level similarity of two messages: positional equality ratio when
/// lengths match, otherwise a token-multiset Jaccard index.
fn line_similarity(a: &[&str], b: &[&str]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.len() == b.len() {
        let eq = a.iter().zip(b).filter(|(x, y)| x == y).count();
        return eq as f64 / a.len() as f64;
    }
    let mut counts: HashMap<&str, i64> = HashMap::new();
    for t in a {
        *counts.entry(t).or_default() += 1;
    }
    let mut inter = 0i64;
    for t in b {
        let c = counts.entry(t).or_default();
        if *c > 0 {
            inter += 1;
            *c -= 1;
        }
    }
    let union = (a.len() + b.len()) as i64 - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Deterministic xorshift64* generator — no external RNG dependency in the
/// library; scores must be reproducible across runs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Estimate parsing quality without labels.
///
/// `messages[i]` was assigned template label `labels[i]`. `max_pairs`
/// bounds the sampled pair count per side (cohesion / separation); 2000 is
/// plenty for stable estimates.
pub fn unsupervised_quality(
    messages: &[&str],
    labels: &[u32],
    max_pairs: usize,
) -> UnsupervisedReport {
    assert_eq!(
        messages.len(),
        labels.len(),
        "labels must align with messages"
    );
    let tokenized: Vec<Vec<&str>> = messages
        .iter()
        .map(|m| m.split_whitespace().collect())
        .collect();
    let mut groups: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, &l) in labels.iter().enumerate() {
        groups.entry(l).or_default().push(i);
    }
    let template_count = groups.len();
    // Lines living in multi-member groups, used both for coverage and for
    // line-weighted cohesion sampling (group-uniform sampling would let a
    // swarm of small, artificially-tight groups dominate the estimate).
    let covered_lines: Vec<usize> = groups
        .values()
        .filter(|g| g.len() >= 2)
        .flat_map(|g| g.iter().copied())
        .collect();
    let coverage = if messages.is_empty() {
        1.0
    } else {
        covered_lines.len() as f64 / messages.len() as f64
    };

    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);

    // Cohesion: pairs within a template, sampled line-first.
    let mut cohesion_sum = 0.0;
    let mut cohesion_n = 0usize;
    if !covered_lines.is_empty() {
        for _ in 0..max_pairs {
            let i = covered_lines[rng.below(covered_lines.len())];
            let g = &groups[&labels[i]];
            let mut j = g[rng.below(g.len())];
            if i == j {
                j = g[(g.iter().position(|&x| x == i).expect("member") + 1) % g.len()];
            }
            if i == j {
                continue;
            }
            cohesion_sum += line_similarity(&tokenized[i], &tokenized[j]);
            cohesion_n += 1;
        }
    }
    // A parsing with only singleton groups has undefined cohesion; treat it
    // as 0 so singleton-everything never wins the tuning search.
    let cohesion = if cohesion_n > 0 {
        cohesion_sum / cohesion_n as f64
    } else {
        0.0
    };

    // Separation: pairs across templates.
    let mut separation_sum = 0.0;
    let mut separation_n = 0usize;
    if template_count >= 2 && messages.len() >= 2 {
        for _ in 0..max_pairs {
            let i = rng.below(messages.len());
            let j = rng.below(messages.len());
            if labels[i] == labels[j] {
                continue;
            }
            separation_sum += line_similarity(&tokenized[i], &tokenized[j]);
            separation_n += 1;
        }
    }
    // One giant template has no cross pairs: call separation 1 (worst), so
    // merge-everything never wins either.
    let separation = if separation_n > 0 {
        separation_sum / separation_n as f64
    } else if template_count <= 1 && messages.len() > 1 {
        1.0
    } else {
        0.0
    };

    UnsupervisedReport {
        template_count,
        coverage,
        cohesion,
        separation,
        quality: coverage - separation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_similarity_positional() {
        assert_eq!(line_similarity(&["a", "b"], &["a", "b"]), 1.0);
        assert_eq!(line_similarity(&["a", "b"], &["a", "c"]), 0.5);
        assert_eq!(line_similarity(&[], &[]), 1.0);
    }

    #[test]
    fn line_similarity_jaccard_for_mixed_lengths() {
        // {a,b,c} vs {a,b}: intersection 2, union 3.
        assert!((line_similarity(&["a", "b", "c"], &["a", "b"]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn good_parsing_beats_degenerate_ones() {
        // Two obvious templates with variable middles.
        let messages: Vec<String> = (0..40)
            .map(|i| {
                if i % 2 == 0 {
                    format!("open file f{i} ok")
                } else {
                    format!("send packet p{i} to host")
                }
            })
            .collect();
        let refs: Vec<&str> = messages.iter().map(String::as_str).collect();

        let good: Vec<u32> = (0..40).map(|i| (i % 2) as u32).collect();
        let merged = vec![0u32; 40];
        let singleton: Vec<u32> = (0..40).collect();

        let q_good = unsupervised_quality(&refs, &good, 2000).quality;
        let q_merged = unsupervised_quality(&refs, &merged, 2000).quality;
        let q_single = unsupervised_quality(&refs, &singleton, 2000).quality;

        assert!(q_good > q_merged, "good {q_good} vs merged {q_merged}");
        assert!(q_good > q_single, "good {q_good} vs singleton {q_single}");
    }

    #[test]
    fn report_fields_are_consistent() {
        let refs = vec!["a b", "a c", "x y", "x z"];
        let labels = vec![0, 0, 1, 1];
        let r = unsupervised_quality(&refs, &labels, 500);
        assert_eq!(r.template_count, 2);
        assert_eq!(r.coverage, 1.0);
        assert!((r.quality - (r.coverage - r.separation)).abs() < 1e-12);
        assert!(r.cohesion > r.separation);
    }

    #[test]
    fn deterministic() {
        let refs = vec!["a b", "a c", "x y", "x z", "a d"];
        let labels = vec![0, 0, 1, 1, 0];
        let r1 = unsupervised_quality(&refs, &labels, 1000);
        let r2 = unsupervised_quality(&refs, &labels, 1000);
        assert_eq!(r1, r2);
    }

    #[test]
    fn coverage_punishes_singleton_explosions() {
        let messages: Vec<String> = (0..30).map(|i| format!("beat n{i} ok")).collect();
        let refs: Vec<&str> = messages.iter().map(String::as_str).collect();
        let grouped = vec![0u32; 30];
        let singles: Vec<u32> = (0..30).collect();
        let half: Vec<u32> = (0..30).map(|i| if i < 15 { 0 } else { i }).collect();
        let q_grouped = unsupervised_quality(&refs, &grouped, 1000);
        let q_half = unsupervised_quality(&refs, &half, 1000);
        let q_singles = unsupervised_quality(&refs, &singles, 1000);
        assert_eq!(q_grouped.coverage, 1.0);
        assert_eq!(q_half.coverage, 0.5);
        assert_eq!(q_singles.coverage, 0.0);
        assert!(q_grouped.quality > q_half.quality);
        assert!(q_half.quality > q_singles.quality || q_singles.quality <= 0.0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let r = unsupervised_quality(&[], &[], 100);
        assert_eq!(r.template_count, 0);
        let r = unsupervised_quality(&["solo line"], &[0], 100);
        assert_eq!(r.template_count, 1);
    }
}
