//! # monilog-parse
//!
//! The parsing component of MoniLog (Fig. 1, step 1) and the full panel of
//! log parsers the paper surveys and plans to benchmark (Section IV).
//!
//! "The MESSAGE field is composed of a static part (template) and of a
//! variable part (variables). The log parsing challenge lies within the
//! discovery of those two parts."
//!
//! ## Online parsers ([`OnlineParser`])
//! - [`parsers::drain::Drain`] — fixed-depth parse tree (He et al., ICWS'17);
//!   the paper's reference for "the most efficient existing parsing solution".
//! - [`parsers::spell::Spell`] — LCS-based streaming parser (Du & Li, ICDM'16).
//! - [`parsers::lenma::LenMa`] — word-length clustering (Shima, 2016).
//! - [`parsers::logan::Logan`] — distributed multi-agent parsing with
//!   periodic pattern reconciliation (Agrawal et al., ICDE 2019).
//! - [`parsers::shiso::Shiso`] — incremental tree mining (Mizutani, SCC'13).
//! - [`parsers::logram::Logram`] — n-gram dictionaries (Dai et al., 2020).
//! - [`parsers::sharded::ShardedDrain`] — the paper's planned contribution: a
//!   distributable research-tree parser.
//!
//! ## Batch parsers ([`BatchParser`])
//! - [`parsers::iplom::IpLoM`] — iterative partitioning (Makanju et al., KDD'09).
//! - [`parsers::slct::Slct`] — frequent-token clustering (Vaarandi, IPOM'03).
//!
//! ## Evaluation ([`eval`])
//! - grouping accuracy (the literature's reference metric),
//! - the paper's **Eq. 1 token accuracy** (static/variable recovery),
//! - unsupervised quality metrics (Section IV's auto-parametrization idea),
//!   driving [`autotune`].
//!
//! ## Preprocessing ([`preprocess`])
//! Mask-based variable hinting (numbers, IPs, hex ids, paths) implemented as
//! hand-rolled scanners — no regex engine on the hot path.

pub mod autotune;
pub mod eval;
pub mod parsers;
pub mod preprocess;
pub mod route;

mod api;

pub use api::{BatchParser, OnlineParser, ParseOutcome, ParserKind};
pub use parsers::drain::{Drain, DrainConfig};
pub use parsers::iplom::{IpLoM, IpLoMConfig};
pub use parsers::lenma::{LenMa, LenMaConfig};
pub use parsers::logan::{Logan, LoganConfig};
pub use parsers::logram::{Logram, LogramConfig};
pub use parsers::sharded::{ShardedDrain, ShardedDrainConfig};
pub use parsers::shiso::{Shiso, ShisoConfig};
pub use parsers::slct::{Slct, SlctConfig};
pub use parsers::spell::{Spell, SpellConfig};
pub use preprocess::{MaskConfig, Preprocessor};
pub use route::{BalancedRouter, BalancedRouterConfig, SplitEvent};
