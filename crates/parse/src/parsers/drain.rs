//! Drain: online log parsing with a fixed-depth tree (He et al., ICWS 2017).
//!
//! The paper singles Drain out: "According to recent studies, Drain is the
//! most efficient existing parsing solution" — and identifies its two
//! automation limits, which experiments P4/P6 quantify:
//! 1. accuracy is influenced by preprocessing, and
//! 2. its two hyper-parameters (tree depth and similarity threshold) have a
//!    significant impact on precision.
//!
//! Structure: a prefix tree of fixed depth. Level 1 groups by token count;
//! the next `depth - 2` levels route by the first message tokens (tokens
//! containing digits route to a `<*>` child; full nodes overflow to `<*>`);
//! leaves hold template groups compared by token-wise similarity.

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{CodecError, Decoder, Encoder, TemplateId, TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Drain hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrainConfig {
    /// Total tree depth. The classic setting is 4: root → length →
    /// (depth-2) token levels → leaf.
    pub depth: usize,
    /// Similarity threshold `st` in `[0,1]`: a message joins the best group
    /// if the fraction of matching static tokens reaches `st`.
    pub sim_threshold: f64,
    /// Maximum children per internal node before overflowing to `<*>`.
    pub max_children: usize,
    /// Preprocessing masks.
    pub mask: MaskConfig,
    /// Maximum entries in the match cache (0 disables it). The cache
    /// memoizes *pure* matches — masked shape → template, no widening —
    /// and is flushed whole on any tree or store mutation, so it can
    /// never change parse output (see `MatchCache`).
    pub cache_capacity: usize,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            depth: 4,
            sim_threshold: 0.4,
            max_children: 100,
            mask: MaskConfig::STANDARD,
            cache_capacity: 4096,
        }
    }
}

#[derive(Debug, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// Template groups at this leaf (only non-empty at leaf depth).
    groups: Vec<TemplateId>,
}

/// FNV-1a as a `Hasher`, for the cache's token interner and id-keyed
/// map. The default SipHash is hardened against adversarial keys, which
/// the hot path does not need; FNV halves the per-lookup hashing cost.
#[derive(Debug, Default, Clone)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = h;
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

/// Stop growing the interner past this many distinct tokens — shapes
/// containing tokens beyond the cap simply never cache (graceful
/// degradation, bounded memory).
const MAX_INTERNED_TOKENS: usize = 1 << 20;

/// Memoized template matches in front of the tree walk.
///
/// Log streams are massively repetitive: once a template stabilizes,
/// every further line of it walks the same tree path, scans the same
/// leaf groups, and widens nothing. The cache short-circuits that whole
/// sequence to one hash-map probe.
///
/// The probe is keyed on *interned token ids*, not on the token strings:
/// each distinct masked token is assigned a stable `u32` once, so a
/// lookup resolves the line's tokens to ids (one cheap map probe per
/// token), then probes the cache with the id slice. Key equality is
/// exact `[u32]` comparison — no joined-string rebuild, no per-hit
/// string re-verification, and hash collisions are impossible to confuse
/// with hits. A token never seen by the interner is a guaranteed miss
/// and short-circuits before any hashing of the remaining tokens.
///
/// Output-invisibility argument (enforced by the differential proptest
/// in `tests/cache_differential.rs`):
/// - an entry is installed only for a *pure* match — similarity above
///   threshold, zero positions widened, no new template minted — so a
///   hit replays a parse whose result is a pure function of frozen
///   parser state;
/// - *any* mutation (template widened, template minted) flushes the
///   entire entry map, so no entry can outlive the state it memoized
///   (the interner survives flushes: token ids are stable names, not
///   memoized state);
/// - variables are re-extracted from the *current* line at the
///   template's wildcard positions — lines with equal masked shape still
///   differ in their raw variable tokens.
///
/// Respawn coherence comes for free: `Drain::warm_start` builds a fresh
/// parser, and a fresh parser has an empty cache.
#[derive(Debug, Default)]
struct MatchCache {
    /// Masked token → stable id. Never flushed; capped at
    /// [`MAX_INTERNED_TOKENS`].
    interner: HashMap<Box<str>, u32, FnvBuild>,
    /// Interned-id shape → memoized pure match.
    map: HashMap<Box<[u32]>, CacheEntry, FnvBuild>,
    /// Reused id buffer so lookups never allocate.
    scratch: Vec<u32>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    template: TemplateId,
    /// Wildcard positions of the template at install time.
    wildcards: Box<[u32]>,
}

impl MatchCache {
    /// Probe for a memoized pure match. Counts the hit/miss either way.
    fn lookup(&mut self, masked: &[&str]) -> Option<(TemplateId, &[u32])> {
        self.scratch.clear();
        for tok in masked {
            match self.interner.get(*tok) {
                Some(&id) => self.scratch.push(id),
                None => {
                    // Unknown token: no installed shape can contain it.
                    self.misses += 1;
                    return None;
                }
            }
        }
        match self.map.get(self.scratch.as_slice()) {
            Some(entry) => {
                self.hits += 1;
                Some((entry.template, &entry.wildcards))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn install(
        &mut self,
        capacity: usize,
        masked: &[&str],
        gid: TemplateId,
        store: &TemplateStore,
    ) {
        if self.map.len() >= capacity {
            return;
        }
        self.scratch.clear();
        for tok in masked {
            match self.interner.get(*tok) {
                Some(&id) => self.scratch.push(id),
                None => {
                    if self.interner.len() >= MAX_INTERNED_TOKENS {
                        return; // shape not cacheable; parse stays correct
                    }
                    let id = self.interner.len() as u32;
                    self.interner.insert((*tok).into(), id);
                    self.scratch.push(id);
                }
            }
        }
        let template = store.get(gid).expect("cached ids are valid");
        let wildcards = template
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_wildcard())
            .map(|(i, _)| i as u32)
            .collect();
        self.map.insert(
            self.scratch.as_slice().into(),
            CacheEntry {
                template: gid,
                wildcards,
            },
        );
    }

    /// Drop every memoized match: the parser state an entry memoized no
    /// longer exists. Coarse by design — mutations are rare once
    /// templates plateau, and per-entry invalidation would need to know
    /// which shapes a widened template *could* now match. The interner is
    /// deliberately kept: ids are stable names for tokens, not state.
    fn flush(&mut self) {
        self.map.clear();
    }
}

/// The Drain parser.
#[derive(Debug)]
pub struct Drain {
    config: DrainConfig,
    pre: Preprocessor,
    /// Root children keyed by token count.
    by_len: HashMap<usize, Node>,
    store: TemplateStore,
    cache: MatchCache,
    /// Lines parsed so far (for diagnostics/benchmarks).
    lines: u64,
    /// Whether the most recent `parse` was served from the match cache —
    /// the per-line span hook behind trace provenance (`cache_stats` only
    /// gives totals).
    last_cache_hit: bool,
    /// Recycled tokenization buffers (see `parse`): always empty between
    /// calls, so the `'static` lifetime is never inhabited by live data.
    scratch_spans: Vec<crate::preprocess::TokenSpan>,
    scratch_masked: Vec<&'static str>,
    scratch_original: Vec<&'static str>,
}

impl Drain {
    pub fn new(config: DrainConfig) -> Self {
        assert!(
            config.depth >= 3,
            "depth must be at least 3 (root, length, leaf)"
        );
        assert!(
            (0.0..=1.0).contains(&config.sim_threshold),
            "similarity threshold must be in [0,1]"
        );
        assert!(
            config.max_children >= 2,
            "need at least two children per node"
        );
        Drain {
            pre: Preprocessor::new(config.mask),
            config,
            by_len: HashMap::new(),
            store: TemplateStore::new(),
            cache: MatchCache::default(),
            lines: 0,
            last_cache_hit: false,
            scratch_spans: Vec::new(),
            scratch_masked: Vec::new(),
            scratch_original: Vec::new(),
        }
    }

    pub fn config(&self) -> &DrainConfig {
        &self.config
    }

    /// Rebuild a parser from a persisted template store (see
    /// `TemplateStore::encode`): every template is routed back into the
    /// tree by its own tokens, so the warm-started parser assigns the
    /// *same ids* to known log lines as the original instance did — the
    /// restart contract a deployed pipeline needs (detectors key on ids).
    ///
    /// Group order inside a leaf follows id order, which can differ from
    /// the original discovery order; this only affects tie-breaks between
    /// equally-similar groups.
    pub fn warm_start(config: DrainConfig, store: TemplateStore) -> Self {
        let mut drain = Drain::new(config);
        for template in store.iter() {
            let masked: Vec<&str> = template.tokens.iter().map(|t| t.as_str()).collect();
            let leaf = Self::leaf_mut(&mut drain.by_len, &drain.config, &masked);
            leaf.groups.push(template.id);
        }
        drain.store = store;
        drain
    }

    /// Insert an already-discovered template into the tree — the handoff
    /// path when a hot routing key splits to a new shard replica (see
    /// `ShardedDrain`): the receiving shard learns the key's templates up
    /// front so it groups the key's lines exactly as the source shard
    /// does from the very first line. Returns the local id (the existing
    /// one if the pattern is already known). A tree mutation, so the
    /// match cache is flushed.
    pub fn adopt(&mut self, tokens: &[TemplateToken]) -> TemplateId {
        let before = self.store.len();
        let id = self.store.intern(tokens.to_vec());
        if self.store.len() > before {
            let masked: Vec<&str> = tokens.iter().map(|t| t.as_str()).collect();
            let leaf = Self::leaf_mut(&mut self.by_len, &self.config, &masked);
            leaf.groups.push(id);
            self.cache.flush();
        }
        id
    }

    /// Number of lines parsed so far.
    pub fn lines_parsed(&self) -> u64 {
        self.lines
    }

    /// Serialize parser state for the durable checkpoint: the template
    /// store plus the parsed-line counter. The tree and match cache are
    /// derived state — [`Drain::import_state`] rebuilds the tree via
    /// [`Drain::warm_start`] and starts with a cold cache.
    pub fn export_state(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(*b"DRNS", 1);
        e.put_bytes(&self.store.encode());
        e.put_u64(self.lines);
        e.finish()
    }

    /// Rebuild a parser from [`Drain::export_state`] bytes. Known lines
    /// map to the same template ids as in the exporting instance.
    pub fn import_state(config: DrainConfig, bytes: &[u8]) -> Result<Drain, CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_header(*b"DRNS", 1)?;
        let store_bytes = d.get_bytes()?;
        let lines = d.get_u64()?;
        if !d.is_exhausted() {
            return Err(CodecError::Corrupt("trailing bytes after drain state"));
        }
        let store = TemplateStore::decode(&store_bytes)?;
        let mut drain = Drain::warm_start(config, store);
        drain.lines = lines;
        Ok(drain)
    }

    /// Internal cache occupancy `(interned tokens, memoized shapes)` —
    /// diagnostics for capacity tuning.
    pub fn cache_debug(&self) -> (usize, usize) {
        (self.cache.interner.len(), self.cache.map.len())
    }

    /// `(hits, misses)` of the match cache so far. Misses count every
    /// cache-enabled parse that fell through to the tree walk.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits, self.cache.misses)
    }

    /// Entries currently memoized.
    pub fn cache_len(&self) -> usize {
        self.cache.map.len()
    }

    /// Whether the most recent [`OnlineParser::parse`] call hit the match
    /// cache (`false` before the first parse).
    pub fn last_parse_cache_hit(&self) -> bool {
        self.last_cache_hit
    }

    /// Similarity of `template` to `tokens`: fraction of positions where a
    /// static template token equals the message token. Also returns the
    /// template's wildcard count (used to break ties toward more general
    /// templates, as in the reference implementation).
    fn seq_dist(template: &[TemplateToken], tokens: &[&str]) -> (f64, usize) {
        debug_assert_eq!(template.len(), tokens.len());
        if template.is_empty() {
            return (1.0, 0);
        }
        let mut sim = 0usize;
        let mut wildcards = 0usize;
        for (t, tok) in template.iter().zip(tokens) {
            match t {
                TemplateToken::Wildcard => wildcards += 1,
                TemplateToken::Static(s) => {
                    if s == tok {
                        sim += 1;
                    }
                }
            }
        }
        (sim as f64 / template.len() as f64, wildcards)
    }

    /// Route to the leaf for `masked`, creating internal nodes as needed.
    /// Takes the tree by field so the caller can keep using the template
    /// store while holding the returned leaf borrow.
    fn leaf_mut<'t>(
        by_len: &'t mut HashMap<usize, Node>,
        config: &DrainConfig,
        masked: &[&str],
    ) -> &'t mut Node {
        let mut node = by_len.entry(masked.len()).or_default();
        let internal_levels = config.depth - 2;
        for level in 0..internal_levels {
            let Some(token) = masked.get(level) else {
                break;
            };
            let key = if *token == "<*>" || token.bytes().any(|b| b.is_ascii_digit()) {
                "<*>"
            } else {
                token
            };
            // Route to an existing child, or create one if capacity allows;
            // otherwise overflow into the `<*>` child. The existing-child
            // case is the steady-state hot path (template counts plateau
            // fast), so it must be a borrowed lookup — allocating a keyed
            // String per level per line would dominate warm parsing.
            node = if node.children.contains_key(key) {
                node.children.get_mut(key).expect("checked above")
            } else if node.children.len() < config.max_children || key == "<*>" {
                node.children.entry(key.to_string()).or_default()
            } else if node.children.contains_key("<*>") {
                node.children.get_mut("<*>").expect("checked above")
            } else {
                node.children.entry("<*>".to_string()).or_default()
            };
        }
        node
    }
}

impl OnlineParser for Drain {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        self.lines += 1;
        self.last_cache_hit = false;
        // Recycled buffers: `Vec` is covariant, so the empty
        // `Vec<&'static str>` scratch moves out as `Vec<&str>` borrowing
        // `message`; `recycle_scratch` empties it before the lifetime is
        // erased again, so no dangling borrow ever exists.
        let mut masked: Vec<&str> = std::mem::take(&mut self.scratch_masked);
        let mut original: Vec<&str> = std::mem::take(&mut self.scratch_original);
        let mut spans = std::mem::take(&mut self.scratch_spans);
        self.pre
            .mask_into(message, &mut spans, &mut masked, &mut original);
        self.scratch_spans = spans;
        let outcome = self.parse_masked(&masked, &original);
        self.scratch_masked = recycle_scratch(masked);
        self.scratch_original = recycle_scratch(original);
        outcome
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::Drain
    }
}

impl Drain {
    /// The tree walk on already-tokenized input — the body of
    /// [`OnlineParser::parse`] minus tokenization, so `parse` can recycle
    /// its token buffers around a single call site.
    fn parse_masked(&mut self, masked: &[&str], original: &[&str]) -> ParseOutcome {
        // Fast path: a memoized pure match replays the tree walk's result
        // on provably unchanged state (see `MatchCache`).
        let use_cache = self.config.cache_capacity > 0 && !masked.is_empty();
        if use_cache {
            if let Some((template, wildcards)) = self.cache.lookup(masked) {
                self.last_cache_hit = true;
                let variables = wildcards
                    .iter()
                    .map(|&i| original[i as usize].to_string())
                    .collect();
                return ParseOutcome {
                    template,
                    is_new: false,
                    variables,
                };
            }
        }

        let leaf = Self::leaf_mut(&mut self.by_len, &self.config, masked);

        // Find the most similar group in the leaf.
        let mut best: Option<(TemplateId, f64, usize)> = None;
        for &gid in &leaf.groups {
            let template = self.store.get(gid).expect("group ids are valid");
            let (sim, wild) = Self::seq_dist(&template.tokens, masked);
            let better = match best {
                None => true,
                Some((_, bs, bw)) => sim > bs || (sim == bs && wild > bw),
            };
            if better {
                best = Some((gid, sim, wild));
            }
        }

        let matched = best.filter(|(_, sim, _)| *sim >= self.config.sim_threshold);
        match matched {
            Some((gid, _, _)) => {
                // Merge: widen mismatching positions to wildcards. The
                // pure-match case (nothing to widen) is the steady state
                // and must not clone the template.
                let template = self.store.get(gid).expect("valid id");
                let changed = template
                    .tokens
                    .iter()
                    .zip(masked)
                    .any(|(t, tok)| matches!(t, TemplateToken::Static(s) if s != tok));
                if changed {
                    let mut tokens = template.tokens.clone();
                    for (t, tok) in tokens.iter_mut().zip(masked) {
                        if let TemplateToken::Static(s) = t {
                            if s != tok {
                                *t = TemplateToken::Wildcard;
                            }
                        }
                    }
                    self.store.update(gid, tokens);
                    self.cache.flush();
                } else if use_cache {
                    self.cache
                        .install(self.config.cache_capacity, masked, gid, &self.store);
                }
                let template = self.store.get(gid).expect("valid id");
                let variables = template
                    .tokens
                    .iter()
                    .zip(original)
                    .filter(|(t, _)| t.is_wildcard())
                    .map(|(_, tok)| (*tok).to_string())
                    .collect();
                ParseOutcome {
                    template: gid,
                    is_new: false,
                    variables,
                }
            }
            None => {
                let tokens: Vec<TemplateToken> = masked
                    .iter()
                    .map(|t| {
                        if *t == "<*>" {
                            TemplateToken::Wildcard
                        } else {
                            TemplateToken::Static((*t).to_string())
                        }
                    })
                    .collect();
                let variables = tokens
                    .iter()
                    .zip(original)
                    .filter(|(t, _)| t.is_wildcard())
                    .map(|(_, tok)| (*tok).to_string())
                    .collect();
                // A wildcard-heavy template can score below the similarity
                // threshold against its *own* shape forever (wildcards
                // don't count toward similarity), so this arm repeats for
                // every line of such a shape. `intern` dedupes by pattern;
                // only a genuinely new template or new leaf membership
                // mutates state (and flushes the cache). The repeated
                // no-mutation case is itself a pure match, so memoize it —
                // without the dedupe, `groups` gains a duplicate id per
                // line and the leaf scan above goes quadratic in stream
                // length while every flush evicts all other shapes.
                let before = self.store.len();
                let gid = self.store.intern(tokens);
                let is_new = self.store.len() > before;
                if !leaf.groups.contains(&gid) {
                    leaf.groups.push(gid);
                    self.cache.flush();
                } else if use_cache {
                    self.cache
                        .install(self.config.cache_capacity, masked, gid, &self.store);
                }
                ParseOutcome {
                    template: gid,
                    is_new,
                    variables,
                }
            }
        }
    }
}

/// Empty a recycled token buffer and erase its (now uninhabited) borrow
/// lifetime so it can be stored back in the parser. Sound because the
/// vector is cleared first: no `&'a str` values survive the cast.
fn recycle_scratch(mut v: Vec<&str>) -> Vec<&'static str> {
    v.clear();
    let cap = v.capacity();
    let ptr = v.as_mut_ptr();
    std::mem::forget(v);
    // SAFETY: same layout (`&str` is lifetime-erased, not re-typed), zero
    // length, original capacity from the same allocation.
    unsafe { Vec::from_raw_parts(ptr.cast::<&'static str>(), 0, cap) }
}

#[cfg(test)]
mod alloc_counter {
    //! Thread-local allocation counting for the hot-path regression test:
    //! wraps the system allocator and counts allocations made by the
    //! *current* thread, so parallel tests don't interfere.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    thread_local! {
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    pub struct CountingAllocator;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // try_with: TLS may be mid-teardown during thread exit.
            let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    #[global_allocator]
    static COUNTING: CountingAllocator = CountingAllocator;

    /// Allocations made by this thread so far.
    pub fn current_thread_allocs() -> u64 {
        ALLOCS.with(|c| c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain() -> Drain {
        Drain::new(DrainConfig::default())
    }

    #[test]
    fn warm_routing_path_does_not_allocate() {
        // Regression: `leaf_mut` used to build `key.to_string()` at every
        // routing level of every line even when the child already existed.
        // On a warmed tree, routing must be pure borrowed lookups.
        let mut d = Drain::new(DrainConfig {
            mask: MaskConfig::NONE,
            ..DrainConfig::default()
        });
        d.parse("alpha beta gamma delta");
        d.parse("alpha beta gamma delta");
        let tokens = ["alpha", "beta", "gamma", "delta"];
        // Warm the lane (TLS init, hash state, etc.) before measuring.
        let _ = Drain::leaf_mut(&mut d.by_len, &d.config, &tokens);
        let before = super::alloc_counter::current_thread_allocs();
        for _ in 0..1_000 {
            let leaf = Drain::leaf_mut(&mut d.by_len, &d.config, &tokens);
            assert!(!leaf.groups.is_empty(), "routed to the populated leaf");
        }
        let after = super::alloc_counter::current_thread_allocs();
        assert_eq!(
            after - before,
            0,
            "existing-child routing must not allocate"
        );
    }

    #[test]
    fn overflow_routing_still_reaches_wildcard_child() {
        // The restructured routing keeps the capacity/overflow semantics:
        // full node + unknown key routes to `<*>` (allocating only when
        // that child is first created).
        let mut d = Drain::new(DrainConfig {
            max_children: 2,
            mask: MaskConfig::NONE,
            sim_threshold: 0.5,
            ..DrainConfig::default()
        });
        d.parse("alpha path one");
        d.parse("beta path one");
        d.parse("gamma path one"); // overflows into <*>
        let tokens = ["gamma", "path", "one"];
        let before = super::alloc_counter::current_thread_allocs();
        let _ = Drain::leaf_mut(&mut d.by_len, &d.config, &tokens);
        let after = super::alloc_counter::current_thread_allocs();
        assert_eq!(after - before, 0, "existing overflow path is borrowed too");
    }

    #[test]
    fn identical_messages_share_template() {
        let mut d = drain();
        let a = d.parse("Connection established to backend be3");
        let b = d.parse("Connection established to backend be3");
        assert_eq!(a.template, b.template);
        assert!(a.is_new);
        assert!(!b.is_new);
    }

    #[test]
    fn table1_grouping() {
        // Section IV: "log message L1 & L3 are considered correctly
        // classified if they are identified as coming from the same class".
        let mut d = drain();
        let l1 = d.parse("Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53");
        let l3 = d.parse("Sending 745675869 bytes src: 10.250.11.53 dest: /10.250.11.53");
        assert_eq!(l1.template, l3.template);
        // And the error line L2 (different length) is a different class.
        let l2 = d.parse("Error while receiving data src: 10.250.11.53 dest: /10.250.11.53");
        assert_ne!(l1.template, l2.template);
    }

    #[test]
    fn variables_extracted_at_masked_positions() {
        let mut d = drain();
        let out = d.parse("Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53");
        assert_eq!(out.variables, vec!["138", "10.250.11.53", "/10.250.11.53"]);
    }

    #[test]
    fn fig2_template_discovery() {
        let mut d = Drain::new(DrainConfig {
            mask: MaskConfig::AGGRESSIVE,
            ..DrainConfig::default()
        });
        d.parse("New process started: process x92 started on port 42");
        d.parse("New process started: process b7 started on port 9000");
        let t = d.store().iter().next().unwrap();
        assert_eq!(
            t.render(),
            "New process started: process <*> started on port <*>"
        );
    }

    #[test]
    fn template_widens_on_unmasked_variables() {
        // Without masking, Drain still converges by widening mismatches —
        // provided the variable sits past the routing prefix (the first
        // depth-2 tokens), which is where Drain's design expects variables.
        let mut d = Drain::new(DrainConfig {
            mask: MaskConfig::NONE,
            sim_threshold: 0.5,
            ..DrainConfig::default()
        });
        let a = d.parse("job run alpha done fast mode");
        let b = d.parse("job run beta done slow mode");
        assert_eq!(a.template, b.template);
        let t = d.store().get(a.template).unwrap();
        assert_eq!(t.render(), "job run <*> done <*> mode");
    }

    #[test]
    fn unmasked_variable_in_routing_prefix_splits_groups() {
        // The flip side — and the reason the paper calls preprocessing an
        // automation limit: a variable within the first depth-2 tokens
        // routes identical templates to different leaves.
        let mut d = Drain::new(DrainConfig {
            mask: MaskConfig::NONE,
            sim_threshold: 0.5,
            ..DrainConfig::default()
        });
        let a = d.parse("job alpha finished in fast mode");
        let b = d.parse("job beta finished in fast mode");
        assert_ne!(a.template, b.template);
        // With masking, the same pair converges.
        let mut masked = Drain::new(DrainConfig {
            mask: MaskConfig::AGGRESSIVE,
            sim_threshold: 0.5,
            ..DrainConfig::default()
        });
        let a = masked.parse("job alpha17 finished in fast mode");
        let b = masked.parse("job beta9 finished in fast mode");
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn below_threshold_creates_new_group() {
        let mut d = Drain::new(DrainConfig {
            mask: MaskConfig::NONE,
            sim_threshold: 0.9,
            ..DrainConfig::default()
        });
        let a = d.parse("alpha beta gamma delta");
        let b = d.parse("alpha zzz yyy xxx");
        assert_ne!(
            a.template, b.template,
            "0.25 similarity must not merge at st=0.9"
        );
    }

    #[test]
    fn different_lengths_never_share_template() {
        let mut d = drain();
        let a = d.parse("one two three");
        let b = d.parse("one two three four");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn empty_message_is_handled() {
        let mut d = drain();
        let out = d.parse("");
        assert!(out.is_new);
        assert!(out.variables.is_empty());
        let again = d.parse("   ");
        assert_eq!(
            out.template, again.template,
            "all-empty messages share a class"
        );
    }

    #[test]
    fn max_children_overflows_to_wildcard() {
        let mut d = Drain::new(DrainConfig {
            max_children: 2,
            mask: MaskConfig::NONE,
            sim_threshold: 0.5,
            ..DrainConfig::default()
        });
        // Three distinct first tokens at the same length: the third must
        // overflow into the <*> child rather than growing the node.
        d.parse("alpha path one");
        d.parse("beta path one");
        d.parse("gamma path one");
        d.parse("delta path one");
        // All messages parsed without panic; at most 3 templates exist
        // (two named children plus the shared overflow group).
        assert!(d.store().len() <= 3, "{} templates", d.store().len());
    }

    #[test]
    fn high_depth_uses_more_prefix_tokens() {
        let mut shallow = Drain::new(DrainConfig {
            depth: 3,
            mask: MaskConfig::NONE,
            sim_threshold: 0.45,
            ..DrainConfig::default()
        });
        // depth 3 → 1 token level. Same first token, so these meet in one
        // leaf and merge at 2/4 similarity.
        let a = shallow.parse("op read file alpha");
        let b = shallow.parse("op read sock beta");
        assert_eq!(a.template, b.template);

        let mut deep = Drain::new(DrainConfig {
            depth: 5,
            mask: MaskConfig::NONE,
            sim_threshold: 0.45,
            ..DrainConfig::default()
        });
        // depth 5 → 3 token levels: "op read file ..." and "op read sock
        // ..." part ways at level 3 and never meet.
        let a = deep.parse("op read file alpha");
        let b = deep.parse("op read sock beta");
        assert_ne!(a.template, b.template);
    }

    #[test]
    #[should_panic(expected = "depth must be at least 3")]
    fn rejects_tiny_depth() {
        Drain::new(DrainConfig {
            depth: 2,
            ..DrainConfig::default()
        });
    }

    #[test]
    fn warm_start_preserves_template_ids() {
        // Train a parser, persist its store, warm-start a new one: known
        // lines must map to the same ids; new templates continue the id
        // sequence.
        let mut original = Drain::new(DrainConfig::default());
        let lines = [
            "Receiving block blk_1 src: 10.0.0.1 dest: 10.0.0.2",
            "Verification succeeded for blk_1",
            "Deleting block blk_1 file /data/1",
        ];
        let original_ids: Vec<_> = lines.iter().map(|l| original.parse(l).template).collect();

        let bytes = original.store().encode();
        let store = monilog_model::TemplateStore::decode(&bytes).expect("round trip");
        let mut restored = Drain::warm_start(DrainConfig::default(), store);
        for (line, expected) in lines.iter().zip(&original_ids) {
            let out = restored.parse(line);
            assert_eq!(
                out.template, *expected,
                "id changed across restart for {line}"
            );
            assert!(!out.is_new);
        }
        let fresh = restored.parse("an entirely different statement shape");
        assert!(fresh.is_new);
        assert_eq!(fresh.template.as_index(), original_ids.len());
    }

    #[test]
    fn export_import_state_round_trips() {
        let mut original = Drain::new(DrainConfig::default());
        let lines = [
            "Receiving block blk_1 src: 10.0.0.1 dest: 10.0.0.2",
            "Verification succeeded for blk_1",
            "Deleting block blk_1 file /data/1",
        ];
        let ids: Vec<_> = lines.iter().map(|l| original.parse(l).template).collect();
        let bytes = original.export_state();
        let mut restored =
            Drain::import_state(DrainConfig::default(), &bytes).expect("import state");
        assert_eq!(restored.lines_parsed(), original.lines_parsed());
        for (line, expected) in lines.iter().zip(&ids) {
            assert_eq!(restored.parse(line).template, *expected);
        }
        // Corrupt or truncated state is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                Drain::import_state(DrainConfig::default(), &bytes[..cut]).is_err(),
                "prefix of {cut} bytes imported"
            );
        }
    }

    #[test]
    fn warm_start_empty_store_behaves_like_new() {
        let mut a = Drain::new(DrainConfig::default());
        let mut b = Drain::warm_start(DrainConfig::default(), monilog_model::TemplateStore::new());
        let la = a.parse("x y z");
        let lb = b.parse("x y z");
        assert_eq!(la, lb);
    }

    #[test]
    fn cache_hits_after_template_stabilizes() {
        let mut d = drain();
        d.parse("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2");
        // Second line of the same shape is a pure match → installs.
        d.parse("Sending 999 bytes src: 10.9.9.9 dest: /10.0.0.1");
        assert_eq!(d.cache_len(), 1);
        let (hits_before, _) = d.cache_stats();
        let out = d.parse("Sending 7 bytes src: 10.1.1.1 dest: /10.2.2.2");
        let (hits_after, _) = d.cache_stats();
        assert_eq!(hits_after, hits_before + 1, "third line must hit");
        // Variables come from *this* line, not the memoized one.
        assert_eq!(out.variables, vec!["7", "10.1.1.1", "/10.2.2.2"]);
        assert!(!out.is_new);
    }

    #[test]
    fn below_threshold_shape_memoizes_instead_of_duplicating() {
        // A 3-token shape with one static token can never reach the 0.4
        // similarity threshold against its own template (wildcards score
        // zero), so every line of it lands in the no-match arm. That arm
        // must dedupe against the existing template — not mint a
        // "new" template per line, grow the leaf's group list, and flush
        // the cache for every other shape (the quadratic pathology this
        // guards against).
        let mut d = drain();
        let a = d.parse("allocateBlock: /user/data/part-1 blk_1");
        assert!(a.is_new, "first sighting mints the template");
        let b = d.parse("allocateBlock: /user/data/part-2 blk_2");
        assert_eq!(b.template, a.template);
        assert!(!b.is_new, "the template already existed");
        assert_eq!(b.variables, vec!["/user/data/part-2", "blk_2"]);
        // The repeated no-mutation outcome is itself memoized: the third
        // line is a cache hit, which also proves the second line did not
        // mutate parser state (any mutation would have flushed).
        let c = d.parse("allocateBlock: /user/data/part-3 blk_3");
        assert!(d.last_parse_cache_hit(), "repeat shape must hit the cache");
        assert_eq!(c.template, a.template);
        assert_eq!(c.variables, vec!["/user/data/part-3", "blk_3"]);
        // An unrelated stable shape keeps its cache entry across the
        // repeats (the old behavior flushed the whole cache per line).
        // Minting the Sending template flushes once, so the next
        // allocateBlock line re-installs its entry — it must do so
        // *without* flushing the Sending entry.
        d.parse("Sending 10 bytes src: 10.0.0.1 dest: /10.0.0.2");
        d.parse("Sending 11 bytes src: 10.0.0.3 dest: /10.0.0.4");
        let len_before = d.cache_len();
        d.parse("allocateBlock: /user/data/part-4 blk_4");
        assert_eq!(d.cache_len(), len_before + 1, "install, not flush");
        d.parse("Sending 12 bytes src: 10.0.0.5 dest: /10.0.0.6");
        assert!(d.last_parse_cache_hit(), "unrelated entry survived");
    }

    #[test]
    fn last_parse_cache_hit_tracks_each_line() {
        let mut d = drain();
        assert!(!d.last_parse_cache_hit(), "false before the first parse");
        d.parse("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2");
        assert!(!d.last_parse_cache_hit(), "first line can't hit");
        d.parse("Sending 999 bytes src: 10.9.9.9 dest: /10.0.0.1");
        assert!(!d.last_parse_cache_hit(), "install, not a hit");
        d.parse("Sending 7 bytes src: 10.1.1.1 dest: /10.2.2.2");
        assert!(d.last_parse_cache_hit(), "steady state hits");
        d.parse("a line of an entirely different shape");
        assert!(!d.last_parse_cache_hit(), "resets on a miss");
    }

    #[test]
    fn cache_flushes_on_any_mutation() {
        let mut d = Drain::new(DrainConfig {
            mask: MaskConfig::NONE,
            sim_threshold: 0.5,
            ..DrainConfig::default()
        });
        d.parse("job run alpha done fast mode");
        d.parse("job run alpha done fast mode"); // pure match → installs
        assert_eq!(d.cache_len(), 1);
        // Widening mutation flushes...
        d.parse("job run beta done slow mode");
        assert_eq!(d.cache_len(), 0, "widening must flush the cache");
        d.parse("job run beta done slow mode");
        assert_eq!(d.cache_len(), 1);
        // ...and so does minting a new template.
        d.parse("an entirely different statement");
        assert_eq!(d.cache_len(), 0, "new template must flush the cache");
    }

    #[test]
    fn cache_capacity_zero_disables() {
        let mut d = Drain::new(DrainConfig {
            cache_capacity: 0,
            ..DrainConfig::default()
        });
        for _ in 0..5 {
            d.parse("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2");
        }
        assert_eq!(d.cache_stats(), (0, 0));
        assert_eq!(d.cache_len(), 0);
    }

    #[test]
    fn cached_and_uncached_agree_on_repeats() {
        // Inline spot check of what tests/cache_differential.rs proves at
        // scale: hit-path outcomes equal cold-parser outcomes.
        let lines = [
            "Receiving block blk_1 src: 10.0.0.1 dest: 10.0.0.2",
            "Receiving block blk_9 src: 10.0.0.7 dest: 10.0.0.8",
            "Receiving block blk_4 src: 10.0.0.2 dest: 10.0.0.3",
            "Verification succeeded for blk_4",
            "Receiving block blk_5 src: 10.0.0.1 dest: 10.0.0.9",
        ];
        let mut cached = drain();
        let mut plain = Drain::new(DrainConfig {
            cache_capacity: 0,
            ..DrainConfig::default()
        });
        for line in lines {
            assert_eq!(cached.parse(line), plain.parse(line));
        }
        assert!(cached.cache_stats().0 > 0, "repeats must hit the cache");
    }

    #[test]
    fn parse_all_matches_sequential_parse() {
        let msgs = vec![
            "Receiving block blk_1 src: 10.0.0.1 dest: 10.0.0.2",
            "Receiving block blk_2 src: 10.0.0.3 dest: 10.0.0.4",
            "Verification succeeded for blk_1",
        ];
        let refs: Vec<&str> = msgs.clone();
        let mut d1 = drain();
        let batch = d1.parse_all(&refs);
        let mut d2 = drain();
        let seq: Vec<ParseOutcome> = msgs.iter().map(|m| d2.parse(m)).collect();
        assert_eq!(batch, seq);
    }
}

#[cfg(test)]
mod corpus_tests {
    use super::*;
    use monilog_loggen::corpus;
    use std::collections::HashMap;

    /// Drain must recover the HDFS-like corpus almost perfectly: the
    /// per-line truth→parsed mapping should be a near-bijection.
    #[test]
    fn high_grouping_fidelity_on_hdfs_like() {
        let corpus = corpus::hdfs_like(200, 11);
        let mut d = Drain::new(DrainConfig::default());
        let mut pairs: HashMap<(u32, u32), usize> = HashMap::new();
        for log in &corpus.logs {
            let out = d.parse(&log.record.message);
            *pairs
                .entry((log.truth.template.0, out.template.0))
                .or_default() += 1;
        }
        // Every truth template maps predominantly to one parsed template.
        let mut by_truth: HashMap<u32, Vec<usize>> = HashMap::new();
        for ((truth, _), n) in &pairs {
            by_truth.entry(*truth).or_default().push(*n);
        }
        for (truth, counts) in by_truth {
            let total: usize = counts.iter().sum();
            let max = counts.iter().max().copied().unwrap_or(0);
            assert!(
                max as f64 / total as f64 > 0.95,
                "truth template {truth} is split: {counts:?}"
            );
        }
    }
}
