//! IPLoM: Iterative Partitioning Log Mining (Makanju et al., KDD 2009).
//!
//! A *batch* parser — the paper's Section IV argues batch methods cannot be
//! deployed under log instability ("it will never include yet non-existing
//! log templates"), but they remain the classic baselines, so experiment P4
//! includes them.
//!
//! Steps:
//! 1. Partition by token count.
//! 2. Within each partition, split by the token at the position with the
//!    lowest distinct-token cardinality.
//! 3. Split by the relation (bijection or not) between the two most-ranked
//!    positions (simplified to a pair-mapping split).
//! 4. Extract a template per partition: positions with a single distinct
//!    token become static, others wildcards.

use crate::api::{BatchParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// IPLoM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IpLoMConfig {
    /// Partitions smaller than this fraction of their parent are merged
    /// into an outlier partition instead of splitting further.
    pub partition_support: f64,
    /// A position whose distinct-token ratio is below this is a split
    /// candidate in step 2.
    pub max_split_cardinality_ratio: f64,
    /// Preprocessing masks.
    pub mask: MaskConfig,
}

impl Default for IpLoMConfig {
    fn default() -> Self {
        IpLoMConfig {
            partition_support: 0.02,
            max_split_cardinality_ratio: 0.5,
            mask: MaskConfig::STANDARD,
        }
    }
}

/// The IPLoM batch parser.
#[derive(Debug)]
pub struct IpLoM {
    config: IpLoMConfig,
    pre: Preprocessor,
    store: TemplateStore,
}

/// A working partition: indices into the corpus.
struct Partition {
    lines: Vec<usize>,
    /// How many split steps this partition has been through (1 or 2).
    step: u8,
}

impl IpLoM {
    pub fn new(config: IpLoMConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.partition_support));
        IpLoM {
            pre: Preprocessor::new(config.mask),
            config,
            store: TemplateStore::new(),
        }
    }

    /// Position with the lowest cardinality > 1, if any qualifies.
    #[allow(clippy::needless_range_loop)] // column scan across rows
    fn split_position(tokenized: &[Vec<&str>], lines: &[usize], width: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (position, cardinality)
        for pos in 0..width {
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for &li in lines {
                seen.insert(tokenized[li][pos], ());
            }
            let card = seen.len();
            if card > 1 && best.is_none_or(|(_, bc)| card < bc) {
                best = Some((pos, card));
            }
        }
        best.map(|(p, _)| p)
    }
}

impl BatchParser for IpLoM {
    #[allow(clippy::needless_range_loop)] // column scan across rows
    fn parse_batch(&mut self, messages: &[&str]) -> Vec<ParseOutcome> {
        self.store = TemplateStore::new();
        let masked_and_original: Vec<(Vec<&str>, Vec<&str>)> =
            messages.iter().map(|m| self.pre.mask(m)).collect();
        let tokenized: Vec<Vec<&str>> =
            masked_and_original.iter().map(|(m, _)| m.clone()).collect();

        // Step 1: partition by token count.
        let mut by_len: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, toks) in tokenized.iter().enumerate() {
            by_len.entry(toks.len()).or_default().push(i);
        }
        let mut work: Vec<Partition> = by_len
            .into_values()
            .map(|lines| Partition { lines, step: 1 })
            .collect();

        // Steps 2–3: iterative splitting.
        let mut finished: Vec<Vec<usize>> = Vec::new();
        while let Some(part) = work.pop() {
            let width = tokenized[part.lines[0]].len();
            if width == 0 || part.step > 2 || part.lines.len() < 4 {
                finished.push(part.lines);
                continue;
            }
            let min_child =
                ((part.lines.len() as f64 * self.config.partition_support) as usize).max(1);
            match Self::split_position(&tokenized, &part.lines, width) {
                Some(pos) => {
                    // Cardinality guard: don't split on near-unique positions.
                    let mut groups: HashMap<&str, Vec<usize>> = HashMap::new();
                    for &li in &part.lines {
                        groups.entry(tokenized[li][pos]).or_default().push(li);
                    }
                    let ratio = groups.len() as f64 / part.lines.len() as f64;
                    if ratio > self.config.max_split_cardinality_ratio {
                        finished.push(part.lines);
                        continue;
                    }
                    let mut outliers: Vec<usize> = Vec::new();
                    for (_, lines) in groups {
                        if lines.len() < min_child {
                            outliers.extend(lines);
                        } else {
                            work.push(Partition {
                                lines,
                                step: part.step + 1,
                            });
                        }
                    }
                    if !outliers.is_empty() {
                        finished.push(outliers);
                    }
                }
                None => finished.push(part.lines),
            }
        }

        // Step 4: template extraction per partition.
        let mut outcome_by_line: Vec<Option<ParseOutcome>> = vec![None; messages.len()];
        for lines in finished {
            let width = tokenized[lines[0]].len();
            // A position is static iff a single distinct token appears there
            // across the whole partition (and it isn't a mask).
            let mut skeleton: Vec<TemplateToken> = Vec::with_capacity(width);
            for pos in 0..width {
                let first = tokenized[lines[0]][pos];
                let uniform = lines.iter().all(|&li| tokenized[li][pos] == first);
                if uniform && first != "<*>" {
                    skeleton.push(TemplateToken::Static(first.to_string()));
                } else {
                    skeleton.push(TemplateToken::Wildcard);
                }
            }
            let id = self.store.intern(skeleton.clone());
            for &li in &lines {
                let original = &masked_and_original[li].1;
                let variables = skeleton
                    .iter()
                    .zip(original.iter())
                    .filter(|(t, _)| t.is_wildcard())
                    .map(|(_, tok)| (*tok).to_string())
                    .collect();
                outcome_by_line[li] = Some(ParseOutcome {
                    template: id,
                    is_new: false,
                    variables,
                });
            }
        }
        outcome_by_line
            .into_iter()
            .map(|o| o.expect("every line belongs to a partition"))
            .collect()
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::IpLoM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(messages: &[&str]) -> (IpLoM, Vec<ParseOutcome>) {
        let mut p = IpLoM::new(IpLoMConfig::default());
        let outs = p.parse_batch(messages);
        (p, outs)
    }

    #[test]
    fn identical_lines_one_template() {
        let msgs = vec!["disk ok"; 10];
        let (p, outs) = parse(&msgs);
        assert_eq!(p.store().len(), 1);
        assert!(outs.iter().all(|o| o.template == outs[0].template));
    }

    #[test]
    fn splits_by_token_count_first() {
        let msgs = vec!["a b", "a b", "a b c", "a b c"];
        let (_, outs) = parse(&msgs);
        assert_eq!(outs[0].template, outs[1].template);
        assert_eq!(outs[2].template, outs[3].template);
        assert_ne!(outs[0].template, outs[2].template);
    }

    #[test]
    fn variable_position_becomes_wildcard() {
        let msgs: Vec<String> = (0..20)
            .map(|i| format!("session user{i} authenticated fine"))
            .collect();
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let (p, outs) = parse(&refs);
        let t = p.store().get(outs[0].template).unwrap();
        assert_eq!(t.render(), "session <*> authenticated fine");
        assert_eq!(outs[3].variables, vec!["user3"]);
    }

    #[test]
    fn low_cardinality_split_separates_templates() {
        // Two interleaved templates with the same token count: the operation
        // word has cardinality 2 and is the split position.
        let mut msgs = Vec::new();
        for i in 0..20 {
            msgs.push(format!("op read file f{i} done"));
            msgs.push(format!("op write file f{i} done"));
        }
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let (p, outs) = parse(&refs);
        assert_eq!(
            p.store().len(),
            2,
            "{:?}",
            p.store().iter().map(|t| t.render()).collect::<Vec<_>>()
        );
        assert_ne!(outs[0].template, outs[1].template);
        assert_eq!(outs[0].template, outs[2].template);
    }

    #[test]
    fn empty_corpus() {
        let mut p = IpLoM::new(IpLoMConfig::default());
        assert!(p.parse_batch(&[]).is_empty());
        assert_eq!(p.store().len(), 0);
    }

    #[test]
    fn reparse_resets_state() {
        let mut p = IpLoM::new(IpLoMConfig::default());
        p.parse_batch(&["a b", "c d"]);
        let first_len = p.store().len();
        p.parse_batch(&["x y z"]);
        assert!(p.store().len() <= first_len, "store grew across batches");
    }

    #[test]
    fn masked_tokens_are_variables() {
        let msgs = vec![
            "sent 42 bytes",
            "sent 43 bytes",
            "sent 44 bytes",
            "sent 45 bytes",
        ];
        let (p, outs) = parse(&msgs);
        let t = p.store().get(outs[0].template).unwrap();
        assert_eq!(t.render(), "sent <*> bytes");
    }
}
