//! LenMa: "Length Matters" — clustering log messages by word-length
//! vectors (Shima, 2016).
//!
//! Messages with the same token count are compared by the cosine similarity
//! of their *word-length vectors* (the sequence of token lengths): variable
//! values change a token's text but often keep its approximate length
//! profile distinct from other templates. A positional exact-match check
//! keeps obviously different templates apart.

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateId, TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// LenMa hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LenMaConfig {
    /// Cosine-similarity threshold on word-length vectors (paper default
    /// 0.78).
    pub threshold: f64,
    /// Preprocessing masks.
    pub mask: MaskConfig,
}

impl Default for LenMaConfig {
    fn default() -> Self {
        LenMaConfig {
            threshold: 0.78,
            mask: MaskConfig::STANDARD,
        }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    id: TemplateId,
    /// Current word-length vector (updated toward new members).
    lengths: Vec<f64>,
    /// Template skeleton.
    skeleton: Vec<TemplateToken>,
}

/// The LenMa parser.
#[derive(Debug)]
pub struct LenMa {
    config: LenMaConfig,
    pre: Preprocessor,
    /// Clusters bucketed by token count.
    by_len: HashMap<usize, Vec<Cluster>>,
    store: TemplateStore,
}

impl LenMa {
    pub fn new(config: LenMaConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.threshold));
        LenMa {
            pre: Preprocessor::new(config.mask),
            config,
            by_len: HashMap::new(),
            store: TemplateStore::new(),
        }
    }

    fn cosine(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return if na == nb { 1.0 } else { 0.0 };
        }
        dot / (na * nb)
    }

    /// Positional agreement on static tokens: LenMa's secondary check that
    /// prevents merging templates that merely *look* length-similar.
    fn static_agreement(skeleton: &[TemplateToken], tokens: &[&str]) -> f64 {
        let statics = skeleton.iter().filter(|t| !t.is_wildcard()).count();
        if statics == 0 {
            return 1.0;
        }
        let matching = skeleton
            .iter()
            .zip(tokens)
            .filter(|(t, tok)| match t {
                TemplateToken::Static(s) => s == *tok,
                TemplateToken::Wildcard => false,
            })
            .count();
        matching as f64 / statics as f64
    }
}

impl OnlineParser for LenMa {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let (masked, original) = self.pre.mask(message);
        let lengths: Vec<f64> = masked.iter().map(|t| t.len() as f64).collect();
        let clusters = self.by_len.entry(masked.len()).or_default();

        let mut best: Option<(usize, f64)> = None;
        for (idx, cluster) in clusters.iter().enumerate() {
            let sim = Self::cosine(&cluster.lengths, &lengths);
            // Require half the surviving statics to agree positionally.
            if Self::static_agreement(&cluster.skeleton, &masked) < 0.5 {
                continue;
            }
            if sim >= self.config.threshold && best.is_none_or(|(_, bs)| sim > bs) {
                best = Some((idx, sim));
            }
        }

        match best {
            Some((idx, _)) => {
                let cluster = &mut clusters[idx];
                // Merge: widen mismatches, move length vector toward member.
                let mut changed = false;
                for ((t, tok), len) in cluster.skeleton.iter_mut().zip(&masked).zip(&lengths) {
                    if let TemplateToken::Static(s) = t {
                        if s != tok {
                            *t = TemplateToken::Wildcard;
                            changed = true;
                        }
                    }
                    let _ = len;
                }
                for (l, new) in cluster.lengths.iter_mut().zip(&lengths) {
                    *l = (*l + *new) / 2.0;
                }
                if changed {
                    self.store.update(cluster.id, cluster.skeleton.clone());
                }
                let variables = extract_vars(&cluster.skeleton, &original);
                ParseOutcome {
                    template: cluster.id,
                    is_new: false,
                    variables,
                }
            }
            None => {
                let skeleton: Vec<TemplateToken> = masked
                    .iter()
                    .map(|t| {
                        if *t == "<*>" {
                            TemplateToken::Wildcard
                        } else {
                            TemplateToken::Static((*t).to_string())
                        }
                    })
                    .collect();
                let id = self.store.intern(skeleton.clone());
                if !clusters.iter().any(|c| c.id == id) {
                    clusters.push(Cluster {
                        id,
                        lengths,
                        skeleton: skeleton.clone(),
                    });
                }
                let variables = extract_vars(&skeleton, &original);
                ParseOutcome {
                    template: id,
                    is_new: true,
                    variables,
                }
            }
        }
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::LenMa
    }
}

fn extract_vars(skeleton: &[TemplateToken], original: &[&str]) -> Vec<String> {
    skeleton
        .iter()
        .zip(original)
        .filter(|(t, _)| t.is_wildcard())
        .map(|(_, tok)| (*tok).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert!((LenMa::cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(LenMa::cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(LenMa::cosine(&[], &[]), 1.0);
        assert_eq!(LenMa::cosine(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn identical_messages_cluster() {
        let mut p = LenMa::new(LenMaConfig::default());
        let a = p.parse("disk sda1 is healthy");
        let b = p.parse("disk sda1 is healthy");
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn same_template_different_values_cluster() {
        let mut p = LenMa::new(LenMaConfig::default());
        let a = p.parse("Received block blk_904791815409399662 of size 67108864 from 10.250.11.53");
        let b = p.parse("Received block blk_904791815412113567 of size 67108864 from 10.250.14.38");
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn different_templates_split() {
        let mut p = LenMa::new(LenMaConfig::default());
        // Same token count, very different word lengths and statics.
        let a = p.parse("initialization of subsystem completed successfully today");
        let b = p.parse("rm tmp ok a b c");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn different_token_counts_never_merge() {
        let mut p = LenMa::new(LenMaConfig::default());
        let a = p.parse("a b c");
        let b = p.parse("a b c d");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn template_widens_on_merge() {
        let mut p = LenMa::new(LenMaConfig {
            threshold: 0.9,
            mask: MaskConfig::NONE,
        });
        let a = p.parse("worker node17 ready");
        let b = p.parse("worker node42 ready");
        assert_eq!(a.template, b.template);
        assert_eq!(
            p.store().get(a.template).unwrap().render(),
            "worker <*> ready"
        );
        assert_eq!(b.variables, vec!["node42"]);
    }

    #[test]
    fn empty_message() {
        let mut p = LenMa::new(LenMaConfig::default());
        let out = p.parse("");
        assert!(out.is_new);
    }
}
