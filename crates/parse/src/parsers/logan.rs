//! Logan: a distributed online log parser (Agrawal, Karlupia & Gupta,
//! ICDE 2019) — the remaining entry of the paper's Section IV benchmark
//! list ("Spell, Logram, Logan, SHISO, LenMa").
//!
//! Logan's design: independent *agents* parse their share of the stream
//! against a local pattern set, matching by normalized token edit
//! distance; agents periodically ship new patterns to a coordinator that
//! merges similar patterns and broadcasts the consolidated set back. The
//! merge step is what makes Logan distribution-friendly — agents never
//! block on each other.
//!
//! This implementation runs the agents in-process (round-robin sharding)
//! with a merge every `merge_interval` lines, which reproduces the
//! algorithmic behaviour (local drift + periodic reconciliation) without
//! requiring a cluster; the same structure runs on real shards via
//! `monilog-stream`.

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateId, TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};

/// Logan hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoganConfig {
    /// Number of parsing agents.
    pub n_agents: usize,
    /// Normalized token-edit-distance threshold in `[0,1]`: a message joins a
    /// pattern when `edit_distance / max_len ≤ threshold`.
    pub distance_threshold: f64,
    /// Agents reconcile their pattern sets every this many lines.
    pub merge_interval: usize,
    /// Preprocessing masks.
    pub mask: MaskConfig,
}

impl Default for LoganConfig {
    fn default() -> Self {
        LoganConfig {
            n_agents: 4,
            distance_threshold: 0.4,
            merge_interval: 1_000,
            mask: MaskConfig::STANDARD,
        }
    }
}

/// A pattern: the token skeleton an agent matches against.
#[derive(Debug, Clone)]
struct Pattern {
    id: TemplateId,
    skeleton: Vec<TemplateToken>,
}

/// The Logan parser (in-process multi-agent simulation).
#[derive(Debug)]
pub struct Logan {
    config: LoganConfig,
    pre: Preprocessor,
    /// Per-agent local pattern sets.
    agents: Vec<Vec<Pattern>>,
    /// Next agent for round-robin dispatch.
    next_agent: usize,
    lines_since_merge: usize,
    store: TemplateStore,
}

/// Token-level edit distance between a pattern skeleton and message
/// tokens; a wildcard matches any token at cost 0.
#[allow(clippy::needless_range_loop)] // DP table indexed by (i, j)
fn edit_distance(skeleton: &[TemplateToken], tokens: &[&str]) -> usize {
    let n = skeleton.len();
    let m = tokens.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in dp.iter_mut().enumerate() {
        row[0] = i;
    }
    for j in 0..=m {
        dp[0][j] = j;
    }
    for i in 0..n {
        for j in 0..m {
            let subst = match &skeleton[i] {
                TemplateToken::Wildcard => 0,
                TemplateToken::Static(s) => usize::from(s != tokens[j]),
            };
            dp[i + 1][j + 1] = (dp[i][j] + subst)
                .min(dp[i][j + 1] + 1)
                .min(dp[i + 1][j] + 1);
        }
    }
    dp[n][m]
}

fn normalized_distance(skeleton: &[TemplateToken], tokens: &[&str]) -> f64 {
    let max_len = skeleton.len().max(tokens.len());
    if max_len == 0 {
        return 0.0;
    }
    edit_distance(skeleton, tokens) as f64 / max_len as f64
}

/// Widen a same-length skeleton toward the message (mismatch → wildcard);
/// different lengths keep the skeleton unchanged (Logan aligns only
/// equal-length merges; length differences are absorbed by the distance
/// threshold at match time).
fn widen(skeleton: &mut [TemplateToken], tokens: &[&str]) -> bool {
    if skeleton.len() != tokens.len() {
        return false;
    }
    let mut changed = false;
    for (t, tok) in skeleton.iter_mut().zip(tokens) {
        if let TemplateToken::Static(s) = t {
            if s != tok {
                *t = TemplateToken::Wildcard;
                changed = true;
            }
        }
    }
    changed
}

impl Logan {
    pub fn new(config: LoganConfig) -> Self {
        assert!(config.n_agents >= 1, "need at least one agent");
        assert!((0.0..=1.0).contains(&config.distance_threshold));
        assert!(config.merge_interval >= 1);
        Logan {
            pre: Preprocessor::new(config.mask),
            agents: vec![Vec::new(); config.n_agents],
            next_agent: 0,
            lines_since_merge: 0,
            config,
            store: TemplateStore::new(),
        }
    }

    /// Coordinator step: merge near-duplicate patterns discovered by
    /// different agents and broadcast the consolidated set to all agents.
    fn reconcile(&mut self) {
        let mut consolidated: Vec<Pattern> = Vec::new();
        for agent in &self.agents {
            for pattern in agent {
                let tokens: Vec<&str> = pattern.skeleton.iter().map(|t| t.as_str()).collect();
                let similar = consolidated.iter_mut().find(|c| {
                    c.skeleton.len() == pattern.skeleton.len()
                        && normalized_distance(&c.skeleton, &tokens)
                            <= self.config.distance_threshold
                });
                match similar {
                    Some(c) => {
                        // Merge: widen the consolidated skeleton toward this
                        // pattern; the older (smaller) id wins so labels
                        // stay stable across merges.
                        widen(&mut c.skeleton, &tokens);
                        if pattern.id.0 < c.id.0 {
                            c.id = pattern.id;
                        }
                        self.store.update(c.id, c.skeleton.clone());
                    }
                    None => consolidated.push(pattern.clone()),
                }
            }
        }
        for agent in &mut self.agents {
            *agent = consolidated.clone();
        }
    }
}

impl OnlineParser for Logan {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let (masked, original) = self.pre.mask(message);
        let agent_idx = self.next_agent;
        self.next_agent = (self.next_agent + 1) % self.config.n_agents;

        let agent = &mut self.agents[agent_idx];
        let mut best: Option<(usize, f64)> = None;
        for (idx, pattern) in agent.iter().enumerate() {
            let d = normalized_distance(&pattern.skeleton, &masked);
            if d <= self.config.distance_threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((idx, d));
            }
        }

        let outcome = match best {
            Some((idx, _)) => {
                let pattern = &mut agent[idx];
                if widen(&mut pattern.skeleton, &masked) {
                    self.store.update(pattern.id, pattern.skeleton.clone());
                }
                let variables = variables_of(&pattern.skeleton, &original);
                ParseOutcome {
                    template: pattern.id,
                    is_new: false,
                    variables,
                }
            }
            None => {
                let skeleton: Vec<TemplateToken> = masked
                    .iter()
                    .map(|t| {
                        if *t == "<*>" {
                            TemplateToken::Wildcard
                        } else {
                            TemplateToken::Static((*t).to_string())
                        }
                    })
                    .collect();
                let id = self.store.intern(skeleton.clone());
                if !agent.iter().any(|p| p.id == id) {
                    agent.push(Pattern {
                        id,
                        skeleton: skeleton.clone(),
                    });
                }
                let variables = variables_of(&skeleton, &original);
                ParseOutcome {
                    template: id,
                    is_new: true,
                    variables,
                }
            }
        };

        self.lines_since_merge += 1;
        if self.lines_since_merge >= self.config.merge_interval {
            self.lines_since_merge = 0;
            self.reconcile();
        }
        outcome
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::Logan
    }
}

/// Message tokens at wildcard positions (same-length positional case) or
/// all non-matching tokens otherwise.
fn variables_of(skeleton: &[TemplateToken], original: &[&str]) -> Vec<String> {
    if skeleton.len() == original.len() {
        skeleton
            .iter()
            .zip(original)
            .filter(|(t, _)| t.is_wildcard())
            .map(|(_, tok)| (*tok).to_string())
            .collect()
    } else {
        // Length mismatch (cross-length match): align statics greedily.
        let statics: Vec<&str> = skeleton
            .iter()
            .filter_map(|t| match t {
                TemplateToken::Static(s) => Some(s.as_str()),
                TemplateToken::Wildcard => None,
            })
            .collect();
        let mut si = 0;
        let mut out = Vec::new();
        for tok in original {
            if si < statics.len() && statics[si] == *tok {
                si += 1;
            } else {
                out.push((*tok).to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logan(n_agents: usize, merge_interval: usize) -> Logan {
        Logan::new(LoganConfig {
            n_agents,
            merge_interval,
            ..Default::default()
        })
    }

    #[test]
    fn edit_distance_basics() {
        let skel = |p: &str| monilog_model::Template::from_pattern(TemplateId(0), p).tokens;
        assert_eq!(edit_distance(&skel("a b c"), &["a", "b", "c"]), 0);
        assert_eq!(edit_distance(&skel("a b c"), &["a", "x", "c"]), 1);
        assert_eq!(edit_distance(&skel("a <*> c"), &["a", "anything", "c"]), 0);
        assert_eq!(edit_distance(&skel("a b"), &["a", "b", "c"]), 1);
        assert_eq!(edit_distance(&skel("a"), &[]), 1);
    }

    #[test]
    fn single_agent_groups_variants() {
        let mut p = logan(1, 1_000);
        let a = p.parse("task t1 finished ok");
        let b = p.parse("task t2 finished ok");
        assert_eq!(a.template, b.template);
        assert_eq!(
            p.store().get(a.template).expect("registered").render(),
            "task <*> finished ok"
        );
    }

    #[test]
    fn agents_drift_then_reconcile() {
        // With 2 agents and no merge yet, the same template seen by both
        // agents creates two ids; after the merge interval, they reconcile
        // and future lines share one id.
        let mut p = logan(2, 4);
        let a = p.parse("disk sda ok"); // agent 0
        let b = p.parse("disk sdb ok"); // agent 1
        assert_ne!(
            a.template, b.template,
            "agents are independent before merging"
        );
        p.parse("disk sdc ok"); // agent 0
        p.parse("disk sdd ok"); // agent 1 → triggers reconcile
        let c = p.parse("disk sde ok");
        let d = p.parse("disk sdf ok");
        assert_eq!(c.template, d.template, "post-merge agents agree");
    }

    #[test]
    fn dissimilar_messages_split() {
        let mut p = logan(1, 1_000);
        let a = p.parse("alpha beta gamma delta");
        let b = p.parse("uno dos tres quatro");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn cross_length_matching_within_threshold() {
        let mut p = Logan::new(LoganConfig {
            n_agents: 1,
            distance_threshold: 0.3,
            ..Default::default()
        });
        let a = p.parse("connection closed by peer after timeout");
        let b = p.parse("connection closed by remote peer after timeout");
        assert_eq!(a.template, b.template, "1 insertion over 7 tokens = 0.14");
    }

    #[test]
    fn table1_grouping() {
        let mut p = logan(2, 2);
        let l1 = p.parse("Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53");
        p.parse("Error while receiving data src: 10.250.11.53 dest: /10.250.11.53");
        let l3 = p.parse("Sending 745675869 bytes src: 10.250.11.53 dest: /10.250.11.53");
        // L1 went to agent 0, L3 to agent 0 again (round robin over 2 with
        // L2 in between) — and after any merge they stay grouped.
        assert_eq!(l1.template, l3.template);
    }

    #[test]
    fn empty_message() {
        let mut p = logan(3, 10);
        let out = p.parse("");
        assert!(out.variables.is_empty());
    }

    #[test]
    fn merge_preserves_oldest_id() {
        let mut p = logan(2, 2);
        let first = p.parse("beat node1 alive");
        p.parse("beat node2 alive"); // agent 1, new id, then reconcile
        let after = p.parse("beat node3 alive");
        assert_eq!(after.template, first.template, "merge keeps the older id");
    }
}

#[cfg(test)]
mod corpus_tests {
    use super::*;
    use crate::eval::pairwise_scores;
    use monilog_loggen::corpus;

    #[test]
    fn good_grouping_on_hdfs_like() {
        let corpus = corpus::hdfs_like(150, 19);
        let mut p = Logan::new(LoganConfig::default());
        let parsed: Vec<u32> = corpus
            .logs
            .iter()
            .map(|l| p.parse(&l.record.message).template.0)
            .collect();
        let truth: Vec<u32> = corpus.logs.iter().map(|l| l.truth.template.0).collect();
        let f1 = pairwise_scores(&parsed, &truth).f1;
        assert!(f1 > 0.9, "Logan pairwise F1 {f1}");
    }
}
