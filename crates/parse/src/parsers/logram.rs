//! Logram: efficient log parsing using n-gram dictionaries
//! (Dai et al., 2020).
//!
//! Logram's insight: n-grams made of *static* tokens recur frequently,
//! while n-grams containing variable values are rare. The parser maintains
//! 2-gram and 3-gram frequency dictionaries updated online; a token of the
//! current line is deemed static iff the n-grams it participates in are
//! frequent enough. The template is the line with variable tokens
//! wildcarded.
//!
//! Being dictionary-based (no tree, no pairwise comparison), Logram is
//! naturally distributable — the property the paper's Section IV cares
//! about — but its dictionaries need warm-up, so early lines over-estimate
//! variables. The tests pin both behaviours.

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Logram hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogramConfig {
    /// A 3-gram with at least this count marks its middle token static.
    pub three_gram_threshold: u64,
    /// Fallback threshold for 2-grams when the 3-gram is inconclusive.
    pub two_gram_threshold: u64,
    /// Preprocessing masks.
    pub mask: MaskConfig,
}

impl Default for LogramConfig {
    fn default() -> Self {
        LogramConfig {
            three_gram_threshold: 2,
            two_gram_threshold: 2,
            mask: MaskConfig::STANDARD,
        }
    }
}

/// Boundary marker for line start/end in n-grams.
const BOUNDARY: &str = "\u{1}";

/// The Logram parser.
#[derive(Debug)]
pub struct Logram {
    config: LogramConfig,
    pre: Preprocessor,
    two_grams: HashMap<(String, String), u64>,
    three_grams: HashMap<(String, String, String), u64>,
    store: TemplateStore,
}

impl Logram {
    pub fn new(config: LogramConfig) -> Self {
        assert!(config.three_gram_threshold >= 1);
        assert!(config.two_gram_threshold >= 1);
        Logram {
            pre: Preprocessor::new(config.mask),
            config,
            two_grams: HashMap::new(),
            three_grams: HashMap::new(),
            store: TemplateStore::new(),
        }
    }

    fn update_dictionaries(&mut self, tokens: &[&str]) {
        let padded: Vec<&str> = std::iter::once(BOUNDARY)
            .chain(tokens.iter().copied())
            .chain(std::iter::once(BOUNDARY))
            .collect();
        for w in padded.windows(2) {
            *self
                .two_grams
                .entry((w[0].to_string(), w[1].to_string()))
                .or_default() += 1;
        }
        for w in padded.windows(3) {
            *self
                .three_grams
                .entry((w[0].to_string(), w[1].to_string(), w[2].to_string()))
                .or_default() += 1;
        }
    }

    /// Classify each token as static (`true`) or variable (`false`) from
    /// the dictionaries.
    fn classify(&self, tokens: &[&str]) -> Vec<bool> {
        let padded: Vec<&str> = std::iter::once(BOUNDARY)
            .chain(tokens.iter().copied())
            .chain(std::iter::once(BOUNDARY))
            .collect();
        (0..tokens.len())
            .map(|i| {
                // Token i sits at padded position i+1. It is static if ANY
                // n-gram it participates in is frequent: a variable value is
                // fresh, so every n-gram containing it stays rare, while a
                // static token next to a variable still has one frequent
                // n-gram on its stable side.
                let tg = |a: usize, b: usize, c: usize| {
                    self.three_grams
                        .get(&(
                            padded[a].to_string(),
                            padded[b].to_string(),
                            padded[c].to_string(),
                        ))
                        .copied()
                        .unwrap_or(0)
                };
                if i + 2 < padded.len() && tg(i, i + 1, i + 2) >= self.config.three_gram_threshold {
                    return true;
                }
                let left = self
                    .two_grams
                    .get(&(padded[i].to_string(), padded[i + 1].to_string()))
                    .copied()
                    .unwrap_or(0);
                let right = self
                    .two_grams
                    .get(&(padded[i + 1].to_string(), padded[i + 2].to_string()))
                    .copied()
                    .unwrap_or(0);
                left >= self.config.two_gram_threshold || right >= self.config.two_gram_threshold
            })
            .collect()
    }
}

impl OnlineParser for Logram {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let (masked, original) = self.pre.mask(message);
        self.update_dictionaries(&masked);
        let is_static = self.classify(&masked);
        let skeleton: Vec<TemplateToken> = masked
            .iter()
            .zip(&is_static)
            .map(|(tok, st)| {
                if *st && *tok != "<*>" {
                    TemplateToken::Static((*tok).to_string())
                } else {
                    TemplateToken::Wildcard
                }
            })
            .collect();
        let variables: Vec<String> = skeleton
            .iter()
            .zip(&original)
            .filter(|(t, _)| t.is_wildcard())
            .map(|(_, tok)| (*tok).to_string())
            .collect();
        let before = self.store.len();
        let id = self.store.intern(skeleton);
        ParseOutcome {
            template: id,
            is_new: self.store.len() > before,
            variables,
        }
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::Logram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_dictionaries_separate_statics_from_variables() {
        let mut p = Logram::new(LogramConfig {
            mask: MaskConfig::NONE,
            ..Default::default()
        });
        // Warm up with repeated template, distinct variable values.
        for v in ["alpha", "beta", "gamma", "delta", "epsilon"] {
            p.parse(&format!("task {v} finished ok"));
        }
        let out = p.parse("task zeta finished ok");
        // The variable position is wildcarded once dictionaries are warm.
        let t = p.store().get(out.template).unwrap();
        assert_eq!(t.render(), "task <*> finished ok");
        assert_eq!(out.variables, vec!["zeta"]);
    }

    #[test]
    fn cold_start_overestimates_variables() {
        let mut p = Logram::new(LogramConfig {
            mask: MaskConfig::NONE,
            ..Default::default()
        });
        let out = p.parse("first line ever seen");
        // Nothing is frequent yet: everything is variable.
        let t = p.store().get(out.template).unwrap();
        assert_eq!(t.wildcard_count(), 4);
    }

    #[test]
    fn converged_lines_share_template() {
        let mut p = Logram::new(LogramConfig::default());
        for i in 0..10 {
            p.parse(&format!(
                "Receiving block blk_{i} src: 10.0.0.{i} dest: 10.0.0.9"
            ));
        }
        let a = p.parse("Receiving block blk_77 src: 10.0.0.3 dest: 10.0.0.9");
        let b = p.parse("Receiving block blk_78 src: 10.0.0.4 dest: 10.0.0.9");
        assert_eq!(a.template, b.template);
    }

    #[test]
    fn masked_tokens_are_always_variables() {
        let mut p = Logram::new(LogramConfig::default());
        for _ in 0..5 {
            p.parse("send 42 bytes now");
        }
        let out = p.parse("send 42 bytes now");
        // "42" is masked by STANDARD preprocessing even though frequent.
        assert!(out.variables.contains(&"42".to_string()));
    }

    #[test]
    fn empty_message() {
        let mut p = Logram::new(LogramConfig::default());
        let out = p.parse("");
        assert!(out.variables.is_empty());
    }

    #[test]
    fn thresholds_control_sensitivity() {
        // With a high threshold, even repeated statics stay variables for
        // longer.
        let mut strict = Logram::new(LogramConfig {
            three_gram_threshold: 50,
            two_gram_threshold: 50,
            mask: MaskConfig::NONE,
        });
        for _ in 0..5 {
            strict.parse("stable template line");
        }
        let out = strict.parse("stable template line");
        let t = strict.store().get(out.template).unwrap();
        assert_eq!(
            t.wildcard_count(),
            3,
            "everything still variable at high threshold"
        );
    }
}
