//! Parser implementations.

pub mod drain;
pub mod iplom;
pub mod lenma;
pub mod logan;
pub mod logram;
pub mod sharded;
pub mod shiso;
pub mod slct;
pub mod spell;
