//! Sharded Drain — the paper's planned contribution.
//!
//! "Regarding the distribution, Drain method, which shows the best
//! performances, is not distributable. We plan to provide a distributed
//! version of research tree-based log parsing method as we already have
//! some encouraging results." (Section IV)
//!
//! Strategy: partition the stream across `n_shards` independent Drain
//! trees. The routing key is `(token count, first stable token)` — exactly
//! the first two levels of Drain's own tree — so every line of a given
//! template deterministically lands on the same shard and per-shard
//! accuracy matches single-tree Drain. Shards share no state, so they can
//! run on separate threads/machines; a thin mapping layer translates
//! (shard, local template) pairs into one global template space.
//!
//! Experiment D1 measures the two claims: near-identical accuracy and
//! near-linear throughput scaling (the parallel harness lives in
//! `monilog-stream`; this type is the sequential core).

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::parsers::drain::{Drain, DrainConfig};
use monilog_model::{TemplateId, TemplateStore};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Sharded-Drain configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardedDrainConfig {
    pub n_shards: usize,
    /// Per-shard Drain configuration.
    pub drain: DrainConfig,
}

impl Default for ShardedDrainConfig {
    fn default() -> Self {
        ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        }
    }
}

/// A set of independent Drain trees behind a deterministic router.
#[derive(Debug)]
pub struct ShardedDrain {
    config: ShardedDrainConfig,
    shards: Vec<Drain>,
    /// (shard, local template id) → global template id.
    global_ids: HashMap<(usize, TemplateId), TemplateId>,
    store: TemplateStore,
}

impl ShardedDrain {
    pub fn new(config: ShardedDrainConfig) -> Self {
        assert!(config.n_shards >= 1, "need at least one shard");
        ShardedDrain {
            shards: (0..config.n_shards)
                .map(|_| Drain::new(config.drain))
                .collect(),
            config,
            global_ids: HashMap::new(),
            store: TemplateStore::new(),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// Deterministic shard for a message. Public so a parallel deployment
    /// (one thread per shard) can route identically and be compared against
    /// this sequential reference.
    pub fn route(&self, message: &str) -> usize {
        Self::route_static(message, self.config.n_shards)
    }

    /// Routing function without a parser instance.
    ///
    /// The key is the first message token (digit-bearing tokens normalize
    /// to `<*>`, mirroring Drain's own tree routing), which is constant
    /// across all lines of a template — so routing is template-stable.
    /// Deliberately *not* the full token count: counting tokens walks the
    /// whole line and would serialize half the parsing cost into the
    /// router (measured in experiment D1).
    pub fn route_static(message: &str, n_shards: usize) -> usize {
        let first = message.split_whitespace().next().unwrap_or("");
        let first_key = if first.bytes().any(|b| b.is_ascii_digit()) {
            "<*>"
        } else {
            first
        };
        let mut h = DefaultHasher::new();
        first_key.len().hash(&mut h);
        first_key.hash(&mut h);
        (h.finish() % n_shards as u64) as usize
    }

    /// Lines parsed by each shard — the load-balance diagnostic for D1.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lines_parsed()).collect()
    }
}

impl OnlineParser for ShardedDrain {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let shard_idx = self.route(message);
        let local = self.shards[shard_idx].parse(message);
        let local_template = self.shards[shard_idx]
            .store()
            .get(local.template)
            .expect("shard returned a valid id")
            .tokens
            .clone();
        let store = &mut self.store;
        let gid = *self
            .global_ids
            .entry((shard_idx, local.template))
            .or_insert_with(|| store.intern(local_template.clone()));
        // Keep the global view in sync with template widening in the shard.
        self.store.update(gid, local_template);
        ParseOutcome {
            template: gid,
            is_new: local.is_new,
            variables: local.variables,
        }
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::ShardedDrain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_loggen::corpus;
    use std::collections::HashMap;

    #[test]
    fn single_shard_matches_drain_exactly() {
        let corpus = corpus::cloud_mixed(20, 5);
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 1,
            drain: DrainConfig::default(),
        });
        let mut plain = Drain::new(DrainConfig::default());
        for log in &corpus.logs {
            let a = sharded.parse(&log.record.message);
            let b = plain.parse(&log.record.message);
            assert_eq!(a.variables, b.variables);
            assert_eq!(a.is_new, b.is_new);
        }
        assert_eq!(sharded.store().len(), plain.store().len());
    }

    #[test]
    fn routing_is_deterministic_and_template_stable() {
        let sharded = ShardedDrain::new(ShardedDrainConfig::default());
        // Same template, different variable values → same shard.
        let a = sharded.route("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2");
        let b = sharded.route("Sending 999 bytes src: 10.9.9.9 dest: /10.0.0.1");
        assert_eq!(a, b);
        assert_eq!(
            a,
            sharded.route("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2")
        );
    }

    #[test]
    fn sharding_preserves_grouping_quality() {
        // Every line of a truth template must land in exactly one parsed
        // template, same as plain Drain, because routing is template-stable.
        let corpus = corpus::hdfs_like(150, 9);
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 8,
            drain: DrainConfig::default(),
        });
        let mut truth_to_parsed: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for log in &corpus.logs {
            let out = sharded.parse(&log.record.message);
            truth_to_parsed
                .entry(log.truth.template.0)
                .or_default()
                .insert(out.template.0);
        }
        for (truth, parsed) in truth_to_parsed {
            assert!(
                parsed.len() <= 2,
                "truth template {truth} scattered across {} parsed templates",
                parsed.len()
            );
        }
    }

    #[test]
    fn shards_share_the_load() {
        let corpus = corpus::cloud_mixed(30, 13);
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        });
        for log in &corpus.logs {
            sharded.parse(&log.record.message);
        }
        let loads = sharded.shard_loads();
        assert_eq!(loads.iter().sum::<u64>() as usize, corpus.logs.len());
        let active = loads.iter().filter(|&&l| l > 0).count();
        assert!(
            active >= 3,
            "load concentrated on {active} shards: {loads:?}"
        );
    }

    #[test]
    fn global_ids_are_distinct_across_shards() {
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        });
        let corpus = corpus::cloud_mixed(10, 17);
        let mut seen = std::collections::HashSet::new();
        for log in &corpus.logs {
            seen.insert(sharded.parse(&log.record.message).template);
        }
        // All returned ids resolve in the global store.
        for id in seen {
            assert!(sharded.store().get(id).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        ShardedDrain::new(ShardedDrainConfig {
            n_shards: 0,
            drain: DrainConfig::default(),
        });
    }
}
