//! Sharded Drain — the paper's planned contribution.
//!
//! "Regarding the distribution, Drain method, which shows the best
//! performances, is not distributable. We plan to provide a distributed
//! version of research tree-based log parsing method as we already have
//! some encouraging results." (Section IV)
//!
//! Strategy: partition the stream across `n_shards` independent Drain
//! trees behind a [`BalancedRouter`]: per-key sticky routing on the first
//! stable token (the first level of Drain's own tree), with
//! power-of-two-choices placement and hot-key splitting so one heavy
//! template cannot cap the load balance. Shards share no state, so they
//! can run on separate threads/machines; a thin mapping layer translates
//! (shard, local template) pairs into one global template space by
//! interning the *rendered pattern* — which is what keeps grouping exact
//! when a hot key splits: replicas re-discover the same masked template
//! and collapse onto one global id.
//!
//! Experiment D1 measures the claims: identical accuracy, load balance,
//! and near-linear throughput scaling (the parallel harness lives in
//! `monilog-stream`; this type is the sequential core).

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::parsers::drain::{Drain, DrainConfig};
use crate::route::{BalancedRouter, SplitEvent};
use monilog_model::{TemplateId, TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sharded-Drain configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardedDrainConfig {
    pub n_shards: usize,
    /// Per-shard Drain configuration.
    pub drain: DrainConfig,
}

impl Default for ShardedDrainConfig {
    fn default() -> Self {
        ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        }
    }
}

/// A set of independent Drain trees behind a deterministic router.
#[derive(Debug)]
pub struct ShardedDrain {
    config: ShardedDrainConfig,
    shards: Vec<Drain>,
    router: BalancedRouter,
    /// (shard, local template id) → global template id.
    global_ids: HashMap<(usize, TemplateId), TemplateId>,
    store: TemplateStore,
}

impl ShardedDrain {
    pub fn new(config: ShardedDrainConfig) -> Self {
        assert!(config.n_shards >= 1, "need at least one shard");
        ShardedDrain {
            shards: (0..config.n_shards)
                .map(|_| Drain::new(config.drain))
                .collect(),
            router: BalancedRouter::new(config.n_shards),
            config,
            global_ids: HashMap::new(),
            store: TemplateStore::new(),
        }
    }

    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// Shard for the next occurrence of `message`'s routing key.
    /// Stateful: the router tracks per-key and per-shard load to place
    /// new keys and split hot ones — see [`BalancedRouter`]. Deterministic
    /// in the input sequence, so a parallel deployment feeding its router
    /// the same lines in the same order routes identically.
    pub fn route(&mut self, message: &str) -> usize {
        self.router.route(message)
    }

    /// The router state (load and split diagnostics for D1).
    pub fn router(&self) -> &BalancedRouter {
        &self.router
    }

    /// Lines parsed by each shard — the load-balance diagnostic for D1.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.lines_parsed()).collect()
    }

    /// Template handoff when a hot key splits: copy the key's templates
    /// from the rendezvous-primary replica into the newly added one,
    /// bound to the *same global ids*. Without this, the new replica
    /// re-discovers the key's templates from scratch and its early lines
    /// intern under pre-widening patterns — a second global id for the
    /// same template, which strict grouping accuracy punishes. In a
    /// deployed cluster this is the split protocol message: the
    /// coordinator ships the key's current template set to the adopting
    /// worker.
    fn handoff(&mut self, key: &str, ev: SplitEvent) {
        if ev.source == ev.added {
            return;
        }
        let templates: Vec<(TemplateId, Vec<TemplateToken>)> = self.shards[ev.source]
            .store()
            .iter()
            .filter(|t| match t.tokens.first() {
                Some(TemplateToken::Static(s)) => s == key,
                Some(TemplateToken::Wildcard) => key == "<*>",
                None => false,
            })
            .map(|t| (t.id, t.tokens.clone()))
            .collect();
        for (src_local, tokens) in templates {
            if let Some(&gid) = self.global_ids.get(&(ev.source, src_local)) {
                let new_local = self.shards[ev.added].adopt(&tokens);
                self.global_ids.entry((ev.added, new_local)).or_insert(gid);
            }
        }
    }
}

impl OnlineParser for ShardedDrain {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let (shard_idx, split) = self.router.route_detailed(message);
        if let Some(ev) = split {
            self.handoff(BalancedRouter::key_token(message), ev);
        }
        let local = self.shards[shard_idx].parse(message);
        let local_tokens = &self.shards[shard_idx]
            .store()
            .get(local.template)
            .expect("shard returned a valid id")
            .tokens;
        let gid = match self.global_ids.get(&(shard_idx, local.template)) {
            Some(&gid) => {
                // Sync the global view only when the shard actually
                // widened its template — the warm path is a comparison,
                // not a clone + re-render per line.
                let stale = self
                    .store
                    .get(gid)
                    .is_some_and(|global| &global.tokens != local_tokens);
                if stale {
                    let tokens = local_tokens.clone();
                    self.store.update(gid, tokens);
                }
                gid
            }
            None => {
                let gid = self.store.intern(local_tokens.clone());
                self.global_ids.insert((shard_idx, local.template), gid);
                gid
            }
        };
        ParseOutcome {
            template: gid,
            is_new: local.is_new,
            variables: local.variables,
        }
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::ShardedDrain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_loggen::corpus;
    use std::collections::HashMap;

    #[test]
    fn single_shard_matches_drain_exactly() {
        let corpus = corpus::cloud_mixed(20, 5);
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 1,
            drain: DrainConfig::default(),
        });
        let mut plain = Drain::new(DrainConfig::default());
        for log in &corpus.logs {
            let a = sharded.parse(&log.record.message);
            let b = plain.parse(&log.record.message);
            assert_eq!(a.variables, b.variables);
            assert_eq!(a.is_new, b.is_new);
        }
        assert_eq!(sharded.store().len(), plain.store().len());
    }

    #[test]
    fn routing_is_deterministic_and_template_stable() {
        let mut sharded = ShardedDrain::new(ShardedDrainConfig::default());
        // Same template, different variable values → same shard (sticky
        // until the key is hot enough to split, which 3 lines is not).
        let a = sharded.route("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2");
        let b = sharded.route("Sending 999 bytes src: 10.9.9.9 dest: /10.0.0.1");
        assert_eq!(a, b);
        assert_eq!(
            a,
            sharded.route("Sending 138 bytes src: 10.0.0.1 dest: /10.0.0.2")
        );
    }

    #[test]
    fn hot_key_splitting_keeps_global_ids_collapsed() {
        // Push one template hard enough to split its routing key across
        // shards; the global intern layer must keep every line on one id.
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        });
        let mut ids = std::collections::HashSet::new();
        for i in 0..2_000u64 {
            let out = sharded.parse(&format!(
                "Forwarded connection {:08} to backend be{} weight {}",
                i * 2654435761 % 99_999_999,
                i % 60,
                i % 40
            ));
            ids.insert(out.template);
        }
        assert!(
            sharded.router().split_key_count() >= 1,
            "a single-key stream at 2000 lines must split"
        );
        assert!(
            sharded.shard_loads().iter().filter(|&&l| l > 0).count() > 1,
            "split key must actually use several shards: {:?}",
            sharded.shard_loads()
        );
        assert_eq!(ids.len(), 1, "replicas must collapse to one global id");
    }

    #[test]
    fn sharding_preserves_grouping_quality() {
        // Every line of a truth template must land in exactly one parsed
        // template, same as plain Drain, because routing is template-stable.
        let corpus = corpus::hdfs_like(150, 9);
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 8,
            drain: DrainConfig::default(),
        });
        let mut truth_to_parsed: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
        for log in &corpus.logs {
            let out = sharded.parse(&log.record.message);
            truth_to_parsed
                .entry(log.truth.template.0)
                .or_default()
                .insert(out.template.0);
        }
        for (truth, parsed) in truth_to_parsed {
            assert!(
                parsed.len() <= 2,
                "truth template {truth} scattered across {} parsed templates",
                parsed.len()
            );
        }
    }

    #[test]
    fn shards_share_the_load() {
        let corpus = corpus::cloud_mixed(30, 13);
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        });
        for log in &corpus.logs {
            sharded.parse(&log.record.message);
        }
        let loads = sharded.shard_loads();
        assert_eq!(loads.iter().sum::<u64>() as usize, corpus.logs.len());
        let active = loads.iter().filter(|&&l| l > 0).count();
        assert!(
            active >= 3,
            "load concentrated on {active} shards: {loads:?}"
        );
    }

    #[test]
    fn global_ids_are_distinct_across_shards() {
        let mut sharded = ShardedDrain::new(ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        });
        let corpus = corpus::cloud_mixed(10, 17);
        let mut seen = std::collections::HashSet::new();
        for log in &corpus.logs {
            seen.insert(sharded.parse(&log.record.message).template);
        }
        // All returned ids resolve in the global store.
        for id in seen {
            assert!(sharded.store().get(id).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        ShardedDrain::new(ShardedDrainConfig {
            n_shards: 0,
            drain: DrainConfig::default(),
        });
    }
}
