//! SHISO: incremental mining of system log formats (Mizutani, SCC 2013).
//!
//! SHISO grows a search tree of log formats. Each node holds a format
//! (template); a new message descends the tree looking for a node whose
//! format is similar enough (token similarity computed from per-token
//! character-composition vectors). On a match the format is *adjusted*
//! (mismatching tokens widen to wildcards); otherwise the message becomes a
//! new child, subject to a per-node children budget.

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateId, TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};

/// SHISO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShisoConfig {
    /// Maximum children per tree node (the paper's `t`).
    pub max_children: usize,
    /// Similarity threshold in `[0,1]`; higher demands closer formats.
    pub threshold: f64,
    /// Preprocessing masks.
    pub mask: MaskConfig,
}

impl Default for ShisoConfig {
    fn default() -> Self {
        ShisoConfig {
            max_children: 4,
            threshold: 0.6,
            mask: MaskConfig::STANDARD,
        }
    }
}

#[derive(Debug)]
struct ShisoNode {
    id: TemplateId,
    skeleton: Vec<TemplateToken>,
    children: Vec<ShisoNode>,
}

/// The SHISO parser.
#[derive(Debug)]
pub struct Shiso {
    config: ShisoConfig,
    pre: Preprocessor,
    roots: Vec<ShisoNode>,
    store: TemplateStore,
}

/// Character-composition vector of a token: counts of (lowercase,
/// uppercase, digit, other), normalized. SHISO compares tokens by the
/// distance of these vectors, so `x92` and `b07` look alike while `x92`
/// and `started` do not.
fn char_vec(token: &str) -> [f64; 4] {
    let mut v = [0f64; 4];
    for b in token.bytes() {
        match b {
            b'a'..=b'z' => v[0] += 1.0,
            b'A'..=b'Z' => v[1] += 1.0,
            b'0'..=b'9' => v[2] += 1.0,
            _ => v[3] += 1.0,
        }
    }
    let n: f64 = v.iter().sum();
    if n > 0.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
    v
}

/// Similarity of two tokens in [0,1]: 1 for equal text, otherwise a blend
/// of character-multiset overlap (distinguishes different words) and
/// composition-class similarity (keeps `x92` close to `b07` — SHISO's
/// motivating case of interchangeable identifiers).
fn token_sim(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    let (va, vb) = (char_vec(a), char_vec(b));
    let l1: f64 = va.iter().zip(&vb).map(|(x, y)| (x - y).abs()).sum();
    let class_sim = 1.0 - l1 / 2.0;
    // Character-multiset Jaccard.
    let mut counts = [0i32; 256];
    for byte in a.bytes() {
        counts[byte as usize] += 1;
    }
    let mut inter = 0i32;
    for byte in b.bytes() {
        if counts[byte as usize] > 0 {
            inter += 1;
            counts[byte as usize] -= 1;
        }
    }
    let union = (a.len() + b.len()) as i32 - inter;
    let char_sim = if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    };
    0.4 * char_sim + 0.6 * class_sim
}

impl Shiso {
    pub fn new(config: ShisoConfig) -> Self {
        assert!(config.max_children >= 1);
        assert!((0.0..=1.0).contains(&config.threshold));
        Shiso {
            pre: Preprocessor::new(config.mask),
            config,
            roots: Vec::new(),
            store: TemplateStore::new(),
        }
    }

    /// Format similarity: average token similarity over aligned positions;
    /// length mismatch is penalized by comparing over the longer length.
    fn format_sim(skeleton: &[TemplateToken], tokens: &[&str]) -> f64 {
        let n = skeleton.len().max(tokens.len());
        if n == 0 {
            return 1.0;
        }
        let mut total = 0.0;
        for i in 0..n {
            match (skeleton.get(i), tokens.get(i)) {
                (Some(TemplateToken::Wildcard), Some(_)) => total += 1.0,
                (Some(TemplateToken::Static(s)), Some(t)) => total += token_sim(s, t),
                _ => {} // length mismatch position: similarity 0
            }
        }
        total / n as f64
    }

    /// Depth-first search for the best matching node; records the path
    /// (child indices from the root set) of the best candidate.
    fn find_best(
        nodes: &[ShisoNode],
        tokens: &[&str],
        threshold: f64,
        path: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        for (i, node) in nodes.iter().enumerate() {
            path.push(i);
            let sim = Self::format_sim(&node.skeleton, tokens);
            if sim >= threshold
                && node.skeleton.len() == tokens.len()
                && best.as_ref().is_none_or(|(_, bs)| sim > *bs)
            {
                *best = Some((path.clone(), sim));
            }
            Self::find_best(&node.children, tokens, threshold, path, best);
            path.pop();
        }
    }

    fn node_at_mut<'a>(nodes: &'a mut [ShisoNode], path: &[usize]) -> &'a mut ShisoNode {
        let (first, rest) = path.split_first().expect("path is never empty");
        let node = &mut nodes[*first];
        if rest.is_empty() {
            node
        } else {
            Self::node_at_mut(&mut node.children, rest)
        }
    }
}

impl OnlineParser for Shiso {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let (masked, original) = self.pre.mask(message);

        let mut best = None;
        Self::find_best(
            &self.roots,
            &masked,
            self.config.threshold,
            &mut Vec::new(),
            &mut best,
        );
        if let Some((path, _)) = best {
            let node = Self::node_at_mut(&mut self.roots, &path);
            // Adjust the format: widen mismatches.
            let mut changed = false;
            for (t, tok) in node.skeleton.iter_mut().zip(&masked) {
                if let TemplateToken::Static(s) = t {
                    if s != tok {
                        *t = TemplateToken::Wildcard;
                        changed = true;
                    }
                }
            }
            if changed {
                self.store.update(node.id, node.skeleton.clone());
            }
            let variables = node
                .skeleton
                .iter()
                .zip(&original)
                .filter(|(t, _)| t.is_wildcard())
                .map(|(_, tok)| (*tok).to_string())
                .collect();
            return ParseOutcome {
                template: node.id,
                is_new: false,
                variables,
            };
        }

        // No match: insert a new node, descending while nodes are full.
        let skeleton: Vec<TemplateToken> = masked
            .iter()
            .map(|t| {
                if *t == "<*>" {
                    TemplateToken::Wildcard
                } else {
                    TemplateToken::Static((*t).to_string())
                }
            })
            .collect();
        let id = self.store.intern(skeleton.clone());
        let variables = skeleton
            .iter()
            .zip(&original)
            .filter(|(t, _)| t.is_wildcard())
            .map(|(_, tok)| (*tok).to_string())
            .collect();
        // intern() may dedup to an existing node's template; in that case
        // do not insert a duplicate node.
        if !node_exists(&self.roots, id) {
            let node = ShisoNode {
                id,
                skeleton,
                children: Vec::new(),
            };
            let max = self.config.max_children;
            let mut level = &mut self.roots;
            loop {
                if level.len() < max {
                    level.push(node);
                    break;
                }
                // Descend into the most similar full node's children.
                let mut best_idx = 0;
                let mut best_sim = -1.0;
                for (i, n) in level.iter().enumerate() {
                    let sim = Self::format_sim(&n.skeleton, &masked);
                    if sim > best_sim {
                        best_sim = sim;
                        best_idx = i;
                    }
                }
                level = &mut level[best_idx].children;
            }
        }
        ParseOutcome {
            template: id,
            is_new: true,
            variables,
        }
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::Shiso
    }
}

fn node_exists(nodes: &[ShisoNode], id: TemplateId) -> bool {
    nodes
        .iter()
        .any(|n| n.id == id || node_exists(&n.children, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_vec_normalizes() {
        let v = char_vec("Ab1!");
        assert_eq!(v, [0.25, 0.25, 0.25, 0.25]);
        assert_eq!(char_vec(""), [0.0; 4]);
    }

    #[test]
    fn token_sim_behaviour() {
        assert_eq!(token_sim("abc", "abc"), 1.0);
        // Same composition class, different text: high but < 1.
        let s = token_sim("x92", "b07");
        assert!(s > 0.5 && s < 1.0, "{s}");
        // Letters vs digits: low.
        assert!(token_sim("started", "12345") < 0.2);
    }

    #[test]
    fn identical_messages_share_node() {
        let mut p = Shiso::new(ShisoConfig::default());
        let a = p.parse("service gateway restarted cleanly");
        let b = p.parse("service gateway restarted cleanly");
        assert_eq!(a.template, b.template);
        assert!(!b.is_new);
    }

    #[test]
    fn similar_messages_adjust_format() {
        let mut p = Shiso::new(ShisoConfig {
            mask: MaskConfig::NONE,
            ..Default::default()
        });
        let a = p.parse("process x92 exited code 0");
        let b = p.parse("process b07 exited code 0");
        assert_eq!(a.template, b.template);
        let t = p.store().get(a.template).unwrap();
        assert!(t.render().contains("<*>"), "{}", t.render());
    }

    #[test]
    fn dissimilar_messages_split() {
        let mut p = Shiso::new(ShisoConfig::default());
        let a = p.parse("alpha beta gamma");
        let b = p.parse("100 200 300");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn children_budget_forces_descent() {
        let mut p = Shiso::new(ShisoConfig {
            max_children: 2,
            threshold: 0.99,
            mask: MaskConfig::NONE,
        });
        // Four dissimilar messages with a tiny budget: the tree must grow
        // in depth rather than width, and all messages still parse.
        let outs: Vec<ParseOutcome> = ["alpha beta", "gamma delta", "epsilon zeta", "eta theta"]
            .iter()
            .map(|m| p.parse(m))
            .collect();
        let mut ids: Vec<u32> = outs.iter().map(|o| o.template.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "all four formats kept");
    }

    #[test]
    fn length_mismatch_is_penalized() {
        let mut p = Shiso::new(ShisoConfig {
            threshold: 0.7,
            ..Default::default()
        });
        let a = p.parse("connection closed");
        let b = p.parse("connection closed by remote peer after timeout");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn empty_message() {
        let mut p = Shiso::new(ShisoConfig::default());
        let out = p.parse("");
        assert!(out.variables.is_empty());
    }
}
