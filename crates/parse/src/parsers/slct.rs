//! SLCT: Simple Logfile Clustering Tool (Vaarandi, IPOM 2003).
//!
//! The earliest of the batch baselines. Two passes:
//! 1. Count the frequency of every `(position, word)` pair.
//! 2. For each line, the frequent pairs (count ≥ support) form its cluster
//!    candidate; candidates that themselves reach the support threshold
//!    become clusters, all other lines fall into the outlier cluster.

use crate::api::{BatchParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// SLCT hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlctConfig {
    /// Absolute support threshold: a `(position, word)` pair is frequent if
    /// it occurs in at least this many lines.
    pub support: usize,
    /// Preprocessing masks.
    pub mask: MaskConfig,
}

impl Default for SlctConfig {
    fn default() -> Self {
        SlctConfig {
            support: 10,
            mask: MaskConfig::STANDARD,
        }
    }
}

/// The SLCT batch parser.
#[derive(Debug)]
pub struct Slct {
    config: SlctConfig,
    pre: Preprocessor,
    store: TemplateStore,
}

impl Slct {
    pub fn new(config: SlctConfig) -> Self {
        assert!(config.support >= 1);
        Slct {
            pre: Preprocessor::new(config.mask),
            config,
            store: TemplateStore::new(),
        }
    }
}

impl BatchParser for Slct {
    fn parse_batch(&mut self, messages: &[&str]) -> Vec<ParseOutcome> {
        self.store = TemplateStore::new();
        let masked_and_original: Vec<(Vec<&str>, Vec<&str>)> =
            messages.iter().map(|m| self.pre.mask(m)).collect();

        // Pass 1: (position, word) frequencies. Token count is part of the
        // key so different-shaped lines never share pairs.
        let mut freq: HashMap<(usize, usize, &str), usize> = HashMap::new();
        for (masked, _) in &masked_and_original {
            for (pos, tok) in masked.iter().enumerate() {
                if *tok != "<*>" {
                    *freq.entry((masked.len(), pos, tok)).or_default() += 1;
                }
            }
        }

        // Pass 2: build each line's cluster candidate.
        let mut candidate_count: HashMap<Vec<TemplateToken>, usize> = HashMap::new();
        let mut line_candidates: Vec<Vec<TemplateToken>> = Vec::with_capacity(messages.len());
        for (masked, _) in &masked_and_original {
            let skeleton: Vec<TemplateToken> = masked
                .iter()
                .enumerate()
                .map(|(pos, tok)| {
                    if *tok != "<*>" && freq[&(masked.len(), pos, *tok)] >= self.config.support {
                        TemplateToken::Static((*tok).to_string())
                    } else {
                        TemplateToken::Wildcard
                    }
                })
                .collect();
            *candidate_count.entry(skeleton.clone()).or_default() += 1;
            line_candidates.push(skeleton);
        }

        // Clusters with support become templates; the rest share a per-length
        // outlier template (all wildcards).
        let mut outcomes = Vec::with_capacity(messages.len());
        for ((masked, original), skeleton) in masked_and_original.iter().zip(line_candidates) {
            let final_skeleton = if candidate_count[&skeleton] >= self.config.support {
                skeleton
            } else {
                vec![TemplateToken::Wildcard; masked.len()]
            };
            let variables: Vec<String> = final_skeleton
                .iter()
                .zip(original.iter())
                .filter(|(t, _)| t.is_wildcard())
                .map(|(_, tok)| (*tok).to_string())
                .collect();
            let id = self.store.intern(final_skeleton);
            outcomes.push(ParseOutcome {
                template: id,
                is_new: false,
                variables,
            });
        }
        outcomes
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::Slct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_pattern_forms_cluster() {
        let msgs: Vec<String> = (0..30).map(|i| format!("user u{i} logged in")).collect();
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let mut p = Slct::new(SlctConfig {
            support: 10,
            mask: MaskConfig::NONE,
        });
        let outs = p.parse_batch(&refs);
        assert!(outs.iter().all(|o| o.template == outs[0].template));
        let t = p.store().get(outs[0].template).unwrap();
        assert_eq!(t.render(), "user <*> logged in");
        assert_eq!(outs[7].variables, vec!["u7"]);
    }

    #[test]
    fn rare_lines_fall_into_outlier_cluster() {
        let mut msgs: Vec<String> = (0..30).map(|i| format!("ping host h{i} ok")).collect();
        msgs.push("kernel panic imminent now".to_string());
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let mut p = Slct::new(SlctConfig {
            support: 10,
            mask: MaskConfig::NONE,
        });
        let outs = p.parse_batch(&refs);
        let outlier = outs.last().unwrap();
        assert_ne!(outlier.template, outs[0].template);
        let t = p.store().get(outlier.template).unwrap();
        assert_eq!(t.wildcard_count(), 4, "outlier template is all wildcards");
    }

    #[test]
    fn two_frequent_patterns_two_clusters() {
        let mut msgs = Vec::new();
        for i in 0..20 {
            msgs.push(format!("open file f{i} rw"));
            msgs.push(format!("close sock s{i} ok"));
        }
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let mut p = Slct::new(SlctConfig {
            support: 10,
            mask: MaskConfig::NONE,
        });
        let outs = p.parse_batch(&refs);
        assert_ne!(outs[0].template, outs[1].template);
        assert_eq!(outs[0].template, outs[2].template);
        assert_eq!(outs[1].template, outs[3].template);
    }

    #[test]
    fn support_threshold_matters() {
        let msgs: Vec<String> = (0..5).map(|i| format!("beat n{i}")).collect();
        let refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        // support 6 > corpus: everything is outlier.
        let mut strict = Slct::new(SlctConfig {
            support: 6,
            mask: MaskConfig::NONE,
        });
        let outs = strict.parse_batch(&refs);
        let t = strict.store().get(outs[0].template).unwrap();
        assert_eq!(t.wildcard_count(), 2);
        // support 3: "beat" is frequent.
        let mut loose = Slct::new(SlctConfig {
            support: 3,
            mask: MaskConfig::NONE,
        });
        let outs = loose.parse_batch(&refs);
        let t = loose.store().get(outs[0].template).unwrap();
        assert_eq!(t.render(), "beat <*>");
    }

    #[test]
    fn empty_corpus_and_empty_lines() {
        let mut p = Slct::new(SlctConfig::default());
        assert!(p.parse_batch(&[]).is_empty());
        let outs = p.parse_batch(&["", "", ""]);
        assert_eq!(outs.len(), 3);
        assert!(outs.iter().all(|o| o.template == outs[0].template));
    }
}
