//! Spell: streaming parsing of system event logs via longest common
//! subsequence (Du & Li, ICDM 2016).
//!
//! Each discovered template ("LCS object") is the longest common
//! subsequence of the messages assigned to it. A new message joins the
//! object with the longest LCS, provided the LCS covers at least
//! `tau` of the message's tokens; positions of the template dropped by the
//! merge become wildcards.

use crate::api::{OnlineParser, ParseOutcome, ParserKind};
use crate::preprocess::{MaskConfig, Preprocessor};
use monilog_model::{TemplateId, TemplateStore, TemplateToken};
use serde::{Deserialize, Serialize};

/// Spell hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpellConfig {
    /// Minimum fraction of message tokens the LCS must cover to join an
    /// existing object (the paper's `tau`, default 0.5).
    pub tau: f64,
    /// Preprocessing masks (Spell is usually run with light masking).
    pub mask: MaskConfig,
}

impl Default for SpellConfig {
    fn default() -> Self {
        SpellConfig {
            tau: 0.5,
            mask: MaskConfig::STANDARD,
        }
    }
}

/// One LCS object: its current template skeleton (statics + wildcards).
#[derive(Debug, Clone)]
struct LcsObject {
    id: TemplateId,
    /// The static tokens of the template, in order (wildcards elided) —
    /// this is the sequence LCS is computed against.
    statics: Vec<String>,
    /// Full token skeleton for rendering/variable extraction.
    skeleton: Vec<TemplateToken>,
}

/// The Spell parser.
#[derive(Debug)]
pub struct Spell {
    config: SpellConfig,
    pre: Preprocessor,
    objects: Vec<LcsObject>,
    store: TemplateStore,
}

impl Spell {
    pub fn new(config: SpellConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.tau), "tau must be in [0,1]");
        Spell {
            pre: Preprocessor::new(config.mask),
            config,
            objects: Vec::new(),
            store: TemplateStore::new(),
        }
    }

    /// Length of the longest common subsequence of `a` and `b`.
    fn lcs_len(a: &[String], b: &[&str]) -> usize {
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        // Rolling one-row DP: O(|a|·|b|) time, O(|b|) space.
        let mut row = vec![0usize; b.len() + 1];
        for ai in a {
            let mut prev_diag = 0;
            for (j, bj) in b.iter().enumerate() {
                let tmp = row[j + 1];
                row[j + 1] = if ai == bj {
                    prev_diag + 1
                } else {
                    row[j + 1].max(row[j])
                };
                prev_diag = tmp;
            }
        }
        row[b.len()]
    }

    /// The LCS itself (as indices into `b`), via full DP backtracking.
    fn lcs_positions(a: &[String], b: &[&str]) -> Vec<usize> {
        let n = a.len();
        let m = b.len();
        let mut dp = vec![vec![0usize; m + 1]; n + 1];
        for i in 0..n {
            for j in 0..m {
                dp[i + 1][j + 1] = if a[i] == b[j] {
                    dp[i][j] + 1
                } else {
                    dp[i][j + 1].max(dp[i + 1][j])
                };
            }
        }
        let mut out = Vec::new();
        let (mut i, mut j) = (n, m);
        while i > 0 && j > 0 {
            if a[i - 1] == b[j - 1] {
                out.push(j - 1);
                i -= 1;
                j -= 1;
            } else if dp[i - 1][j] >= dp[i][j - 1] {
                i -= 1;
            } else {
                j -= 1;
            }
        }
        out.reverse();
        out
    }

    /// Rebuild a skeleton for message `tokens` where only positions in
    /// `keep` (sorted) stay static; other positions become wildcards, with
    /// runs of wildcards collapsed to one.
    fn skeleton_from(tokens: &[&str], keep: &[usize]) -> Vec<TemplateToken> {
        let mut out: Vec<TemplateToken> = Vec::with_capacity(tokens.len());
        let mut keep_iter = keep.iter().peekable();
        for (i, tok) in tokens.iter().enumerate() {
            if keep_iter.peek() == Some(&&i) {
                keep_iter.next();
                out.push(TemplateToken::Static((*tok).to_string()));
            } else if !matches!(out.last(), Some(TemplateToken::Wildcard)) {
                out.push(TemplateToken::Wildcard);
            }
        }
        out
    }
}

impl OnlineParser for Spell {
    fn parse(&mut self, message: &str) -> ParseOutcome {
        let (masked, original) = self.pre.mask(message);
        // Statics of the incoming message (masked wildcards are never part
        // of an LCS).
        let msg_statics: Vec<&str> = masked.iter().copied().filter(|t| *t != "<*>").collect();

        // Find the object with the longest LCS ≥ tau·|statics|.
        let needed = ((self.config.tau * msg_statics.len() as f64).ceil() as usize).max(1);
        let mut best: Option<(usize, usize)> = None; // (object index, lcs len)
        for (idx, obj) in self.objects.iter().enumerate() {
            // Prune: the LCS cannot exceed min(len).
            if obj.statics.len().min(msg_statics.len()) < needed {
                continue;
            }
            let l = Self::lcs_len(&obj.statics, &msg_statics);
            if l >= needed && best.is_none_or(|(_, bl)| l > bl) {
                best = Some((idx, l));
            }
        }

        match best {
            Some((idx, _)) => {
                let positions = Self::lcs_positions(&self.objects[idx].statics, &msg_statics);
                // Map positions in `msg_statics` back to positions in `masked`.
                let static_idx: Vec<usize> = masked
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| **t != "<*>")
                    .map(|(i, _)| i)
                    .collect();
                let keep: Vec<usize> = positions.iter().map(|&p| static_idx[p]).collect();
                let skeleton = Self::skeleton_from(&masked, &keep);
                let obj = &mut self.objects[idx];
                if skeleton != obj.skeleton {
                    obj.statics = statics_of(&skeleton);
                    obj.skeleton = skeleton.clone();
                    self.store.update(obj.id, skeleton);
                }
                let variables = variables_of(&original, &keep);
                ParseOutcome {
                    template: obj.id,
                    is_new: false,
                    variables,
                }
            }
            None => {
                let keep: Vec<usize> = masked
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| **t != "<*>")
                    .map(|(i, _)| i)
                    .collect();
                let skeleton = Self::skeleton_from(&masked, &keep);
                let id = self.store.intern(skeleton.clone());
                // intern() dedups: only track a new object if unseen.
                if !self.objects.iter().any(|o| o.id == id) {
                    self.objects.push(LcsObject {
                        id,
                        statics: statics_of(&skeleton),
                        skeleton,
                    });
                }
                let variables = variables_of(&original, &keep);
                ParseOutcome {
                    template: id,
                    is_new: true,
                    variables,
                }
            }
        }
    }

    fn store(&self) -> &TemplateStore {
        &self.store
    }

    fn kind(&self) -> ParserKind {
        ParserKind::Spell
    }
}

fn statics_of(skeleton: &[TemplateToken]) -> Vec<String> {
    skeleton
        .iter()
        .filter_map(|t| match t {
            TemplateToken::Static(s) => Some(s.clone()),
            TemplateToken::Wildcard => None,
        })
        .collect()
}

/// Message tokens not kept as static, in order — Spell's variable extraction.
fn variables_of(original: &[&str], keep: &[usize]) -> Vec<String> {
    let mut keep_iter = keep.iter().peekable();
    let mut out = Vec::new();
    for (i, tok) in original.iter().enumerate() {
        if keep_iter.peek() == Some(&&i) {
            keep_iter.next();
        } else {
            out.push((*tok).to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spell() -> Spell {
        Spell::new(SpellConfig::default())
    }

    #[test]
    fn lcs_len_basics() {
        let a: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Spell::lcs_len(&a, &["x", "q", "z"]), 2);
        assert_eq!(Spell::lcs_len(&a, &["x", "y", "z"]), 3);
        assert_eq!(Spell::lcs_len(&a, &[]), 0);
        assert_eq!(Spell::lcs_len(&[], &["x"]), 0);
    }

    #[test]
    fn lcs_positions_recover_subsequence() {
        let a: Vec<String> = ["send", "bytes", "to"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let b = ["send", "42", "bytes", "to", "host"];
        assert_eq!(Spell::lcs_positions(&a, &b), vec![0, 2, 3]);
    }

    #[test]
    fn identical_messages_share_object() {
        let mut s = spell();
        let a = s.parse("Connected to backend server ok");
        let b = s.parse("Connected to backend server ok");
        assert_eq!(a.template, b.template);
        assert!(!b.is_new);
    }

    #[test]
    fn variable_positions_become_wildcards() {
        let mut s = Spell::new(SpellConfig {
            tau: 0.5,
            mask: MaskConfig::NONE,
        });
        let a = s.parse("job alpha finished ok");
        let b = s.parse("job beta finished ok");
        assert_eq!(a.template, b.template);
        let t = s.store().get(a.template).unwrap();
        assert_eq!(t.render(), "job <*> finished ok");
        assert_eq!(b.variables, vec!["beta"]);
    }

    #[test]
    fn lcs_handles_length_differences() {
        // Unlike Drain, Spell can group messages of different lengths.
        let mut s = Spell::new(SpellConfig {
            tau: 0.6,
            mask: MaskConfig::NONE,
        });
        let a = s.parse("opening file for read");
        let b = s.parse("opening temp file for read");
        assert_eq!(a.template, b.template, "subsequence match across lengths");
    }

    #[test]
    fn dissimilar_messages_split() {
        let mut s = spell();
        let a = s.parse("alpha beta gamma delta");
        let b = s.parse("one two three four");
        assert_ne!(a.template, b.template);
    }

    #[test]
    fn table1_grouping() {
        let mut s = spell();
        let l1 = s.parse("Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53");
        let l3 = s.parse("Sending 745675869 bytes src: 10.250.11.53 dest: /10.250.11.53");
        assert_eq!(l1.template, l3.template);
    }

    #[test]
    fn empty_message() {
        let mut s = spell();
        let out = s.parse("");
        assert!(out.variables.is_empty());
    }

    #[test]
    fn tau_controls_merging() {
        let mut strict = Spell::new(SpellConfig {
            tau: 0.9,
            mask: MaskConfig::NONE,
        });
        let a = strict.parse("alpha beta gamma delta eps");
        let b = strict.parse("alpha beta zzz yyy xxx");
        assert_ne!(
            a.template, b.template,
            "2/5 overlap must not merge at tau=0.9"
        );

        let mut loose = Spell::new(SpellConfig {
            tau: 0.3,
            mask: MaskConfig::NONE,
        });
        let a = loose.parse("alpha beta gamma delta eps");
        let b = loose.parse("alpha beta zzz yyy xxx");
        assert_eq!(a.template, b.template, "2/5 overlap merges at tau=0.3");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// LCS length is symmetric-ish and bounded by both input lengths.
        #[test]
        fn lcs_len_bounded(a in proptest::collection::vec("[a-c]{1,2}", 0..8),
                           b in proptest::collection::vec("[a-c]{1,2}", 0..8)) {
            let brefs: Vec<&str> = b.iter().map(String::as_str).collect();
            let l = Spell::lcs_len(&a, &brefs);
            prop_assert!(l <= a.len() && l <= b.len());
            // Consistency with position-recovering variant.
            prop_assert_eq!(Spell::lcs_positions(&a, &brefs).len(), l);
        }

        /// Re-parsing the same message always lands in the same template.
        #[test]
        fn parse_is_stable(msgs in proptest::collection::vec("[a-d]{1,3}( [a-d]{1,3}){0,5}", 1..15)) {
            let mut s = Spell::new(SpellConfig { tau: 0.5, mask: MaskConfig::NONE });
            for m in &msgs {
                s.parse(m);
            }
            for m in &msgs {
                let a = s.parse(m);
                let b = s.parse(m);
                prop_assert_eq!(a.template, b.template);
            }
        }
    }
}
