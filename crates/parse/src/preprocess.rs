//! Variable masking (preprocessing).
//!
//! "During the preprocessing step, algorithms use human crafted regular
//! expressions to identify common variables such as URLs or IP addresses.
//! Preprocessing needs experts to define the regular expressions, which has
//! a cost in time and can lead to mistakes impacting the parsing
//! efficiency." (Section IV)
//!
//! We keep preprocessing *optional and explicit* so experiment P4 can
//! measure exactly that sensitivity. The recognizers are hand-rolled
//! scanners rather than regexes: they run per token on the hot path of
//! every parser.

pub use monilog_model::tokenize::TokenSpan;

use monilog_model::tokenize::token_spans_into;
use serde::{Deserialize, Serialize};

/// Which token classes to mask to `<*>` before template matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaskConfig {
    /// Pure integers / decimals (`42`, `3.14`, `-7`).
    pub numbers: bool,
    /// IPv4 addresses, with optional leading/trailing punctuation
    /// (`10.250.11.53`, `/10.250.11.53`).
    pub ipv4: bool,
    /// Hex identifiers of length ≥ 4 containing at least one digit.
    pub hex_ids: bool,
    /// Absolute unix paths (`/var/log/x`).
    pub paths: bool,
    /// Any token containing a digit (Drain's default aggressive heuristic).
    pub digit_tokens: bool,
    /// `key=value` tokens (mask the value part only conceptually; the whole
    /// token is treated as variable).
    pub key_values: bool,
    /// Identifier-with-counter tokens mixing letters and digits
    /// (`blk_17`, `x92`, `job-456`, `i-2a4f`) — the id shapes every cloud
    /// platform generates.
    pub id_tokens: bool,
}

impl MaskConfig {
    /// No masking at all — the fully-automated deployment the paper aims
    /// for ("being deployed without any human intervention").
    pub const NONE: MaskConfig = MaskConfig {
        numbers: false,
        ipv4: false,
        hex_ids: false,
        paths: false,
        digit_tokens: false,
        key_values: false,
        id_tokens: false,
    };

    /// The conservative defaults used by most published Drain setups.
    pub const STANDARD: MaskConfig = MaskConfig {
        numbers: true,
        ipv4: true,
        hex_ids: true,
        paths: true,
        digit_tokens: false,
        key_values: true,
        id_tokens: true,
    };

    /// Aggressive masking: any token containing a digit becomes `<*>`.
    pub const AGGRESSIVE: MaskConfig = MaskConfig {
        numbers: true,
        ipv4: true,
        hex_ids: true,
        paths: true,
        digit_tokens: true,
        key_values: true,
        id_tokens: true,
    };
}

impl Default for MaskConfig {
    fn default() -> Self {
        MaskConfig::STANDARD
    }
}

/// Applies a [`MaskConfig`] to message tokens.
#[derive(Debug, Clone, Default)]
pub struct Preprocessor {
    pub config: MaskConfig,
}

impl Preprocessor {
    pub fn new(config: MaskConfig) -> Self {
        Preprocessor { config }
    }

    /// Should this token be treated as a variable?
    ///
    /// One byte-class prescan gates the recognizer chain: every recognizer
    /// structurally requires a digit, a `=`, or a leading `/` (independent
    /// of [`MaskConfig`] — see each recognizer's definition), so the
    /// typical static token ("Receiving", "src:") is rejected in a single
    /// pass instead of six scans. This runs once per token per line.
    pub fn is_variable(&self, token: &str) -> bool {
        let mut has_digit = false;
        let mut has_eq = false;
        for &b in token.as_bytes() {
            match b {
                b'0'..=b'9' => has_digit = true,
                b'=' => has_eq = true,
                _ => {}
            }
        }
        let leading_slash = token.as_bytes().first() == Some(&b'/');
        if !has_digit && !has_eq && !leading_slash {
            return false;
        }
        let c = &self.config;
        (c.numbers && has_digit && is_number(token))
            || (c.ipv4 && has_digit && is_ipv4ish(token))
            || (c.hex_ids && has_digit && is_hex_id(token))
            || (c.paths && leading_slash && is_path(token))
            || (c.key_values && has_eq && is_key_value(token))
            || (c.id_tokens && has_digit && is_id_token(token))
            || (c.digit_tokens && has_digit)
    }

    /// Tokenize and mask a message: variable-looking tokens become `<*>`.
    /// Returns `(masked tokens, original tokens)`.
    pub fn mask<'a>(&self, message: &'a str) -> (Vec<&'a str>, Vec<&'a str>) {
        let mut spans = Vec::new();
        let mut masked = Vec::new();
        let mut original = Vec::new();
        self.mask_into(message, &mut spans, &mut masked, &mut original);
        (masked, original)
    }

    /// Allocation-free masking for the parse hot path: tokenizes with the
    /// SWAR span scanner and fills caller-owned buffers (cleared first),
    /// so a parser that recycles them does zero tokenization allocations
    /// per line in the steady state. Equivalent to [`Preprocessor::mask`]
    /// by construction (`mask` delegates here).
    pub fn mask_into<'a>(
        &self,
        message: &'a str,
        spans: &mut Vec<TokenSpan>,
        masked: &mut Vec<&'a str>,
        original: &mut Vec<&'a str>,
    ) {
        token_spans_into(message, spans);
        masked.clear();
        original.clear();
        masked.reserve(spans.len());
        original.reserve(spans.len());
        for &(start, end) in spans.iter() {
            let tok = &message[start as usize..end as usize];
            original.push(tok);
            masked.push(if self.is_variable(tok) { "<*>" } else { tok });
        }
    }
}

/// `42`, `-7`, `3.14`, `+0.5` — numbers with optional sign and one dot.
pub fn is_number(token: &str) -> bool {
    let body = token.strip_prefix(['-', '+']).unwrap_or(token);
    if body.is_empty() {
        return false;
    }
    let mut dots = 0;
    let mut digits = 0;
    for b in body.bytes() {
        match b {
            b'0'..=b'9' => digits += 1,
            b'.' => {
                dots += 1;
                if dots > 1 {
                    return false;
                }
            }
            _ => return false,
        }
    }
    digits > 0
}

/// An IPv4 address, possibly wrapped in one punctuation byte on either side
/// (`/10.0.0.1`, `10.0.0.1:8080` is *not* matched — the port changes shape).
pub fn is_ipv4ish(token: &str) -> bool {
    let inner = token
        .trim_start_matches(['/', '(', '[', '<'])
        .trim_end_matches([',', ';', ')', ']', '>', '.']);
    let mut parts = 0;
    for part in inner.split('.') {
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        match part.parse::<u16>() {
            Ok(v) if v <= 255 => parts += 1,
            _ => return false,
        }
    }
    parts == 4
}

/// Lowercase/uppercase hex string of length ≥ 4 with at least one digit
/// (`deadbeef`, `0x3f2a`, `a3f9c2`); rules out ordinary words.
pub fn is_hex_id(token: &str) -> bool {
    let body = token.strip_prefix("0x").unwrap_or(token);
    body.len() >= 4
        && body.bytes().all(|b| b.is_ascii_hexdigit())
        && body.bytes().any(|b| b.is_ascii_digit())
}

/// Absolute path with at least two segments.
pub fn is_path(token: &str) -> bool {
    token.starts_with('/') && token[1..].contains('/') && !token.contains("//")
}

/// Identifier-with-counter: contains at least one digit and at least one
/// letter, `_` or `-` (and nothing outside identifier characters), e.g.
/// `blk_17`, `x92`, `job-456`, `node17`. Plain words and plain numbers do
/// not qualify.
pub fn is_id_token(token: &str) -> bool {
    let mut has_digit = false;
    let mut has_ident = false;
    for b in token.bytes() {
        match b {
            b'0'..=b'9' => has_digit = true,
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'-' => has_ident = true,
            b'.' | b':' => {} // allow dotted/colon-joined ids
            _ => return false,
        }
    }
    has_digit && has_ident
}

/// `key=value` with a non-empty key of identifier characters.
pub fn is_key_value(token: &str) -> bool {
    match token.split_once('=') {
        Some((k, v)) => {
            !k.is_empty()
                && !v.is_empty()
                && k.trim_start_matches(['{', '('])
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_')
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_recognition() {
        for yes in ["42", "-7", "3.14", "+0.5", "745675869"] {
            assert!(is_number(yes), "{yes}");
        }
        for no in ["", "x92", "1.2.3", "4e2", "-", ".", "42ms"] {
            assert!(!is_number(no), "{no}");
        }
    }

    #[test]
    fn ipv4_recognition() {
        for yes in ["10.250.11.53", "/10.250.11.53", "192.168.0.1,", "(8.8.8.8)"] {
            assert!(is_ipv4ish(yes), "{yes}");
        }
        for no in ["10.250.11", "10.250.11.256", "1.2.3.4.5", "a.b.c.d", "3.14"] {
            assert!(!is_ipv4ish(no), "{no}");
        }
    }

    #[test]
    fn hex_recognition() {
        for yes in ["deadbee1", "0x3f2a", "a3f9c2", "1234"] {
            assert!(is_hex_id(yes), "{yes}");
        }
        for no in ["dead", "beef", "g123", "0x", "12", "cafe"] {
            // "dead"/"beef"/"cafe" are all-letter hex — excluded to avoid
            // masking ordinary words.
            assert!(!is_hex_id(no), "{no}");
        }
    }

    #[test]
    fn path_recognition() {
        assert!(is_path("/var/log/app"));
        assert!(is_path("/a/b"));
        assert!(!is_path("/root"));
        assert!(!is_path("var/log"));
        assert!(!is_path("//double"));
    }

    #[test]
    fn key_value_recognition() {
        assert!(is_key_value("user_id=125"));
        assert!(is_key_value("{user_id=125,"));
        assert!(!is_key_value("=5"));
        assert!(!is_key_value("a="));
        assert!(!is_key_value("plain"));
    }

    #[test]
    fn standard_masking_on_table1_line() {
        let p = Preprocessor::new(MaskConfig::STANDARD);
        let (masked, original) = p.mask("Sending 138 bytes src: 10.250.11.53 dest: /10.250.11.53");
        assert_eq!(original.len(), 7);
        assert_eq!(
            masked,
            vec!["Sending", "<*>", "bytes", "src:", "<*>", "dest:", "<*>"]
        );
    }

    #[test]
    fn none_masks_nothing() {
        let p = Preprocessor::new(MaskConfig::NONE);
        let (masked, original) = p.mask("Sending 138 bytes to 10.0.0.1");
        assert_eq!(masked, original);
    }

    #[test]
    fn aggressive_masks_digit_tokens() {
        let p = Preprocessor::new(MaskConfig::AGGRESSIVE);
        let (masked, _) = p.mask("process x92 on port42");
        assert_eq!(masked, vec!["process", "<*>", "on", "<*>"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Masking never changes token count, and every masked token is
        /// either `<*>` or the original — the invariant parsers rely on.
        #[test]
        fn masking_preserves_shape(msg in "[ a-zA-Z0-9:./=-]{0,80}") {
            let p = Preprocessor::new(MaskConfig::STANDARD);
            let (masked, original) = p.mask(&msg);
            prop_assert_eq!(masked.len(), original.len());
            for (m, o) in masked.iter().zip(&original) {
                prop_assert!(*m == "<*>" || m == o);
            }
        }

        /// is_variable is a pure function of the token (idempotent checks).
        #[test]
        fn is_variable_is_stable(tok in "[!-~]{1,16}") {
            let p = Preprocessor::new(MaskConfig::AGGRESSIVE);
            prop_assert_eq!(p.is_variable(&tok), p.is_variable(&tok));
        }
    }
}
