//! Load-balanced routing for sharded parsing.
//!
//! The original router hashed the first stable token straight onto
//! `n_shards` buckets. That is template-stable but inherits the key
//! distribution of the corpus: on the D1 cloud corpus the heaviest
//! routing key carries 13.7% of all lines, which caps 16-shard balance at
//! `(1/16) / 0.137 ≈ 0.46` no matter how the keys are hashed — the
//! measured 0.31 is that ceiling plus collision bad luck.
//!
//! [`BalancedRouter`] keeps per-key stickiness but fixes both problems:
//!
//! 1. **Placement** — a new key is offered its top candidates in
//!    *rendezvous order* (highest-random-weight hashing: score every
//!    shard against the key, rank by score) and takes the least-loaded of
//!    the first [`BalancedRouterConfig::probe`] candidates
//!    (power-of-two-choices). This removes collision clumping.
//! 2. **Hot-key splitting** — a key whose line count exceeds its fair
//!    share of the stream grows a replica set, adopting the next shard in
//!    its rendezvous order; each line then goes to the least-loaded
//!    replica. This is the "partial key grouping" idea (Nasir et al.,
//!    ICDE 2015): split only the keys that need it, keep everything else
//!    sticky.
//!
//! Splitting sends lines of one heavy template to more than one Drain
//! shard. Grouping stays exact because the global template layer interns
//! by *rendered pattern*: the replicas re-discover the same masked
//! template and collapse onto one global id (see
//! `ShardedDrain::parse`). The stability contract is therefore on global
//! template ids — the thing downstream detectors key on — not on
//! physical shard placement.
//!
//! Everything is deterministic in the input sequence: no randomness, no
//! clocks. Two routers fed the same lines in the same order make
//! identical decisions, which is what lets the sequential reference
//! parser, the scoped-thread harness, and the streaming services be
//! compared line-for-line.

use monilog_model::{CodecError, Decoder, Encoder};
use std::collections::HashMap;

/// Magic bytes of a serialized router state (see
/// [`BalancedRouter::export_state`]).
const ROUTER_MAGIC: [u8; 4] = *b"RTRS";
const ROUTER_VERSION: u16 = 1;

/// Tuning knobs for [`BalancedRouter`]. The defaults are what experiment
/// D1 runs with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalancedRouterConfig {
    pub n_shards: usize,
    /// Candidates examined on first placement (power-of-two-choices).
    pub probe: usize,
    /// A key splits to an extra replica once its count exceeds
    /// `split_factor × fair_share × replicas`, where fair share is
    /// `total / n_shards`.
    pub split_factor: f64,
    /// Keys below this count never split (protects cold keys from
    /// splitting on startup noise, when `total / n_shards` is tiny).
    pub min_split_load: u64,
}

impl BalancedRouterConfig {
    pub fn new(n_shards: usize) -> Self {
        // probe/split_factor tuned on the D1 cloud corpus: 3-candidate
        // placement plus splitting at 0.7× fair share lifts 16-shard
        // balance from 0.66 to 0.89 (and 8-shard from 0.72 to 0.98) at
        // the cost of one extra split key — splits are cheap now that
        // they ship a template handoff (see `ShardedDrain::handoff`).
        BalancedRouterConfig {
            n_shards,
            probe: 3,
            split_factor: 0.7,
            min_split_load: 64,
        }
    }
}

/// A hot-key split decision made while routing a line: the key just grew
/// a replica. The caller that owns the shard state (e.g. `ShardedDrain`)
/// uses this to hand the key's templates from `source` to `added` so both
/// replicas group identically from the first line (see
/// `ShardedDrain::handoff`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitEvent {
    /// The key's rendezvous-primary replica — the handoff source.
    pub source: usize,
    /// The replica that was just added.
    pub added: usize,
}

#[derive(Debug)]
struct KeyState {
    /// All shards in rendezvous order for this key (best first).
    order: Box<[u32]>,
    /// Active replicas: a prefix-respecting subset of `order`, grown one
    /// shard at a time as the key proves hot.
    replicas: Vec<u32>,
    count: u64,
}

/// Sticky, deterministic, load-aware shard router. See the module docs.
#[derive(Debug)]
pub struct BalancedRouter {
    config: BalancedRouterConfig,
    loads: Vec<u64>,
    total: u64,
    keys: HashMap<u64, KeyState>,
}

impl BalancedRouter {
    pub fn new(n_shards: usize) -> Self {
        Self::with_config(BalancedRouterConfig::new(n_shards))
    }

    pub fn with_config(config: BalancedRouterConfig) -> Self {
        assert!(config.n_shards >= 1, "need at least one shard");
        assert!(config.probe >= 1, "need at least one placement candidate");
        BalancedRouter {
            loads: vec![0; config.n_shards],
            total: 0,
            keys: HashMap::new(),
            config,
        }
    }

    /// The routing key of a message: its first whitespace token, with
    /// digit-bearing tokens normalized to `<*>` — the same normalization
    /// Drain's own tree applies, so the key is constant across all lines
    /// of a template.
    pub fn key_hash(message: &str) -> u64 {
        fnv1a(Self::key_token(message).as_bytes())
    }

    /// The routing key itself (what [`BalancedRouter::key_hash`] hashes):
    /// the first whitespace token, or `<*>` for digit-bearing tokens.
    pub fn key_token(message: &str) -> &str {
        let first = message.split_whitespace().next().unwrap_or("");
        if first.bytes().any(|b| b.is_ascii_digit()) {
            "<*>"
        } else {
            first
        }
    }

    /// Route one message; updates key counts and shard loads.
    pub fn route(&mut self, message: &str) -> usize {
        self.route_detailed(message).0
    }

    /// [`BalancedRouter::route`], also reporting whether this line made
    /// its key split to a new replica.
    pub fn route_detailed(&mut self, message: &str) -> (usize, Option<SplitEvent>) {
        self.route_hash_detailed(Self::key_hash(message))
    }

    /// Route by precomputed key hash (callers that batch can hash once).
    pub fn route_hash(&mut self, h: u64) -> usize {
        self.route_hash_detailed(h).0
    }

    /// [`BalancedRouter::route_hash`] with the split event, if any.
    pub fn route_hash_detailed(&mut self, h: u64) -> (usize, Option<SplitEvent>) {
        let n = self.config.n_shards;
        self.total += 1;
        if n == 1 {
            self.loads[0] += 1;
            return (0, None);
        }
        let fair = ((self.total / n as u64) as f64 * self.config.split_factor) as u64;
        let fair = fair.max(self.config.min_split_load);

        let loads = &self.loads;
        let probe = self.config.probe.min(n);
        let ks = self.keys.entry(h).or_insert_with(|| {
            let order = rendezvous_order(h, n);
            let first = *order[..probe]
                .iter()
                .min_by_key(|&&s| loads[s as usize])
                .expect("probe >= 1");
            KeyState {
                order,
                replicas: vec![first],
                count: 0,
            }
        });
        ks.count += 1;
        let mut split = None;
        if ks.count > fair * ks.replicas.len() as u64 && ks.replicas.len() < n {
            if let Some(&next) = ks.order.iter().find(|s| !ks.replicas.contains(s)) {
                split = Some(SplitEvent {
                    source: ks.replicas[0] as usize,
                    added: next as usize,
                });
                ks.replicas.push(next);
            }
        }
        let shard = *ks
            .replicas
            .iter()
            .min_by_key(|&&s| loads[s as usize])
            .expect("replica set never empty") as usize;
        self.loads[shard] += 1;
        (shard, split)
    }

    pub fn n_shards(&self) -> usize {
        self.config.n_shards
    }

    /// Lines routed to each shard so far.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Total lines routed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct routing keys seen.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Keys that have grown past one replica (the hot keys).
    pub fn split_key_count(&self) -> usize {
        self.keys.values().filter(|k| k.replicas.len() > 1).count()
    }

    /// Serialize placement + split state for the durable checkpoint. The
    /// encoding is deterministic (keys sorted by hash) so two identical
    /// routers export identical bytes. Each key stores its hash, count,
    /// and replica set; the full rendezvous `order` is a pure function of
    /// the hash and shard count, so it is recomputed on import rather
    /// than stored.
    pub fn export_state(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(ROUTER_MAGIC, ROUTER_VERSION);
        e.put_u32(self.config.n_shards as u32);
        e.put_u64(self.total);
        e.put_len(self.loads.len());
        for &l in &self.loads {
            e.put_u64(l);
        }
        let mut hashes: Vec<u64> = self.keys.keys().copied().collect();
        hashes.sort_unstable();
        e.put_len(hashes.len());
        for h in hashes {
            let ks = &self.keys[&h];
            e.put_u64(h);
            e.put_u64(ks.count);
            e.put_len(ks.replicas.len());
            for &r in &ks.replicas {
                e.put_u32(r);
            }
        }
        e.finish()
    }

    /// Rebuild a router from [`BalancedRouter::export_state`] bytes. The
    /// restored router makes decisions identical to the original's from
    /// the next line on. `config.n_shards` must match the exporter's.
    pub fn import_state(
        config: BalancedRouterConfig,
        bytes: &[u8],
    ) -> Result<BalancedRouter, CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_header(ROUTER_MAGIC, ROUTER_VERSION)?;
        let n = d.get_u32()? as usize;
        if n != config.n_shards {
            return Err(CodecError::Corrupt("router shard count mismatch"));
        }
        let total = d.get_u64()?;
        let n_loads = d.get_len()?;
        if n_loads != n {
            return Err(CodecError::Corrupt("router load vector length"));
        }
        let mut loads = Vec::with_capacity(n_loads);
        for _ in 0..n_loads {
            loads.push(d.get_u64()?);
        }
        let n_keys = d.get_len()?;
        let mut keys = HashMap::with_capacity(n_keys);
        for _ in 0..n_keys {
            let h = d.get_u64()?;
            let count = d.get_u64()?;
            let n_replicas = d.get_len()?;
            if n_replicas == 0 || n_replicas > n {
                return Err(CodecError::Corrupt("router replica set size"));
            }
            let mut replicas = Vec::with_capacity(n_replicas);
            for _ in 0..n_replicas {
                let r = d.get_u32()?;
                if r as usize >= n {
                    return Err(CodecError::Corrupt("router replica out of range"));
                }
                replicas.push(r);
            }
            keys.insert(
                h,
                KeyState {
                    order: rendezvous_order(h, n),
                    replicas,
                    count,
                },
            );
        }
        if !d.is_exhausted() {
            return Err(CodecError::Corrupt("trailing bytes after router state"));
        }
        Ok(BalancedRouter {
            config,
            loads,
            total,
            keys,
        })
    }
}

/// Rank every shard for a key by highest-random-weight score.
fn rendezvous_order(h: u64, n: usize) -> Box<[u32]> {
    let mut scored: Vec<(u64, u32)> = (0..n as u32)
        .map(|j| (mix64(h ^ mix64(j as u64 + 0x9E37_79B9_7F4A_7C15)), j))
        .collect();
    scored.sort_unstable_by(|a, b| b.cmp(a));
    scored.into_iter().map(|(_, j)| j).collect()
}

/// splitmix64 finalizer: cheap, well-distributed, stable across builds
/// (unlike `DefaultHasher`, whose algorithm is unspecified).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_sticky_before_splitting() {
        let mut r = BalancedRouter::new(8);
        let a = r.route("Sending 138 bytes src: 10.0.0.1");
        for _ in 0..50 {
            assert_eq!(r.route("Sending 999 bytes src: 10.9.9.9"), a);
        }
    }

    #[test]
    fn identical_input_sequences_route_identically() {
        let lines: Vec<String> = (0..500)
            .map(|i| format!("op{} payload {}", i % 17, i))
            .collect();
        let mut a = BalancedRouter::new(8);
        let mut b = BalancedRouter::new(8);
        for line in &lines {
            assert_eq!(a.route(line), b.route(line));
        }
    }

    /// A letter-only key (digit-bearing first tokens all collapse onto
    /// the shared `<*>` key, which would make "distinct cold keys" a lie).
    fn word_key(i: u64) -> String {
        let a = (b'a' + (i % 26) as u8) as char;
        let b = (b'a' + (i / 26 % 26) as u8) as char;
        format!("{a}{b}")
    }

    #[test]
    fn hot_key_splits_and_balance_recovers() {
        // One key carries half the stream: a sticky router is capped at
        // balance 2/n; splitting must do much better.
        let mut r = BalancedRouter::new(8);
        for i in 0..40_000u64 {
            if i % 2 == 0 {
                r.route("hotkey payload line");
            } else {
                r.route(&format!("{} payload line", word_key(i % 31)));
            }
        }
        assert!(r.split_key_count() >= 1, "the hot key must split");
        let max = *r.loads().iter().max().unwrap() as f64;
        let balance = (r.total() as f64 / 8.0) / max;
        assert!(
            balance > 0.7,
            "balance {balance:.2} with loads {:?}",
            r.loads()
        );
    }

    #[test]
    fn cold_keys_never_split() {
        let mut r = BalancedRouter::new(4);
        for i in 0..200u64 {
            r.route(&format!("{} x", word_key(i % 40)));
        }
        assert_eq!(
            r.split_key_count(),
            0,
            "5 lines/key is far below fair share"
        );
        assert_eq!(r.key_count(), 40);
    }

    #[test]
    fn single_shard_short_circuits() {
        let mut r = BalancedRouter::new(1);
        for _ in 0..100 {
            assert_eq!(r.route("anything at all"), 0);
        }
        assert_eq!(r.loads(), &[100]);
    }

    #[test]
    fn digit_bearing_first_tokens_share_a_key() {
        assert_eq!(
            BalancedRouter::key_hash("1234 items queued"),
            BalancedRouter::key_hash("98 items queued")
        );
        assert_ne!(
            BalancedRouter::key_hash("alpha items"),
            BalancedRouter::key_hash("beta items")
        );
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_rejected() {
        BalancedRouter::new(0);
    }

    #[test]
    fn export_import_resumes_identically() {
        // Route a warm-up prefix with some hot keys, snapshot, and check
        // the restored router is indistinguishable from the original on
        // the continuation — placement, splits, loads, the lot.
        let mut original = BalancedRouter::new(8);
        for i in 0..2_000u64 {
            let key = if i % 3 == 0 {
                "hot".into()
            } else {
                word_key(i)
            };
            original.route(&format!("{key} payload {i}"));
        }
        let bytes = original.export_state();
        let mut restored =
            BalancedRouter::import_state(BalancedRouterConfig::new(8), &bytes).unwrap();
        assert_eq!(restored.loads(), original.loads());
        assert_eq!(restored.total(), original.total());
        assert_eq!(restored.key_count(), original.key_count());
        assert_eq!(restored.split_key_count(), original.split_key_count());
        for i in 2_000..3_000u64 {
            let key = if i % 3 == 0 {
                "hot".into()
            } else {
                word_key(i)
            };
            let line = format!("{key} payload {i}");
            assert_eq!(
                original.route_detailed(&line),
                restored.route_detailed(&line),
                "divergence at line {i}"
            );
        }
        // Determinism of the encoding itself.
        assert_eq!(original.export_state(), restored.export_state());
    }

    #[test]
    fn import_rejects_corrupt_state() {
        let mut r = BalancedRouter::new(4);
        for i in 0..200u64 {
            r.route(&format!("{} x {i}", word_key(i)));
        }
        let bytes = r.export_state();
        let config = BalancedRouterConfig::new(4);
        // Shard-count mismatch is a typed error, not a bad router.
        assert!(BalancedRouter::import_state(BalancedRouterConfig::new(8), &bytes).is_err());
        // Truncations never panic.
        for cut in 0..bytes.len() {
            assert!(
                BalancedRouter::import_state(config, &bytes[..cut]).is_err(),
                "prefix of {cut} bytes imported"
            );
        }
    }
}
