//! Differential proof that the Drain match cache is output-invisible.
//!
//! The cache in `parsers/drain.rs` memoizes tree walks; its correctness
//! argument (install only on pure matches, flush on any mutation, verify
//! keys, re-extract variables per line) is stated there. This test checks
//! the argument empirically: a cache-enabled Drain and a cache-disabled
//! Drain fed the *same* line sequence must emit identical
//! `(template_id, variables)` for every line — over random interleavings
//! of every loggen corpus, and across a simulated crash/respawn
//! (`Drain::warm_start` from a snapshot of the template store, the
//! recovery path the supervised service uses).

use monilog_parse::{Drain, DrainConfig, OnlineParser};
use proptest::prelude::*;

fn cached_config() -> DrainConfig {
    let config = DrainConfig::default();
    assert!(config.cache_capacity > 0, "default must enable the cache");
    config
}

fn uncached_config() -> DrainConfig {
    DrainConfig {
        cache_capacity: 0,
        ..DrainConfig::default()
    }
}

/// All corpora mixed: every loggen generator contributes lines, then the
/// shuffle below interleaves the sources arbitrarily.
fn corpus_lines(seed: u64) -> Vec<String> {
    let mut lines: Vec<String> = Vec::new();
    for corpus in [
        monilog_loggen::corpus::hdfs_like(8, seed),
        monilog_loggen::corpus::cloud_mixed(3, seed ^ 0xA5),
        monilog_loggen::corpus::api_json(3, seed ^ 0x5A),
        monilog_loggen::corpus::unstable(3, seed ^ 0xC3),
    ] {
        lines.extend(corpus.messages().map(str::to_owned));
    }
    lines
}

/// Parse `lines` with both parsers, crashing and respawning each from a
/// template-store snapshot at `cut` (0 disables the respawn). Returns the
/// cached parser's final `(hits, misses)`.
fn run_differential(lines: &[String], cut: usize) -> (u64, u64) {
    let mut cached = Drain::new(cached_config());
    let mut uncached = Drain::new(uncached_config());
    for (i, line) in lines.iter().enumerate() {
        if cut > 0 && i == cut {
            // Crash/respawn: both parsers restart from their persisted
            // stores, exactly as the supervisor restores a dead shard.
            cached = Drain::warm_start(cached_config(), cached.store().clone());
            uncached = Drain::warm_start(uncached_config(), uncached.store().clone());
        }
        let c = cached.parse(line);
        let u = uncached.parse(line);
        assert_eq!(
            (c.template, &c.variables),
            (u.template, &u.variables),
            "cache changed output at line {i}: {line:?}"
        );
    }
    assert_eq!(uncached.cache_stats(), (0, 0));
    cached.cache_stats()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cached_drain_matches_uncached_on_corpus_interleavings(
        seed in 0u64..1_000,
        shuffle_seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut lines = corpus_lines(seed);
        // Fisher–Yates with a splitmix64 stream: arbitrary interleaving of
        // the corpus sources, fully determined by the proptest inputs.
        let mut state = shuffle_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..lines.len()).rev() {
            lines.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let shuffled = lines;
        // Exercise the crash path in the middle of the stream (cut 0 on a
        // fraction of cases covers the no-crash baseline too).
        let cut = (cut_frac * shuffled.len() as f64) as usize;
        let (hits, misses) = run_differential(&shuffled, cut);
        // The comparison is only meaningful if the cache actually worked:
        // corpus lines repeat templates, so hits must occur.
        prop_assert!(hits > 0, "cache never hit (misses={misses})");
    }
}

/// Deterministic regression shape: a straight pass over every corpus with
/// a respawn halfway — cheap enough to run under `--test`-style smoke.
#[test]
fn straight_corpus_pass_with_respawn_is_identical() {
    let lines = corpus_lines(42);
    let (hits, misses) = run_differential(&lines, lines.len() / 2);
    assert!(hits > 0);
    assert!(misses > 0, "first sighting of each template must miss");
}
