//! Robustness: no parser may panic (or corrupt its invariants) on
//! arbitrary input. "A text field without format constraint" means exactly
//! that — production logs contain unicode, control bytes, pathological
//! token counts, and empty lines, and one bad line must never take down
//! the parsing component.

use monilog_parse::{
    BatchParser, Drain, DrainConfig, IpLoM, IpLoMConfig, LenMa, LenMaConfig, Logan, LoganConfig,
    Logram, LogramConfig, OnlineParser, ShardedDrain, ShardedDrainConfig, Shiso, ShisoConfig, Slct,
    SlctConfig, Spell, SpellConfig,
};
use proptest::prelude::*;

/// Nasty line generator: unicode, repeated separators, huge tokens, masks'
/// own sentinel `<*>`, JSON-ish fragments, embedded newlines are excluded
/// (a line is a line) but everything else goes.
fn nasty_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Arbitrary printable-ish unicode.
        "\\PC{0,80}",
        // Whitespace pathologies.
        Just("".to_string()),
        Just("    ".to_string()),
        Just("\t\t \t".to_string()),
        // The wildcard sentinel appearing literally in a message.
        Just("<*> <*> <*>".to_string()),
        Just("prefix <*> suffix".to_string()),
        // Long single token.
        Just("x".repeat(500)),
        // Many tiny tokens.
        Just("a ".repeat(200).trim_end().to_string()),
        // Number/IP/hex soup for the maskers.
        Just("999999999999999999999 256.300.1.2 0x 0xgg -".to_string()),
        // JSON-ish fragments.
        Just(r#"{"unterminated": "#.to_string()),
        Just("}}{{ ]][[ =,=,= {a=}".to_string()),
    ]
}

fn check_online(parser: &mut dyn OnlineParser, lines: &[String]) {
    for line in lines {
        let out = parser.parse(line);
        // Invariants that must hold for *any* input:
        // the returned id resolves in the store...
        let template = parser
            .store()
            .get(out.template)
            .unwrap_or_else(|| panic!("{:?}: dangling template id", parser.kind()));
        // ...and same-length templates never have more wildcards than the
        // message has tokens.
        let n_tokens = line.split_whitespace().count();
        if template.len() == n_tokens {
            assert!(
                out.variables.len() <= n_tokens,
                "{:?}: more variables than tokens",
                parser.kind()
            );
        }
        // Id stability: most parsers must return the same template for an
        // immediately repeated line. Logram is the documented exception —
        // its n-gram dictionaries warm up across the first repetitions —
        // but it must stabilize once counts pass the threshold.
        if parser.kind() == monilog_parse::ParserKind::Logram {
            let a = parser.parse(line);
            let b = parser.parse(line);
            assert_eq!(
                a.template, b.template,
                "Logram failed to stabilize for {line:?}"
            );
        } else {
            let again = parser.parse(line);
            assert_eq!(
                out.template,
                again.template,
                "{:?}: unstable id for {line:?}",
                parser.kind()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn online_parsers_survive_arbitrary_input(
        lines in proptest::collection::vec(nasty_line(), 1..40)
    ) {
        check_online(&mut Drain::new(DrainConfig::default()), &lines);
        check_online(&mut Spell::new(SpellConfig::default()), &lines);
        check_online(&mut LenMa::new(LenMaConfig::default()), &lines);
        check_online(&mut Logan::new(LoganConfig::default()), &lines);
        check_online(&mut Shiso::new(ShisoConfig::default()), &lines);
        check_online(&mut Logram::new(LogramConfig::default()), &lines);
        check_online(&mut ShardedDrain::new(ShardedDrainConfig::default()), &lines);
    }

    #[test]
    fn batch_parsers_survive_arbitrary_input(
        lines in proptest::collection::vec(nasty_line(), 0..40)
    ) {
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let mut iplom = IpLoM::new(IpLoMConfig::default());
        let outs = iplom.parse_batch(&refs);
        prop_assert_eq!(outs.len(), refs.len());
        for o in &outs {
            prop_assert!(iplom.store().get(o.template).is_some());
        }
        let mut slct = Slct::new(SlctConfig::default());
        let outs = slct.parse_batch(&refs);
        prop_assert_eq!(outs.len(), refs.len());
        for o in &outs {
            prop_assert!(slct.store().get(o.template).is_some());
        }
    }
}
