//! Best-effort thread-per-core pinning for shard workers.
//!
//! Shard workers own mutable parser state (Drain trees, match caches) that
//! is hot in cache; letting the scheduler migrate a worker between cores
//! invalidates those lines on every move. Pinning each shard to one core
//! keeps the working set resident and makes per-shard latency less noisy.
//!
//! Follows the workspace's raw-FFI convention (`stream::net::sys`,
//! `stream::durable::signal`): the libc symbol is declared directly, no
//! crate dependency. Pinning is strictly best-effort — a failure (exotic
//! kernel, restricted cpuset, non-Linux target) is reported but never
//! fatal, and callers treat `false` as "run unpinned".

/// Number of cores usable for pinning (1 if undetectable).
pub fn core_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pin the *calling thread* to `core` (modulo the core count). Returns
/// whether the kernel accepted the mask.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> bool {
    // 1024-bit cpu mask, the kernel's default CPU_SETSIZE.
    const WORDS: usize = 1024 / 64;
    extern "C" {
        // glibc: pid 0 = calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let core = core % core_count().max(1);
    let mut mask = [0u64; WORDS];
    mask[(core / 64) % WORDS] |= 1u64 << (core % 64);
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_count_is_positive() {
        assert!(core_count() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pinning_current_thread_succeeds_on_linux() {
        // Run on a scratch thread so the test harness thread's affinity is
        // untouched.
        let ok = std::thread::spawn(|| {
            let a = pin_current_thread(0);
            // Out-of-range cores wrap instead of failing.
            let b = pin_current_thread(usize::MAX);
            a && b
        })
        .join()
        .unwrap();
        assert!(ok, "sched_setaffinity rejected a 1-core mask");
    }
}
