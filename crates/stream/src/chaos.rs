//! Deterministic fault injection for the streaming layer.
//!
//! Production fault tolerance is only as good as its tests, and faults in a
//! multi-threaded pipeline are notoriously timing-dependent. This module
//! makes them *reproducible*: a [`FaultPlan`] names faults by the submitted
//! sequence number — not by wall clock or thread interleaving — so a chaos
//! test can assert exact counter values ("3 poison lines → 3 quarantined")
//! instead of fuzzy bounds.
//!
//! The plan compiles to a [`FaultInjector`] callback that
//! [`crate::supervisor::SupervisedParseService`] invokes right before each
//! parse attempt. Faults manifest as panics:
//!
//! - **worker kill** — panics with the [`WorkerKill`] marker payload. The
//!   per-line retry layer recognises the marker and re-raises it, so the
//!   panic escapes to the worker thread boundary and the supervisor sees a
//!   crashed worker (respawn path), exactly like a segfault-grade bug.
//! - **poison line** — panics with a plain message on *every* attempt; the
//!   retry layer exhausts its budget and quarantines the line (dead-letter
//!   path).
//! - **transient fault** — panics only on the first attempt; the retry
//!   layer rescues the line (retry path).
//!
//! Consumer-side faults (stalls, early disconnects) are not injected here —
//! they are behaviours of the *test harness's consumer loop*, driven by
//! [`FaultPlan::stall_consumer_at`] / [`FaultPlan::disconnect_consumer_at`]
//! so the whole scenario still lives in one declarative plan.
//!
//! ## Sink faults
//!
//! The delivery layer ([`crate::sinks`]) gets the same treatment from
//! [`FlakySinkServer`]: a scripted in-process receiver whose faults are
//! keyed on the **accepted-connection index** — connection 0 gets
//! `script[0]`, connection 1 gets `script[1]`, … — so "refuse the first
//! two connections, reset the third mid-frame, answer 429 to the fourth,
//! hang on the fifth, then behave" is a reproducible plan, not a race.
//! The server records every report id it acknowledged; the harness
//! compares that *receiver-side* delivered set against a fault-free run.

use crate::sinks::{self, BufferedReport, PING_ACK};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Panic payload marking an injected whole-worker crash.
///
/// The supervisor's per-line `catch_unwind` downcasts panic payloads: a
/// [`WorkerKill`] is re-raised instead of retried, modelling a fault that
/// takes down the worker thread rather than just one parse call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill;

/// What the injector sees before each parse attempt.
#[derive(Debug)]
pub struct FaultContext<'a> {
    /// Caller-assigned sequence number of the line.
    pub seq: u64,
    /// 0 for the first attempt, incremented per retry.
    pub attempt: u32,
    /// The raw line about to be parsed.
    pub line: &'a str,
}

/// Callback invoked before every parse attempt; faults are raised by
/// panicking (see module docs for the payload protocol).
pub type FaultInjector = Arc<dyn Fn(&FaultContext<'_>) + Send + Sync>;

/// A declarative, deterministic schedule of faults keyed on sequence
/// numbers.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Kill the worker handling seq `n` whenever `n % crash_every == crash_every - 1`
    /// (first attempt only — the respawned worker must not re-crash on
    /// lines it never sees again).
    pub crash_every: Option<u64>,
    /// Lines that panic on every attempt → quarantined after retries.
    pub poison_seqs: BTreeSet<u64>,
    /// Lines that panic on attempt 0 only → rescued by the first retry.
    pub transient_seqs: BTreeSet<u64>,
    /// Test-harness hint: the consumer should stop reading for a while
    /// after receiving this many items (exercises backpressure + overload
    /// policies). Not enforced by the injector.
    pub stall_consumer_at: Option<u64>,
    /// Test-harness hint: the consumer should drop its receiver after this
    /// many items (exercises disconnect handling). Not enforced by the
    /// injector.
    pub disconnect_consumer_at: Option<u64>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill a worker on every `n`-th line (1-based: `crash_every(3)` kills
    /// on seqs 2, 5, 8, …).
    pub fn crash_every(mut self, n: u64) -> Self {
        assert!(n >= 1, "crash_every needs n >= 1");
        self.crash_every = Some(n);
        self
    }

    pub fn poison(mut self, seqs: impl IntoIterator<Item = u64>) -> Self {
        self.poison_seqs.extend(seqs);
        self
    }

    pub fn transient(mut self, seqs: impl IntoIterator<Item = u64>) -> Self {
        self.transient_seqs.extend(seqs);
        self
    }

    pub fn stall_consumer_at(mut self, n: u64) -> Self {
        self.stall_consumer_at = Some(n);
        self
    }

    pub fn disconnect_consumer_at(mut self, n: u64) -> Self {
        self.disconnect_consumer_at = Some(n);
        self
    }

    /// Expected number of worker-kill faults over seqs `0..n` (for exact
    /// counter assertions in chaos tests).
    pub fn expected_crashes(&self, n: u64) -> u64 {
        match self.crash_every {
            Some(k) => n / k,
            None => 0,
        }
    }

    /// Expected quarantined-by-poison count over seqs `0..n`.
    pub fn expected_poisoned(&self, n: u64) -> u64 {
        self.poison_seqs.iter().filter(|&&s| s < n).count() as u64
    }

    /// Compile the plan into the injector callback the supervisor calls
    /// before each parse attempt.
    pub fn injector(&self) -> FaultInjector {
        let plan = self.clone();
        Arc::new(move |ctx: &FaultContext<'_>| {
            if let Some(k) = plan.crash_every {
                if ctx.attempt == 0 && ctx.seq % k == k - 1 {
                    std::panic::panic_any(WorkerKill);
                }
            }
            if plan.poison_seqs.contains(&ctx.seq) {
                panic!("injected poison at seq {}", ctx.seq);
            }
            if plan.transient_seqs.contains(&ctx.seq) && ctx.attempt == 0 {
                panic!("injected transient fault at seq {}", ctx.seq);
            }
        })
    }
}

/// One connection's scripted behaviour in a [`FlakySinkServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFault {
    /// Serve the connection normally (record + ack everything).
    Healthy,
    /// Close immediately after accepting — the client sees a refused/reset
    /// connection before any byte moves.
    Refuse,
    /// Read part of the first data frame, then drop the socket mid-frame.
    ResetMidFrame,
    /// HTTP mode: answer `429 Too Many Requests` without recording.
    /// Framed mode: read one frame, ack nothing, close (equivalent
    /// transient rejection).
    Http429,
    /// HTTP mode: answer `500 Internal Server Error` without recording.
    /// Framed mode: same as [`SinkFault::Http429`].
    Http500,
    /// Go silent after accepting: read nothing, write nothing, for longer
    /// than any client write/read timeout.
    Hang,
}

/// Which protocol the flaky server speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkProtocol {
    /// The [`crate::sinks`] frame protocol with per-report acks.
    Framed,
    /// Minimal HTTP/1.1: `POST` of ndjson bodies, `GET /healthz`.
    Http,
}

/// Shared observable state of a [`FlakySinkServer`].
#[derive(Debug, Default)]
struct SinkLedger {
    /// Every id acknowledged, in arrival order (duplicates included).
    acked: Mutex<Vec<u64>>,
    /// Ids seen at least once — the receiver-side dedup set.
    seen: Mutex<HashSet<u64>>,
    duplicates: AtomicU64,
    connections: AtomicU64,
}

/// A scripted in-process flaky sink endpoint.
///
/// Faults are consumed per accepted connection: connection `i` behaves as
/// `script[i]`, and connections past the script's end are
/// [`SinkFault::Healthy`]. The server dedups by report id (mirroring any
/// real idempotent receiver), so the harness can assert "zero lost, zero
/// duplicate after dedup" directly on [`FlakySinkServer::delivered_ids`].
pub struct FlakySinkServer {
    addr: SocketAddr,
    ledger: Arc<SinkLedger>,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FlakySinkServer {
    /// Bind `addr` (use port 0 for ephemeral) and serve `protocol` with
    /// the given per-connection fault script.
    pub fn spawn(
        addr: &str,
        protocol: SinkProtocol,
        script: Vec<SinkFault>,
    ) -> std::io::Result<FlakySinkServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Accept with a poll timeout so `stop` is honoured promptly.
        listener.set_nonblocking(true)?;
        let ledger = Arc::new(SinkLedger::default());
        let stop = Arc::new(AtomicBool::new(false));
        let thread_ledger = Arc::clone(&ledger);
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("flaky-sink".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let idx = thread_ledger.connections.fetch_add(1, Ordering::Relaxed);
                            let fault = script
                                .get(idx as usize)
                                .copied()
                                .unwrap_or(SinkFault::Healthy);
                            let ledger = Arc::clone(&thread_ledger);
                            let stop = Arc::clone(&thread_stop);
                            // One thread per connection: hangs must not
                            // block the accept loop.
                            std::thread::spawn(move || {
                                serve_connection(stream, protocol, fault, &ledger, &stop);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn flaky sink server");
        Ok(FlakySinkServer {
            addr: local,
            ledger,
            stop,
            handle: Some(handle),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The receiver-side delivered set: every id acknowledged at least
    /// once, ascending.
    pub fn delivered_ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.ledger.seen.lock().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Acks whose id had already been seen (re-deliveries absorbed by the
    /// receiver-side dedup).
    pub fn duplicate_acks(&self) -> u64 {
        self.ledger.duplicates.load(Ordering::Relaxed)
    }

    /// Connections accepted so far (the script cursor).
    pub fn connections(&self) -> u64 {
        self.ledger.connections.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept loop. Returns the delivered set
    /// so a harness can stop a server, keep its ledger, and start a fresh
    /// one on the same port.
    pub fn shutdown(mut self) -> Vec<u64> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.delivered_ids()
    }
}

impl Drop for FlakySinkServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn record(ledger: &SinkLedger, report: &BufferedReport) {
    let fresh = ledger.seen.lock().insert(report.id);
    if !fresh {
        ledger.duplicates.fetch_add(1, Ordering::Relaxed);
    }
    ledger.acked.lock().push(report.id);
}

fn serve_connection(
    mut stream: TcpStream,
    protocol: SinkProtocol,
    fault: SinkFault,
    ledger: &SinkLedger,
    stop: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1_000)));
    let _ = stream.set_nodelay(true);
    match fault {
        SinkFault::Refuse => { /* drop immediately */ }
        SinkFault::Hang => {
            // Stay silent until the harness stops the server (bounded so a
            // forgotten server can't leak the thread forever).
            for _ in 0..600 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        SinkFault::ResetMidFrame => {
            // Consume a few bytes — less than one frame header+payload —
            // then drop, so the client's write or ack read dies mid-frame.
            let mut partial = [0u8; 6];
            let _ = stream.read(&mut partial);
        }
        SinkFault::Http429 | SinkFault::Http500 => match protocol {
            SinkProtocol::Http => {
                let _ = read_http_request(&mut stream);
                let status = if fault == SinkFault::Http429 {
                    "429 Too Many Requests"
                } else {
                    "500 Internal Server Error"
                };
                let _ = write!(stream, "HTTP/1.1 {status}\r\nContent-Length: 0\r\n\r\n");
            }
            SinkProtocol::Framed => {
                let _ = sinks::read_frame(&mut stream);
                // no ack: the client times out and retries
            }
        },
        SinkFault::Healthy => match protocol {
            SinkProtocol::Framed => serve_framed(stream, ledger, stop),
            SinkProtocol::Http => serve_http(stream, ledger),
        },
    }
}

/// Healthy framed service: record + ack every data frame, `PING_ACK` for
/// pings, until EOF or shutdown.
fn serve_framed(mut stream: TcpStream, ledger: &SinkLedger, stop: &AtomicBool) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match sinks::read_frame(&mut stream) {
            Ok(Some(payload)) => {
                let ack = match sinks::decode_report_payload(&payload) {
                    Some(report) => {
                        record(ledger, &report);
                        report.id
                    }
                    None => PING_ACK,
                };
                if stream.write_all(&ack.to_le_bytes()).is_err() {
                    return;
                }
            }
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(_) => return,
        }
    }
}

/// Read one HTTP request (head + `Content-Length` body). Returns the
/// request line and body.
fn read_http_request(stream: &mut TcpStream) -> std::io::Result<(String, Vec<u8>)> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > 1 << 20 {
            return Err(std::io::Error::other("request head too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::other("eof before head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let request_line = head.lines().next().unwrap_or("").to_string();
    let content_length = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            k.eq_ignore_ascii_case("content-length")
                .then(|| v.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((request_line, body))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Healthy HTTP service: 200 to `/healthz`, record ndjson POST bodies
/// (one report per line, id parsed from the leading `{"id":N,` that
/// `AnomalyReport::to_json` guarantees), 200 on success.
fn serve_http(mut stream: TcpStream, ledger: &SinkLedger) {
    let Ok((request_line, body)) = read_http_request(&mut stream) else {
        return;
    };
    if request_line.starts_with("GET /healthz") {
        let _ = write!(stream, "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n");
        return;
    }
    if request_line.starts_with("POST") {
        let text = String::from_utf8_lossy(&body);
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let id = parse_report_id(line);
            record(
                ledger,
                &BufferedReport {
                    id,
                    class: monilog_model::DeliveryClass::Page,
                    body: line.to_string(),
                },
            );
        }
        let _ = write!(stream, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
        return;
    }
    let _ = write!(
        stream,
        "HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
    );
}

/// Extract the id from a report JSON line (`{"id":N,...}`); 0 if absent.
fn parse_report_id(line: &str) -> u64 {
    let rest = line.trim_start().strip_prefix("{\"id\":").unwrap_or("");
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().unwrap_or(0)
}

/// One scripted misbehaviour of a [`FlakySourceClient`] connection against
/// a syslog-TCP source. Every variant is careful to never complete a frame:
/// the source discards torn partial frames at disconnect (they are counted,
/// not flushed), so a fleet of chaos clients contributes **zero** lines to
/// the pipeline and a chaos run can still assert byte-identical anomaly
/// sets against a clean reference feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceFault {
    /// Drip a partial LF frame one byte at a time with a delay between
    /// bytes, then disconnect before the newline — the classic slow loris.
    SlowLoris {
        /// Bytes to drip (must not contain `\n`; keep it starting with `<`
        /// so the connection sticks to LF framing).
        prefix: String,
        /// Delay between single-byte writes.
        byte_delay: Duration,
    },
    /// Send an octet-counted header promising more bytes than follow, then
    /// drop the socket mid-frame.
    ResetMidFrame {
        /// Bytes actually sent after a header that claims twice as many.
        partial: String,
    },
    /// Rapid connect → (optional single byte) → disconnect cycles.
    ReconnectStorm {
        /// How many connections to slam through.
        connects: u32,
    },
    /// Connect and sit silent — an idle-timeout candidate that holds a
    /// connection slot without sending anything.
    IdleHold { hold: Duration },
}

/// Totals a chaos-client thread observed, for gate-side sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceChaosStats {
    /// Connections successfully established.
    pub connections: u64,
    /// Connections the script attempted but the peer refused.
    pub refused: u64,
    /// Total bytes written across all connections.
    pub bytes_sent: u64,
}

/// A scripted misbehaving syslog-TCP client: runs each [`SourceFault`] in
/// order on its own connection(s), on a background thread. The target
/// source must survive the abuse without letting any torn frame reach the
/// pipeline — see [`SourceFault`] for why that is assertable.
pub struct FlakySourceClient {
    handle: std::thread::JoinHandle<SourceChaosStats>,
}

impl FlakySourceClient {
    /// Run `script` against the syslog-TCP listener at `addr` on a new
    /// thread. Connection errors are tolerated (the server may be mid-
    /// shutdown); they are tallied in the returned stats.
    pub fn spawn(addr: SocketAddr, script: Vec<SourceFault>) -> FlakySourceClient {
        let handle = std::thread::Builder::new()
            .name("flaky-source-client".into())
            .spawn(move || run_source_script(addr, &script))
            .expect("spawn flaky source client");
        FlakySourceClient { handle }
    }

    /// Wait for the script to finish and return what it observed.
    pub fn join(self) -> SourceChaosStats {
        self.handle.join().unwrap_or_default()
    }
}

fn run_source_script(addr: SocketAddr, script: &[SourceFault]) -> SourceChaosStats {
    let mut stats = SourceChaosStats::default();
    let connect = |stats: &mut SourceChaosStats| -> Option<TcpStream> {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(1_000)) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                let _ = s.set_write_timeout(Some(Duration::from_millis(1_000)));
                stats.connections += 1;
                Some(s)
            }
            Err(_) => {
                stats.refused += 1;
                None
            }
        }
    };
    for fault in script {
        match fault {
            SourceFault::SlowLoris { prefix, byte_delay } => {
                debug_assert!(
                    !prefix.contains('\n'),
                    "slow loris must never finish a frame"
                );
                let Some(mut s) = connect(&mut stats) else {
                    continue;
                };
                for b in prefix.as_bytes() {
                    if s.write_all(std::slice::from_ref(b)).is_err() {
                        break;
                    }
                    stats.bytes_sent += 1;
                    std::thread::sleep(*byte_delay);
                }
                // Drop without the terminating newline: torn frame.
            }
            SourceFault::ResetMidFrame { partial } => {
                let Some(mut s) = connect(&mut stats) else {
                    continue;
                };
                let wire = format!("{} {partial}", partial.len() * 2 + 4);
                if s.write_all(wire.as_bytes()).is_ok() {
                    stats.bytes_sent += wire.len() as u64;
                }
                // Drop with the octet count unsatisfied: torn frame.
            }
            SourceFault::ReconnectStorm { connects } => {
                for i in 0..*connects {
                    let Some(mut s) = connect(&mut stats) else {
                        continue;
                    };
                    // Odd connections tease a single byte first so the
                    // server also sees storms of torn one-byte frames.
                    if i % 2 == 1 && s.write_all(b"<").is_ok() {
                        stats.bytes_sent += 1;
                    }
                }
            }
            SourceFault::IdleHold { hold } => {
                let Some(s) = connect(&mut stats) else {
                    continue;
                };
                std::thread::sleep(*hold);
                drop(s);
            }
        }
    }
    stats
}

/// A byte-counting TCP proxy that injects *link* faults between a monitor
/// and the cluster router: session `i` is killed (both directions torn
/// down, mid-frame by construction) after forwarding `cut_after[i]` bytes;
/// sessions past the script run clean. Reconnects land as new sessions, so
/// `vec![200, 17, 900]` scripts "cut mid-stream, cut almost immediately
/// (reconnect storm), cut again later, then behave". The cluster's
/// at-least-once wire contract plus seq dedup must turn all of that into
/// **zero** lost and zero duplicated lines — the harness asserts exactly
/// that.
pub struct FlakyLinkProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sessions: Arc<AtomicU64>,
    cuts: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FlakyLinkProxy {
    /// Listen on an ephemeral local port, forwarding every connection to
    /// `upstream` under the scripted cut schedule.
    pub fn spawn(upstream: SocketAddr, cut_after: Vec<usize>) -> std::io::Result<FlakyLinkProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(AtomicU64::new(0));
        let cuts = Arc::new(AtomicU64::new(0));
        let (t_stop, t_sessions, t_cuts) = (stop.clone(), sessions.clone(), cuts.clone());
        let thread = std::thread::Builder::new()
            .name("flaky-link-proxy".into())
            .spawn(move || {
                while !t_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((client, _)) => {
                            let session = t_sessions.fetch_add(1, Ordering::SeqCst) as usize;
                            let budget = cut_after.get(session).copied();
                            if run_proxy_session(client, upstream, budget, &t_stop) {
                                t_cuts.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn flaky link proxy");
        Ok(FlakyLinkProxy {
            addr,
            stop,
            sessions,
            cuts,
            thread: Some(thread),
        })
    }

    /// The address monitors should dial instead of the router.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions accepted so far (each monitor reconnect is one).
    pub fn sessions(&self) -> u64 {
        self.sessions.load(Ordering::SeqCst)
    }

    /// Sessions that were killed by the script (vs. ran clean).
    pub fn cuts(&self) -> u64 {
        self.cuts.load(Ordering::SeqCst)
    }

    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FlakyLinkProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Shuttle bytes both ways until the budget is spent (returns `true`: the
/// session was cut) or a side closes (`false`). Single-threaded
/// nonblocking loop — sessions are sequential on the proxy thread, which
/// is exactly what a scripted schedule wants.
fn run_proxy_session(
    client: TcpStream,
    upstream: SocketAddr,
    budget: Option<usize>,
    stop: &AtomicBool,
) -> bool {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_millis(1_000)) else {
        return false;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    if client.set_nonblocking(true).is_err() || server.set_nonblocking(true).is_err() {
        return false;
    }
    let mut forwarded = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        let mut moved = false;
        for (from, to) in [(&client, &server), (&server, &client)] {
            // Cap the read so the cut lands exactly on the budget byte —
            // mid-frame whenever the budget says so.
            let window = budget.map_or(buf.len(), |b| (b - forwarded).min(buf.len()));
            match std::io::Read::read(&mut { from }, &mut buf[..window.max(1)]) {
                Ok(0) => return false,
                Ok(n) => {
                    moved = true;
                    forwarded += n;
                    if std::io::Write::write_all(&mut { to }, &buf[..n]).is_err() {
                        return false;
                    }
                    if budget.is_some_and(|b| forwarded >= b) {
                        let _ = client.shutdown(std::net::Shutdown::Both);
                        let _ = server.shutdown(std::net::Shutdown::Both);
                        return true;
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => return false,
            }
        }
        if !moved {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn fires(inj: &FaultInjector, seq: u64, attempt: u32) -> Option<bool> {
        // Some(true) = WorkerKill, Some(false) = plain panic, None = clean.
        let ctx = FaultContext {
            seq,
            attempt,
            line: "x",
        };
        match catch_unwind(AssertUnwindSafe(|| inj(&ctx))) {
            Ok(()) => None,
            Err(payload) => Some(payload.is::<WorkerKill>()),
        }
    }

    #[test]
    fn crash_every_kills_with_marker_on_first_attempt_only() {
        let inj = FaultPlan::new().crash_every(3).injector();
        assert_eq!(fires(&inj, 0, 0), None);
        assert_eq!(fires(&inj, 2, 0), Some(true));
        assert_eq!(fires(&inj, 2, 1), None, "retries of a kill seq run clean");
        assert_eq!(fires(&inj, 5, 0), Some(true));
    }

    #[test]
    fn poison_panics_on_every_attempt_transient_on_first_only() {
        let inj = FaultPlan::new().poison([4]).transient([7]).injector();
        assert_eq!(fires(&inj, 4, 0), Some(false));
        assert_eq!(fires(&inj, 4, 3), Some(false));
        assert_eq!(fires(&inj, 7, 0), Some(false));
        assert_eq!(fires(&inj, 7, 1), None);
        assert_eq!(fires(&inj, 1, 0), None);
    }

    #[test]
    fn expected_counts_match_schedule() {
        let plan = FaultPlan::new().crash_every(4).poison([1, 9, 100]);
        assert_eq!(plan.expected_crashes(10), 2); // seqs 3, 7
        assert_eq!(plan.expected_poisoned(10), 2); // 1 and 9; 100 out of range
    }

    use crate::sinks::{FramedTcpSink, Sink, WebhookSink};
    use monilog_model::DeliveryClass;

    fn report(id: u64) -> BufferedReport {
        BufferedReport {
            id,
            class: DeliveryClass::Page,
            body: format!("{{\"id\":{id},\"detector\":\"test\"}}"),
        }
    }

    #[test]
    fn flaky_framed_server_follows_its_script_then_recovers() {
        let server = FlakySinkServer::spawn(
            "127.0.0.1:0",
            SinkProtocol::Framed,
            vec![
                SinkFault::Refuse,
                SinkFault::ResetMidFrame,
                SinkFault::Http429, // framed mode: read, never ack
            ],
        )
        .unwrap();
        let mut sink = FramedTcpSink::new(server.addr().to_string())
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        // Scripted faults: three retryable failures in a row.
        for attempt in 0..3 {
            let err = sink.deliver(&[report(1)]).unwrap_err();
            assert!(err.is_retryable(), "attempt {attempt}: {err}");
        }
        // Script exhausted → healthy: same batch goes through.
        sink.deliver(&[report(1), report(2)]).unwrap();
        assert_eq!(server.delivered_ids(), vec![1, 2]);
        // Re-delivery is absorbed by receiver-side dedup.
        drop(sink);
        let mut sink2 = FramedTcpSink::new(server.addr().to_string())
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        sink2.deliver(&[report(2), report(3)]).unwrap();
        assert_eq!(server.delivered_ids(), vec![1, 2, 3]);
        assert_eq!(server.duplicate_acks(), 1);
        assert!(server.connections() >= 5);
    }

    #[test]
    fn flaky_framed_server_hang_times_out_the_client() {
        let server =
            FlakySinkServer::spawn("127.0.0.1:0", SinkProtocol::Framed, vec![SinkFault::Hang])
                .unwrap();
        let mut sink = FramedTcpSink::new(server.addr().to_string())
            .with_timeouts(Duration::from_millis(200), Duration::from_millis(200));
        let start = std::time::Instant::now();
        let err = sink.deliver(&[report(9)]).unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "write/read timeout bounded the hang"
        );
        assert!(server.delivered_ids().is_empty());
    }

    #[test]
    fn flaky_http_server_scripts_status_codes_and_serves_healthz() {
        let server = FlakySinkServer::spawn(
            "127.0.0.1:0",
            SinkProtocol::Http,
            vec![SinkFault::Http429, SinkFault::Http500, SinkFault::Healthy],
        )
        .unwrap();
        let url = format!("http://{}/hooks", server.addr());
        let mut sink = WebhookSink::from_url(&url)
            .unwrap()
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        for _ in 0..2 {
            let err = sink.deliver(&[report(11)]).unwrap_err();
            assert!(err.is_retryable(), "{err}");
        }
        assert!(server.delivered_ids().is_empty(), "429/500 record nothing");
        sink.deliver(&[report(11), report(12)]).unwrap();
        assert_eq!(server.delivered_ids(), vec![11, 12]);
        // Healthcheck convention: GET /healthz answers 200.
        sink.healthcheck().unwrap();
    }

    #[test]
    fn flaky_source_clients_contribute_zero_lines_while_a_sane_client_gets_through() {
        use crate::observe::MetricsRegistry;
        use crate::sources::{SourcesConfig, SourcesServer};

        let registry = MetricsRegistry::shared_with_shards(1);
        let (server, queue) = SourcesServer::spawn(
            SourcesConfig {
                syslog_tcp: Some("127.0.0.1:0".parse().unwrap()),
                ..SourcesConfig::default()
            },
            Arc::clone(&registry),
            None,
            None,
        )
        .unwrap();
        let addr = server.syslog_tcp_addr().unwrap();

        let chaos = FlakySourceClient::spawn(
            addr,
            vec![
                SourceFault::SlowLoris {
                    prefix: "<13>torn slow frame with no newline".into(),
                    byte_delay: Duration::from_millis(1),
                },
                SourceFault::ResetMidFrame {
                    partial: "<13>octet frame cut short".into(),
                },
                SourceFault::ReconnectStorm { connects: 8 },
                SourceFault::IdleHold {
                    hold: Duration::from_millis(50),
                },
            ],
        );

        // A well-behaved client rides alongside the abuse.
        let mut sane = TcpStream::connect(addr).unwrap();
        sane.write_all(b"<14>healthy line one\n<14>healthy line two\n")
            .unwrap();
        drop(sane);

        let stats = chaos.join();
        assert!(stats.connections >= 11, "{stats:?}");
        assert!(stats.bytes_sent > 0);

        let mut lines = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while lines.len() < 2 && std::time::Instant::now() < deadline {
            lines.extend(
                queue
                    .recv_batch(16, Duration::from_millis(50))
                    .into_iter()
                    .map(|ev| ev.line),
            );
        }
        assert_eq!(
            lines,
            vec![
                "healthy line one".to_string(),
                "healthy line two".to_string()
            ],
            "torn chaos frames must never surface as lines"
        );
        // Nothing further trickles in from the chaos connections.
        assert!(queue.recv_batch(16, Duration::from_millis(200)).is_empty());
        drop(server);
        let m = registry.counters();
        assert_eq!(m.sources_lines.load(Ordering::SeqCst), 2);
        assert!(
            m.sources_frame_errors.load(Ordering::SeqCst) >= 2,
            "torn frames counted"
        );
        assert!(m.sources_disconnects.load(Ordering::SeqCst) >= 11);
    }

    #[test]
    fn shutdown_returns_the_ledger_for_cross_restart_assertions() {
        let server = FlakySinkServer::spawn("127.0.0.1:0", SinkProtocol::Framed, vec![]).unwrap();
        let mut sink = FramedTcpSink::new(server.addr().to_string())
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        sink.deliver(&[report(5)]).unwrap();
        drop(sink);
        let delivered = server.shutdown();
        assert_eq!(delivered, vec![5]);
    }
}
