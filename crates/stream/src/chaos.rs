//! Deterministic fault injection for the streaming layer.
//!
//! Production fault tolerance is only as good as its tests, and faults in a
//! multi-threaded pipeline are notoriously timing-dependent. This module
//! makes them *reproducible*: a [`FaultPlan`] names faults by the submitted
//! sequence number — not by wall clock or thread interleaving — so a chaos
//! test can assert exact counter values ("3 poison lines → 3 quarantined")
//! instead of fuzzy bounds.
//!
//! The plan compiles to a [`FaultInjector`] callback that
//! [`crate::supervisor::SupervisedParseService`] invokes right before each
//! parse attempt. Faults manifest as panics:
//!
//! - **worker kill** — panics with the [`WorkerKill`] marker payload. The
//!   per-line retry layer recognises the marker and re-raises it, so the
//!   panic escapes to the worker thread boundary and the supervisor sees a
//!   crashed worker (respawn path), exactly like a segfault-grade bug.
//! - **poison line** — panics with a plain message on *every* attempt; the
//!   retry layer exhausts its budget and quarantines the line (dead-letter
//!   path).
//! - **transient fault** — panics only on the first attempt; the retry
//!   layer rescues the line (retry path).
//!
//! Consumer-side faults (stalls, early disconnects) are not injected here —
//! they are behaviours of the *test harness's consumer loop*, driven by
//! [`FaultPlan::stall_consumer_at`] / [`FaultPlan::disconnect_consumer_at`]
//! so the whole scenario still lives in one declarative plan.

use std::collections::BTreeSet;
use std::sync::Arc;

/// Panic payload marking an injected whole-worker crash.
///
/// The supervisor's per-line `catch_unwind` downcasts panic payloads: a
/// [`WorkerKill`] is re-raised instead of retried, modelling a fault that
/// takes down the worker thread rather than just one parse call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill;

/// What the injector sees before each parse attempt.
#[derive(Debug)]
pub struct FaultContext<'a> {
    /// Caller-assigned sequence number of the line.
    pub seq: u64,
    /// 0 for the first attempt, incremented per retry.
    pub attempt: u32,
    /// The raw line about to be parsed.
    pub line: &'a str,
}

/// Callback invoked before every parse attempt; faults are raised by
/// panicking (see module docs for the payload protocol).
pub type FaultInjector = Arc<dyn Fn(&FaultContext<'_>) + Send + Sync>;

/// A declarative, deterministic schedule of faults keyed on sequence
/// numbers.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Kill the worker handling seq `n` whenever `n % crash_every == crash_every - 1`
    /// (first attempt only — the respawned worker must not re-crash on
    /// lines it never sees again).
    pub crash_every: Option<u64>,
    /// Lines that panic on every attempt → quarantined after retries.
    pub poison_seqs: BTreeSet<u64>,
    /// Lines that panic on attempt 0 only → rescued by the first retry.
    pub transient_seqs: BTreeSet<u64>,
    /// Test-harness hint: the consumer should stop reading for a while
    /// after receiving this many items (exercises backpressure + overload
    /// policies). Not enforced by the injector.
    pub stall_consumer_at: Option<u64>,
    /// Test-harness hint: the consumer should drop its receiver after this
    /// many items (exercises disconnect handling). Not enforced by the
    /// injector.
    pub disconnect_consumer_at: Option<u64>,
}

impl FaultPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill a worker on every `n`-th line (1-based: `crash_every(3)` kills
    /// on seqs 2, 5, 8, …).
    pub fn crash_every(mut self, n: u64) -> Self {
        assert!(n >= 1, "crash_every needs n >= 1");
        self.crash_every = Some(n);
        self
    }

    pub fn poison(mut self, seqs: impl IntoIterator<Item = u64>) -> Self {
        self.poison_seqs.extend(seqs);
        self
    }

    pub fn transient(mut self, seqs: impl IntoIterator<Item = u64>) -> Self {
        self.transient_seqs.extend(seqs);
        self
    }

    pub fn stall_consumer_at(mut self, n: u64) -> Self {
        self.stall_consumer_at = Some(n);
        self
    }

    pub fn disconnect_consumer_at(mut self, n: u64) -> Self {
        self.disconnect_consumer_at = Some(n);
        self
    }

    /// Expected number of worker-kill faults over seqs `0..n` (for exact
    /// counter assertions in chaos tests).
    pub fn expected_crashes(&self, n: u64) -> u64 {
        match self.crash_every {
            Some(k) => n / k,
            None => 0,
        }
    }

    /// Expected quarantined-by-poison count over seqs `0..n`.
    pub fn expected_poisoned(&self, n: u64) -> u64 {
        self.poison_seqs.iter().filter(|&&s| s < n).count() as u64
    }

    /// Compile the plan into the injector callback the supervisor calls
    /// before each parse attempt.
    pub fn injector(&self) -> FaultInjector {
        let plan = self.clone();
        Arc::new(move |ctx: &FaultContext<'_>| {
            if let Some(k) = plan.crash_every {
                if ctx.attempt == 0 && ctx.seq % k == k - 1 {
                    std::panic::panic_any(WorkerKill);
                }
            }
            if plan.poison_seqs.contains(&ctx.seq) {
                panic!("injected poison at seq {}", ctx.seq);
            }
            if plan.transient_seqs.contains(&ctx.seq) && ctx.attempt == 0 {
                panic!("injected transient fault at seq {}", ctx.seq);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn fires(inj: &FaultInjector, seq: u64, attempt: u32) -> Option<bool> {
        // Some(true) = WorkerKill, Some(false) = plain panic, None = clean.
        let ctx = FaultContext {
            seq,
            attempt,
            line: "x",
        };
        match catch_unwind(AssertUnwindSafe(|| inj(&ctx))) {
            Ok(()) => None,
            Err(payload) => Some(payload.is::<WorkerKill>()),
        }
    }

    #[test]
    fn crash_every_kills_with_marker_on_first_attempt_only() {
        let inj = FaultPlan::new().crash_every(3).injector();
        assert_eq!(fires(&inj, 0, 0), None);
        assert_eq!(fires(&inj, 2, 0), Some(true));
        assert_eq!(fires(&inj, 2, 1), None, "retries of a kill seq run clean");
        assert_eq!(fires(&inj, 5, 0), Some(true));
    }

    #[test]
    fn poison_panics_on_every_attempt_transient_on_first_only() {
        let inj = FaultPlan::new().poison([4]).transient([7]).injector();
        assert_eq!(fires(&inj, 4, 0), Some(false));
        assert_eq!(fires(&inj, 4, 3), Some(false));
        assert_eq!(fires(&inj, 7, 0), Some(false));
        assert_eq!(fires(&inj, 7, 1), None);
        assert_eq!(fires(&inj, 1, 0), None);
    }

    #[test]
    fn expected_counts_match_schedule() {
        let plan = FaultPlan::new().crash_every(4).poison([1, 9, 100]);
        assert_eq!(plan.expected_crashes(10), 2); // seqs 3, 7
        assert_eq!(plan.expected_poisoned(10), 2); // 1 and 9; 100 out of range
    }
}
