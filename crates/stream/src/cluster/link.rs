//! The monitor side of the cluster wire: a resilient client link to the
//! router, riding the monitor's own sources event loop.
//!
//! The link is two handlers on the [`crate::net::EventLoop`] that
//! [`crate::sources::SourcesServer`] already runs:
//!
//! - [`LinkSupervisor`] — a timer handler owning the reconnect state
//!   machine (capped, jittered backoff; see
//!   [`super::backoff_delay_ms`]).
//! - [`LinkConn`] — the live connection: decodes frames, feeds batch
//!   entries into the same bounded ingest queue the local sources use
//!   (with *hold* semantics — router lines are never shed, the link
//!   pauses reading instead), and speaks the ack/heartbeat/reconcile
//!   protocol.
//!
//! Everything the consumer thread needs crosses through the
//! [`ClusterMailbox`]: revocations and template snapshots flow out of the
//! link; journaled high-water marks (the ack gate) and local template
//! snapshots flow in. A monitor that loses the router is **degraded, not
//! dead**: local sources keep flowing, the mailbox reports the reason for
//! `/readyz`, and the supervisor keeps dialing.

use super::wire::{encode_frame, FrameReader, Message};
use super::{backoff_delay_ms, ROUTER_SOURCE_BASE};
use crate::net::{AsLoopFd, Handler, Interest, LoopCtx, Next};
use crate::sources::{QueueTx, SourceEvent};
use monilog_model::{ByteLine, SourceId};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for the monitor→router link (`monilog monitor --join`).
#[derive(Debug, Clone)]
pub struct RouterLinkConfig {
    pub addr: SocketAddr,
    /// This monitor's stable node name; the router keys acked high-water
    /// marks and assignments by it, so it must survive restarts.
    pub node: String,
    pub reconnect_base_ms: u64,
    pub reconnect_cap_ms: u64,
}

impl RouterLinkConfig {
    pub fn new(addr: SocketAddr, node: String) -> Self {
        RouterLinkConfig {
            addr,
            node,
            reconnect_base_ms: 100,
            reconnect_cap_ms: 2_000,
        }
    }
}

/// Link health, surfaced in `/status` and the `/readyz` degraded reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Dialing or waiting for `Welcome`.
    Connecting,
    Connected,
    /// Connection lost; local sources still flow. Reconnecting.
    Degraded,
}

impl LinkState {
    pub fn as_str(self) -> &'static str {
        match self {
            LinkState::Connecting => "connecting",
            LinkState::Connected => "connected",
            LinkState::Degraded => "degraded",
        }
    }
}

/// Point-in-time view of the link for the ops surface.
#[derive(Debug, Clone)]
pub struct LinkSnapshot {
    pub state: LinkState,
    /// Machine-readable degradation reason (e.g. `router-link-lost`).
    pub reason: Option<String>,
    pub reconnects: u64,
    pub batches_received: u64,
    pub lines_received: u64,
    pub acks_sent: u64,
    pub unacked_batches: usize,
    pub assigned_sources: usize,
    pub reconcile_epoch: u64,
    pub fin: bool,
}

#[derive(Debug)]
struct InflightBatch {
    id: u64,
    maxima: Vec<(SourceId, u64)>,
}

#[derive(Debug)]
struct Inner {
    state: LinkState,
    reason: Option<String>,
    heartbeat_ms: u64,
    assigned: Vec<SourceId>,
    /// Latest template snapshot from `Welcome`/`Reconcile`, for the
    /// consumer to adopt. Replaced, never appended — adoption is
    /// idempotent and only the newest matters.
    templates_in: Option<Vec<u8>>,
    reconcile_epoch: u64,
    revoked: Vec<SourceId>,
    fin: bool,
    /// Batches received but not yet covered by the journal high-water.
    inflight: VecDeque<InflightBatch>,
    /// Per-source: highest seq the consumer has durably journaled.
    journaled_hw: HashMap<SourceId, u64>,
    /// Local template snapshot waiting to be shipped to the router.
    templates_out: Option<Vec<u8>>,
    /// Encoded frames queued toward the router.
    outbox: VecDeque<Vec<u8>>,
    reconnects: u64,
    batches_received: u64,
    lines_received: u64,
    acks_sent: u64,
}

/// The consumer-facing half of the link. All methods are cheap and lock
/// briefly; the consumer polls it once per ingest iteration.
pub struct ClusterMailbox {
    node: String,
    inner: Mutex<Inner>,
}

impl ClusterMailbox {
    pub fn new(node: String) -> Arc<ClusterMailbox> {
        Arc::new(ClusterMailbox {
            node,
            inner: Mutex::new(Inner {
                state: LinkState::Connecting,
                reason: None,
                heartbeat_ms: 250,
                assigned: Vec::new(),
                templates_in: None,
                reconcile_epoch: 0,
                revoked: Vec::new(),
                fin: false,
                inflight: VecDeque::new(),
                journaled_hw: HashMap::new(),
                templates_out: None,
                outbox: VecDeque::new(),
                reconnects: 0,
                batches_received: 0,
                lines_received: 0,
                acks_sent: 0,
            }),
        })
    }

    pub fn node(&self) -> &str {
        &self.node
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("cluster mailbox poisoned")
    }

    pub fn snapshot(&self) -> LinkSnapshot {
        let g = self.lock();
        LinkSnapshot {
            state: g.state,
            reason: g.reason.clone(),
            reconnects: g.reconnects,
            batches_received: g.batches_received,
            lines_received: g.lines_received,
            acks_sent: g.acks_sent,
            unacked_batches: g.inflight.len(),
            assigned_sources: g.assigned.len(),
            reconcile_epoch: g.reconcile_epoch,
            fin: g.fin,
        }
    }

    /// Sources revoked since the last call. The consumer must discard any
    /// recovered open windows for them before ingesting further.
    pub fn take_revoked(&self) -> Vec<SourceId> {
        std::mem::take(&mut self.lock().revoked)
    }

    /// Latest fleet template snapshot, if one arrived since the last call.
    pub fn take_templates(&self) -> Option<Vec<u8>> {
        self.lock().templates_in.take()
    }

    /// The consumer's durability point moved: per-source journal
    /// high-water marks after an fsync. Unblocks acks on the next tick.
    pub fn publish_journaled(&self, marks: &[(SourceId, u64)]) {
        let mut g = self.lock();
        for &(source, seq) in marks {
            let hw = g.journaled_hw.entry(source).or_insert(0);
            *hw = (*hw).max(seq);
        }
    }

    /// Queue the local template store for the next reconciliation send.
    pub fn offer_templates(&self, snapshot: Vec<u8>) {
        self.lock().templates_out = Some(snapshot);
    }

    /// Router declared end of stream.
    pub fn fin_received(&self) -> bool {
        self.lock().fin
    }

    /// Batches received but not yet ackable (journal has not covered them).
    pub fn unacked_batches(&self) -> usize {
        self.lock().inflight.len()
    }
}

/// Timer handler that keeps one [`LinkConn`] alive, redialing with capped
/// jittered backoff after every loss.
pub struct LinkSupervisor {
    cfg: RouterLinkConfig,
    tx: QueueTx,
    mailbox: Arc<ClusterMailbox>,
    conn_alive: Arc<AtomicBool>,
    attempt: u32,
    next_attempt: Option<Instant>,
    jitter_seed: u64,
}

impl LinkSupervisor {
    pub(crate) fn new(
        cfg: RouterLinkConfig,
        tx: QueueTx,
        mailbox: Arc<ClusterMailbox>,
    ) -> LinkSupervisor {
        let jitter_seed = cfg.node.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
        LinkSupervisor {
            cfg,
            tx,
            mailbox,
            conn_alive: Arc::new(AtomicBool::new(false)),
            attempt: 0,
            next_attempt: None,
            jitter_seed,
        }
    }
}

impl Handler for LinkSupervisor {
    fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        Next::Keep
    }

    fn tick(&mut self, now: Instant, ctx: &mut LoopCtx<'_>) -> Next {
        if self.conn_alive.load(Ordering::SeqCst) {
            // A healthy session resets the backoff ladder.
            if self.mailbox.lock().state == LinkState::Connected {
                self.attempt = 0;
            }
            return Next::Keep;
        }
        if self.next_attempt.is_some_and(|at| now < at) {
            return Next::Keep;
        }
        match TcpStream::connect_timeout(&self.cfg.addr, Duration::from_millis(100)) {
            Ok(conn) => {
                if conn.set_nonblocking(true).is_err() {
                    return Next::Keep;
                }
                let _ = conn.set_nodelay(true);
                {
                    let mut g = self.mailbox.lock();
                    g.state = LinkState::Connecting;
                    g.reason = None;
                    g.outbox.clear();
                    g.inflight.clear();
                    g.reconnects += 1;
                }
                self.conn_alive.store(true, Ordering::SeqCst);
                let hello = encode_frame(&Message::Hello {
                    node: self.cfg.node.clone(),
                    resume: true,
                });
                let fd = conn.loop_fd();
                ctx.register(
                    fd,
                    Box::new(LinkConn {
                        conn,
                        tx: self.tx.clone(),
                        mailbox: self.mailbox.clone(),
                        alive: self.conn_alive.clone(),
                        reader: FrameReader::new(),
                        wbuf: hello,
                        wpos: 0,
                        pending: VecDeque::new(),
                        last_rx: now,
                        last_hb_sent: now,
                    }),
                );
                self.next_attempt = None;
            }
            Err(e) => {
                self.attempt = self.attempt.saturating_add(1);
                let delay = backoff_delay_ms(
                    self.attempt,
                    self.cfg.reconnect_base_ms,
                    self.cfg.reconnect_cap_ms,
                    self.jitter_seed,
                );
                self.next_attempt = Some(now + Duration::from_millis(delay));
                let mut g = self.mailbox.lock();
                g.state = LinkState::Degraded;
                g.reason = Some(format!("router-unreachable: {e}"));
            }
        }
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest::NONE
    }
}

/// Cap on batch entries held locally while the ingest queue is full; while
/// above it the link stops reading the socket (backpressure to the
/// router, never shedding).
const PENDING_HOLD_LIMIT: usize = 1;

/// One live router connection.
struct LinkConn {
    conn: TcpStream,
    tx: QueueTx,
    mailbox: Arc<ClusterMailbox>,
    alive: Arc<AtomicBool>,
    reader: FrameReader,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Batch entries accepted off the wire but still waiting for queue
    /// room. Never shed: acks gate on the journal, so dropping here would
    /// only stall, not lose — but holding is strictly better.
    pending: VecDeque<SourceEvent>,
    last_rx: Instant,
    last_hb_sent: Instant,
}

impl LinkConn {
    fn drop_link(&mut self, reason: &str) -> Next {
        self.alive.store(false, Ordering::SeqCst);
        let mut g = self.mailbox.lock();
        g.state = LinkState::Degraded;
        g.reason = Some(reason.to_string());
        g.outbox.clear();
        // Unacked batches die with the session; the router replays
        // everything past the acked mark and the journal dedups.
        g.inflight.clear();
        Next::Close
    }

    /// Move held entries into the ingest queue; true when drained.
    fn drain_pending(&mut self) -> bool {
        while let Some(ev) = self.pending.pop_front() {
            if let Err(ev) = self.tx.try_push(ev) {
                self.pending.push_front(ev);
                return false;
            }
        }
        true
    }

    fn handle_message(&mut self, msg: Message, now: Instant) -> Result<(), &'static str> {
        self.last_rx = now;
        match msg {
            Message::Welcome {
                heartbeat_ms,
                assigned,
                templates,
            } => {
                let mut g = self.mailbox.lock();
                g.state = LinkState::Connected;
                g.reason = None;
                g.heartbeat_ms = heartbeat_ms.max(50);
                g.assigned = assigned;
                if !templates.is_empty() {
                    g.templates_in = Some(templates);
                }
                Ok(())
            }
            Message::Batch { batch_id, entries } => {
                let mut maxima: Vec<(SourceId, u64)> = Vec::new();
                for e in &entries {
                    if e.source.0 < ROUTER_SOURCE_BASE {
                        return Err("batch entry below router source base");
                    }
                    match maxima.iter_mut().find(|(s, _)| *s == e.source) {
                        Some((_, m)) => *m = (*m).max(e.seq),
                        None => maxima.push((e.source, e.seq)),
                    }
                }
                {
                    let mut g = self.mailbox.lock();
                    g.batches_received += 1;
                    g.lines_received += entries.len() as u64;
                    g.inflight.push_back(InflightBatch {
                        id: batch_id,
                        maxima,
                    });
                }
                for e in entries {
                    self.pending.push_back(SourceEvent {
                        source: e.source,
                        line: ByteLine::from_string(String::from_utf8_lossy(&e.line).into_owned()),
                        cursor: None,
                        seq: Some(e.seq),
                    });
                }
                self.drain_pending();
                Ok(())
            }
            Message::Reconcile { epoch, snapshot } => {
                let mut g = self.mailbox.lock();
                if epoch > g.reconcile_epoch {
                    g.reconcile_epoch = epoch;
                    g.templates_in = Some(snapshot);
                }
                Ok(())
            }
            Message::Revoke { source } => {
                self.mailbox.lock().revoked.push(source);
                // Anything held for a revoked source will be discarded by
                // the consumer after ingest; keep the stream simple.
                Ok(())
            }
            Message::Heartbeat { .. } => Ok(()),
            Message::Fin => {
                self.mailbox.lock().fin = true;
                Ok(())
            }
            Message::Hello { .. } | Message::Ack { .. } | Message::Templates { .. } => {
                Err("router sent a monitor-only message")
            }
        }
    }

    /// Ack every inflight batch the journal now covers, send heartbeats
    /// and queued template snapshots. Called from tick.
    fn pump_protocol(&mut self, now: Instant) {
        let mut g = self.mailbox.lock();
        if g.state != LinkState::Connected {
            return;
        }
        loop {
            let ackable = g.inflight.front().is_some_and(|b| {
                b.maxima
                    .iter()
                    .all(|(s, max)| g.journaled_hw.get(s).copied().unwrap_or(0) >= *max)
            });
            if !ackable {
                break;
            }
            let batch = g.inflight.pop_front().expect("front checked");
            let frame = encode_frame(&Message::Ack { batch_id: batch.id });
            g.outbox.push_back(frame);
            g.acks_sent += 1;
        }
        if now - self.last_hb_sent >= Duration::from_millis(g.heartbeat_ms) {
            self.last_hb_sent = now;
            let depth = self.pending.len() as u32;
            g.outbox
                .push_back(encode_frame(&Message::Heartbeat { depth }));
        }
        if let Some(snapshot) = g.templates_out.take() {
            g.outbox
                .push_back(encode_frame(&Message::Templates { snapshot }));
        }
    }

    fn pump_out(&mut self) -> io::Result<()> {
        loop {
            if self.wpos >= self.wbuf.len() {
                self.wbuf.clear();
                self.wpos = 0;
                match self.mailbox.lock().outbox.pop_front() {
                    Some(frame) => self.wbuf = frame,
                    None => return Ok(()),
                }
            }
            match self.conn.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    fn has_output(&self) -> bool {
        self.wpos < self.wbuf.len() || !self.mailbox.lock().outbox.is_empty()
    }
}

impl Handler for LinkConn {
    fn ready(&mut self, readable: bool, _writable: bool, ctx: &mut LoopCtx<'_>) -> Next {
        let now = ctx.now;
        if readable && self.pending.len() <= PENDING_HOLD_LIMIT {
            let mut buf = [0u8; 64 * 1024];
            loop {
                match self.conn.read(&mut buf) {
                    Ok(0) => return self.drop_link("router-link-lost: eof"),
                    Ok(n) => self.reader.extend(&buf[..n]),
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return self.drop_link("router-link-lost: read error"),
                }
            }
            loop {
                if self.pending.len() > PENDING_HOLD_LIMIT {
                    break;
                }
                match self.reader.next_message() {
                    Ok(Some(msg)) => {
                        if let Err(what) = self.handle_message(msg, now) {
                            return self.drop_link(what);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return self.drop_link("router-link-lost: corrupt frame"),
                }
            }
        }
        if self.pump_out().is_err() {
            return self.drop_link("router-link-lost: write error");
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        self.drain_pending();
        // Process frames parked in the reader while we were holding.
        if self.pending.len() <= PENDING_HOLD_LIMIT {
            loop {
                if self.pending.len() > PENDING_HOLD_LIMIT {
                    break;
                }
                match self.reader.next_message() {
                    Ok(Some(msg)) => {
                        if let Err(what) = self.handle_message(msg, now) {
                            return self.drop_link(what);
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return self.drop_link("router-link-lost: corrupt frame"),
                }
            }
        }
        self.pump_protocol(now);
        let silence_cap = {
            let g = self.mailbox.lock();
            Duration::from_millis(g.heartbeat_ms.saturating_mul(8).max(2_000))
        };
        if now - self.last_rx > silence_cap {
            return self.drop_link("router-link-lost: heartbeat silence");
        }
        if self.pump_out().is_err() {
            return self.drop_link("router-link-lost: write error");
        }
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest {
            read: self.pending.len() <= PENDING_HOLD_LIMIT,
            write: self.has_output(),
        }
    }
}
