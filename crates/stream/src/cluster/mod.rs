//! Distributed MoniLog: the router + monitor-fleet substrate.
//!
//! The paper positions MoniLog as a detector for infrastructures whose log
//! volume exceeds any single consumer (Section II: components "must be
//! distributable in order to ensure scalability"). This module is the
//! process-level answer: a lightweight **router** consistent-hash
//! partitions sources across N **monitor** processes — each already owning
//! its own write-ahead journal, checkpoints, delivery buffers and ops
//! surface — over a CRC-framed, versioned wire protocol ([`wire`]) riding
//! the existing epoll loop ([`crate::net`]).
//!
//! Robustness model, end to end:
//!
//! - **At-least-once over the wire.** Every line the router accepts is
//!   journaled to a per-source disk buffer (the PR 6
//!   [`crate::sinks::DeliveryBuffer`] machinery) *before* it is sent. A
//!   batch stays in flight until the owning monitor acks it — and a
//!   monitor acks only after its own journal fsync covers the batch.
//! - **Exactly-once end to end.** Batch entries carry per-source sequence
//!   numbers; a monitor drops any seq its write-ahead journal already
//!   holds, so replays and reconnect storms never double-ingest.
//! - **Failover.** Missed heartbeats mark a node dead. After a grace
//!   window with capped, jittered backoff (a restart gets a chance to
//!   rejoin cheaply), the dead node's sources are re-assigned to the
//!   survivors and **replayed in full from the disk buffer** — the new
//!   owner rebuilds each source's windows from line one, deterministically
//!   reproducing the reports the dead node would have emitted.
//! - **Rejoin.** A restarted monitor re-handshakes over the control
//!   channel; the router replays from that node's acked high-water mark
//!   and hands it the fleet's merged template snapshot warm. Sources that
//!   were re-assigned while it was gone arrive as revocations, and the
//!   monitor discards any recovered half-windows for them.
//! - **Template reconciliation.** Monitors periodically ship their local
//!   template stores; the router merges them Logan-style ([`reconcile`])
//!   and broadcasts the fleet store, so node-local Drain trees converge
//!   instead of drifting.

pub mod link;
pub mod reconcile;
pub mod router;
pub mod wire;

use monilog_model::SourceId;

pub use link::{ClusterMailbox, LinkSnapshot, LinkState, RouterLinkConfig};
pub use reconcile::merge_template_store;
pub use router::{Router, RouterConfig, RouterError, RouterStats};
pub use wire::{
    encode_frame, BatchEntry, FrameReader, Message, WireError, CLUSTER_MAGIC,
    CLUSTER_PROTO_VERSION, MAX_WIRE_FRAME,
};

/// First [`SourceId`] the router hands out. Local sources on a monitor
/// (syslog 2/3, HTTP 4, tails 8..) stay below this, so a monitor can tell
/// router-owned sources apart — revocation and replay only ever apply to
/// ids at or above the base.
pub const ROUTER_SOURCE_BASE: u16 = 32;

/// True when `source` lives in the router-assigned id range.
pub fn is_router_source(source: SourceId) -> bool {
    source.0 >= ROUTER_SOURCE_BASE
}

/// SplitMix64 — the same cheap deterministic mixer the chaos harness uses;
/// here it scores (source, node) pairs and derives jitter.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Rendezvous (highest-random-weight) owner election: every node scores
/// the source independently and the highest score wins. Adding a node
/// steals only the sources it now wins; removing one moves only *its*
/// sources — exactly the minimal-disruption property consistent hashing
/// is for, without a ring to maintain.
///
/// Returns the index into `nodes` of the winner, or `None` when the node
/// list is empty.
pub fn rendezvous_owner(source: SourceId, nodes: &[String]) -> Option<usize> {
    nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            (
                mix64(
                    fnv64(node.as_bytes()) ^ (source.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                ),
                i,
            )
        })
        .max()
        .map(|(_, i)| i)
}

/// Capped exponential backoff with deterministic jitter: attempt 0 waits
/// `base_ms`, each retry doubles up to `cap_ms`, and up to half the delay
/// is jittered away by a hash of `(seed, attempt)` so a fleet of
/// reconnecting nodes does not stampede in lockstep. Deterministic on
/// purpose — the chaos tests replay exact schedules.
pub fn backoff_delay_ms(attempt: u32, base_ms: u64, cap_ms: u64, seed: u64) -> u64 {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.min(16))
        .min(cap_ms.max(base_ms));
    let jitter_span = exp / 2;
    if jitter_span == 0 {
        return exp;
    }
    exp - mix64(seed ^ (attempt as u64) << 32 ^ 0x5EED) % jitter_span
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rendezvous_is_deterministic_and_total() {
        let ns = nodes(&["mon-a", "mon-b", "mon-c"]);
        for s in 0..200u16 {
            let a = rendezvous_owner(SourceId(s), &ns).unwrap();
            let b = rendezvous_owner(SourceId(s), &ns).unwrap();
            assert_eq!(a, b);
            assert!(a < ns.len());
        }
        assert_eq!(rendezvous_owner(SourceId(1), &[]), None);
    }

    #[test]
    fn rendezvous_spreads_sources() {
        let ns = nodes(&["mon-a", "mon-b", "mon-c"]);
        let mut counts = [0usize; 3];
        for s in ROUTER_SOURCE_BASE..ROUTER_SOURCE_BASE + 300 {
            counts[rendezvous_owner(SourceId(s), &ns).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 40, "node {i} owns only {c}/300 sources");
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_sources() {
        let full = nodes(&["mon-a", "mon-b", "mon-c"]);
        let survivors = nodes(&["mon-a", "mon-c"]);
        for s in 0..300u16 {
            let src = SourceId(s);
            let before = rendezvous_owner(src, &full).unwrap();
            let after = rendezvous_owner(src, &survivors).unwrap();
            if full[before] != "mon-b" {
                // Sources owned by a survivor must not move.
                assert_eq!(
                    survivors[after], full[before],
                    "source {s} moved needlessly"
                );
            }
        }
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_downward() {
        let base = 100;
        let cap = 2_000;
        let mut prev_max = 0;
        for attempt in 0..10 {
            let d = backoff_delay_ms(attempt, base, cap, 7);
            let exp = (base << attempt.min(16)).min(cap);
            assert!(d <= exp, "attempt {attempt}: {d} > {exp}");
            assert!(d > exp / 2, "attempt {attempt}: jitter took more than half");
            prev_max = prev_max.max(d);
        }
        assert!(prev_max <= cap);
        // Deterministic for a fixed seed, different across seeds (usually).
        assert_eq!(
            backoff_delay_ms(3, base, cap, 7),
            backoff_delay_ms(3, base, cap, 7)
        );
    }

    #[test]
    fn router_source_range_is_disjoint_from_local_sources() {
        use crate::sources::{HTTP_SOURCE, SYSLOG_TCP_SOURCE, SYSLOG_UDP_SOURCE, TAIL_SOURCE_BASE};
        for local in [SYSLOG_TCP_SOURCE, SYSLOG_UDP_SOURCE, HTTP_SOURCE] {
            assert!(!is_router_source(local));
        }
        // A generous tail fan-out still stays below the router base.
        assert!(!is_router_source(SourceId(TAIL_SOURCE_BASE + 23)));
        assert!(is_router_source(SourceId(ROUTER_SOURCE_BASE)));
    }
}
