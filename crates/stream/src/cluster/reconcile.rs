//! Logan-style template reconciliation across the fleet.
//!
//! Each monitor grows its own Drain tree, so two nodes that see similar
//! traffic drift: one holds `restart node <*>` where another holds
//! `restart node srv42`. The coordinator/agent merge in
//! `monilog-parse::logan` solves this inside one process; here the same
//! discipline runs over the wire. Monitors periodically ship their encoded
//! [`TemplateStore`]s ([`super::wire::Message::Templates`]); the router
//! folds them into a fleet store with [`merge_template_store`] and
//! broadcasts the merged result ([`super::wire::Message::Reconcile`]),
//! which monitors apply idempotently through `Drain::adopt`.
//!
//! The merge is shape-based and conservative:
//!
//! - an incoming template whose rendered pattern already exists is a no-op;
//! - an incoming template that is a **specialization** of a fleet template
//!   (equal length, statics agree wherever the fleet has statics) is
//!   absorbed — it would parse to the fleet template anyway;
//! - an incoming template that is a **generalization** of exactly the same
//!   shape (statics agree wherever *it* has statics) widens the fleet
//!   template in place, mirroring Logan's mismatch→wildcard widening;
//! - anything else is genuinely new and is interned.

use monilog_model::{Template, TemplateStore, TemplateToken};

/// `specific` parses-to `general`: same length, and wherever `general`
/// holds a static token, `specific` holds the same static.
fn covered_by(specific: &[TemplateToken], general: &[TemplateToken]) -> bool {
    specific.len() == general.len()
        && specific.iter().zip(general).all(|(s, g)| match g {
            TemplateToken::Wildcard => true,
            TemplateToken::Static(gs) => matches!(s, TemplateToken::Static(ss) if ss == gs),
        })
}

/// Positionwise union of wildcards.
fn widen(a: &[TemplateToken], b: &[TemplateToken]) -> Vec<TemplateToken> {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            if x.is_wildcard() || y.is_wildcard() {
                TemplateToken::Wildcard
            } else {
                x.clone()
            }
        })
        .collect()
}

/// Fold one node's template store into the fleet store. Returns the number
/// of fleet-store changes (new templates interned + existing ones widened);
/// `0` means the merge was a fixed point and no re-broadcast is needed.
pub fn merge_template_store(fleet: &mut TemplateStore, incoming: &TemplateStore) -> usize {
    let mut changed = 0;
    for t in incoming.iter().cloned().collect::<Vec<Template>>() {
        if fleet.find_by_pattern(&t.render()).is_some() {
            continue;
        }
        // Absorbed: some fleet template already generalizes this shape.
        if fleet.iter().any(|f| covered_by(&t.tokens, &f.tokens)) {
            continue;
        }
        // Widen: the incoming shape generalizes an existing fleet template
        // of the same skeleton — update it in place (Logan keeps the
        // oldest id and widens, so ids stay stable across the fleet).
        let victim = fleet
            .iter()
            .find(|f| covered_by(&f.tokens, &t.tokens))
            .map(|f| (f.id, widen(&f.tokens, &t.tokens)));
        if let Some((id, widened)) = victim {
            fleet.update(id, widened);
            changed += 1;
            continue;
        }
        fleet.intern(t.tokens);
        changed += 1;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(patterns: &[&str]) -> TemplateStore {
        let mut s = TemplateStore::new();
        for p in patterns {
            let t = Template::from_pattern(Default::default(), p);
            s.intern(t.tokens);
        }
        s
    }

    fn patterns(s: &TemplateStore) -> Vec<String> {
        s.iter().map(|t| t.render()).collect()
    }

    #[test]
    fn disjoint_stores_union() {
        let mut fleet = store_of(&["proc <*> started", "heartbeat ok"]);
        let incoming = store_of(&["disk <*> full", "link down on <*>"]);
        assert_eq!(merge_template_store(&mut fleet, &incoming), 2);
        assert_eq!(fleet.len(), 4);
        assert!(fleet.find_by_pattern("disk <*> full").is_some());
    }

    #[test]
    fn exact_duplicates_are_no_ops() {
        let mut fleet = store_of(&["proc <*> started"]);
        let incoming = store_of(&["proc <*> started"]);
        assert_eq!(merge_template_store(&mut fleet, &incoming), 0);
        assert_eq!(fleet.len(), 1);
    }

    #[test]
    fn specializations_are_absorbed() {
        // A node that only ever saw `proc worker7 started` ships the
        // literal; the fleet's wildcard form already covers it.
        let mut fleet = store_of(&["proc <*> started"]);
        let incoming = store_of(&["proc worker7 started"]);
        assert_eq!(merge_template_store(&mut fleet, &incoming), 0);
        assert_eq!(patterns(&fleet), vec!["proc <*> started"]);
    }

    #[test]
    fn generalizations_widen_in_place_keeping_the_id() {
        let mut fleet = store_of(&["proc worker7 started"]);
        let id_before = fleet.find_by_pattern("proc worker7 started").unwrap();
        let incoming = store_of(&["proc <*> started"]);
        assert_eq!(merge_template_store(&mut fleet, &incoming), 1);
        assert_eq!(fleet.len(), 1, "widened, not duplicated");
        let id_after = fleet.find_by_pattern("proc <*> started").unwrap();
        assert_eq!(id_before, id_after, "Logan merge keeps the oldest id");
        // The old rendering still resolves (alias preserved by update).
        assert_eq!(
            fleet.find_by_pattern("proc worker7 started"),
            Some(id_before)
        );
    }

    #[test]
    fn unrelated_same_length_shapes_do_not_merge() {
        let mut fleet = store_of(&["proc <*> started"]);
        let incoming = store_of(&["disk <*> mounted"]);
        assert_eq!(merge_template_store(&mut fleet, &incoming), 1);
        assert_eq!(fleet.len(), 2);
    }

    #[test]
    fn merge_is_idempotent_and_convergent() {
        let mut fleet = store_of(&["a <*> b", "heartbeat ok"]);
        let incoming = store_of(&["a x b", "a <*> <*>", "new shape here"]);
        let first = merge_template_store(&mut fleet, &incoming);
        assert!(first > 0);
        // Re-applying the same incoming store changes nothing.
        assert_eq!(merge_template_store(&mut fleet, &incoming), 0);
        // And merging the fleet into itself is a fixed point.
        let snapshot = fleet.clone();
        assert_eq!(merge_template_store(&mut fleet, &snapshot), 0);
    }

    #[test]
    fn round_trips_through_the_wire_encoding() {
        let mut fleet = store_of(&["proc <*> started"]);
        let incoming = store_of(&["link down on <*>"]);
        merge_template_store(&mut fleet, &incoming);
        let decoded = TemplateStore::decode(&fleet.encode()).unwrap();
        assert_eq!(patterns(&decoded), patterns(&fleet));
    }
}
