//! The router process: source partitioning, batch fan-out, failure
//! detection, and replay.
//!
//! One [`Router`] owns a TCP listener on the shared epoll loop
//! ([`crate::net::EventLoop`]) plus a registry of monitor nodes. The
//! driver thread (the CLI's `router` mode) feeds lines through
//! [`Router::route_line`]; the router assigns each new source an owner by
//! rendezvous hashing over the currently-connected fleet, journals every
//! sealed batch to a per-source disk buffer (the PR 6
//! [`DeliveryBuffer`]), and ships it as a CRC-framed [`Message::Batch`].
//!
//! ## Failure model
//!
//! A node is *dead* when its connection drops or its heartbeats go silent
//! past the configured timeout. Death starts a grace clock with capped,
//! jittered backoff — a crashed process that restarts quickly rejoins and
//! receives a targeted replay (everything past its acked high-water mark)
//! instead of triggering a fleet-wide reshuffle. If the grace expires, the
//! dead node's sources are re-assigned to the survivors and **replayed in
//! full from the disk buffer**: the new owner rebuilds every window from
//! line one, so the reports it emits are a deterministic superset of
//! whatever the dead node had already delivered — content-identical
//! duplicates, deduplicated downstream. Acked high-water marks, not
//! in-flight bookkeeping, are the single source of truth: on any
//! disconnect the outbox and in-flight queue are discarded and the next
//! session replays from the mark.

use super::wire::{encode_frame, BatchEntry, FrameReader, Message};
use super::{backoff_delay_ms, rendezvous_owner};
use crate::durable::DurabilityError;
use crate::net::{AsLoopFd, EventLoop, Handler, Interest, LoopCtx, Next};
use crate::sinks::{BufferedReport, DeliveryBuffer};
use monilog_model::{DeliveryClass, SourceId, TemplateStore};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Router tuning. Defaults are sized for the experiment harnesses: small
/// batches so a SIGKILL lands mid-stream, sub-second failure detection.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// TCP listen address for monitor nodes (`0` port picks a free one).
    pub listen: SocketAddr,
    /// Directory for the per-source retention buffers.
    pub buffer_dir: PathBuf,
    /// Lines per sealed batch.
    pub batch_lines: usize,
    /// Max sealed-but-unacked batches per node before the driver blocks.
    pub max_inflight: usize,
    /// Heartbeat send cadence.
    pub heartbeat_ms: u64,
    /// Silence (no frames, no heartbeats) after which a node is dead.
    pub dead_after_ms: u64,
    /// Base grace before a dead node's sources are re-assigned; doubles
    /// with each failed rebalance attempt (no survivors yet), capped.
    pub rebalance_grace_ms: u64,
    /// Cap on the rebalance backoff.
    pub rebalance_cap_ms: u64,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            listen: "127.0.0.1:0".parse().expect("static addr"),
            buffer_dir: std::env::temp_dir().join("monilog-router"),
            batch_lines: 64,
            max_inflight: 8,
            heartbeat_ms: 250,
            dead_after_ms: 1_500,
            rebalance_grace_ms: 500,
            rebalance_cap_ms: 4_000,
            jitter_seed: 0x4D6F_6E69,
        }
    }
}

/// Router failure.
#[derive(Debug)]
pub enum RouterError {
    Io(io::Error),
    Durability(DurabilityError),
    /// A blocking call (join wait, finish drain) exceeded its deadline.
    Timeout(&'static str),
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::Io(e) => write!(f, "router i/o: {e}"),
            RouterError::Durability(e) => write!(f, "router buffer: {e}"),
            RouterError::Timeout(what) => write!(f, "router timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for RouterError {}

impl From<io::Error> for RouterError {
    fn from(e: io::Error) -> Self {
        RouterError::Io(e)
    }
}

impl From<DurabilityError> for RouterError {
    fn from(e: DurabilityError) -> Self {
        RouterError::Durability(e)
    }
}

/// Counters for `/status`, the CLI summary line, and harness assertions.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    pub lines_routed: u64,
    pub batches_sent: u64,
    pub batches_acked: u64,
    pub lines_replayed: u64,
    pub rebalances: u64,
    pub rejoins: u64,
    pub template_epoch: u64,
    pub template_count: usize,
    /// `(node, connected, assigned_sources)` per known node.
    pub nodes: Vec<(String, bool, usize)>,
}

/// One sealed, sent, not-yet-acked batch.
#[derive(Debug, Clone)]
struct Inflight {
    id: u64,
    /// Per-source max seq in the batch; an ack folds these into the
    /// node's acked high-water marks.
    maxima: Vec<(SourceId, u64)>,
}

#[derive(Debug, Default)]
struct Node {
    connected: bool,
    /// Bumped on every (re)connect; stale connection handlers no-op.
    conn_gen: u64,
    last_seen: Option<Instant>,
    last_heartbeat_sent: Option<Instant>,
    /// Encoded frames awaiting the connection handler. Cleared on
    /// disconnect — replay-from-acked-high-water re-derives the content.
    outbox: VecDeque<Vec<u8>>,
    inflight: VecDeque<Inflight>,
    /// Per-source: highest seq this node has durably acked.
    acked_hw: HashMap<SourceId, u64>,
    /// Per-source: highest seq enqueued toward this node this session.
    sent_hw: HashMap<SourceId, u64>,
    /// Lines accumulated toward the next sealed batch.
    pending: Vec<BatchEntry>,
    dead_since: Option<Instant>,
    rebalance_at: Option<Instant>,
    rebalance_attempt: u32,
    fin_sent: bool,
}

impl Node {
    fn drained(&self) -> bool {
        self.pending.is_empty() && self.inflight.is_empty() && self.outbox.is_empty()
    }
}

struct Core {
    cfg: RouterConfig,
    nodes: HashMap<String, Node>,
    /// source → owning node name. Sticky: only death moves an entry.
    assignments: HashMap<SourceId, String>,
    /// Per-source retention: every accepted line, journaled before send,
    /// never advanced until the run ends — the full-replay substrate.
    retention: HashMap<SourceId, DeliveryBuffer>,
    /// Per-source: highest seq accepted from the driver.
    source_seq: HashMap<SourceId, u64>,
    fleet_templates: TemplateStore,
    template_epoch: u64,
    next_batch_id: u64,
    finished: bool,
    stats: RouterStats,
    /// Fatal loop-side error surfaced to the driver.
    failure: Option<String>,
}

impl Core {
    fn connected_nodes(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.connected)
            .map(|(name, _)| name.clone())
            .collect();
        v.sort();
        v
    }

    fn retention_for(&mut self, source: SourceId) -> Result<&mut DeliveryBuffer, DurabilityError> {
        if !self.retention.contains_key(&source) {
            let path = self.cfg.buffer_dir.join(format!("src{}.buf", source.0));
            self.retention
                .insert(source, DeliveryBuffer::open(path, None)?);
        }
        Ok(self.retention.get_mut(&source).expect("just inserted"))
    }

    /// Seal `node`'s pending lines into a batch: journal to the retention
    /// buffers first (durability point), then enqueue the frame.
    fn seal_pending(&mut self, name: &str) -> Result<(), DurabilityError> {
        let node = self.nodes.get_mut(name).expect("sealing unknown node");
        if node.pending.is_empty() {
            return Ok(());
        }
        let entries = std::mem::take(&mut node.pending);
        let mut by_source: HashMap<SourceId, Vec<BufferedReport>> = HashMap::new();
        let mut maxima: Vec<(SourceId, u64)> = Vec::new();
        for e in &entries {
            by_source.entry(e.source).or_default().push(BufferedReport {
                id: e.seq,
                class: DeliveryClass::Log,
                body: String::from_utf8_lossy(&e.line).into_owned(),
            });
            match maxima.iter_mut().find(|(s, _)| *s == e.source) {
                Some((_, m)) => *m = (*m).max(e.seq),
                None => maxima.push((e.source, e.seq)),
            }
        }
        for (source, reports) in &by_source {
            self.retention_for(*source)?.append(reports)?;
        }
        let id = self.next_batch_id;
        self.next_batch_id += 1;
        let frame = encode_frame(&Message::Batch {
            batch_id: id,
            entries,
        });
        let node = self.nodes.get_mut(name).expect("sealing unknown node");
        node.inflight.push_back(Inflight { id, maxima });
        node.outbox.push_back(frame);
        self.stats.batches_sent += 1;
        Ok(())
    }

    /// Queue a replay of `source` toward `name`, skipping everything at or
    /// below that node's acked high-water mark. Returns lines queued.
    fn replay_source(&mut self, source: SourceId, name: &str) -> Result<u64, DurabilityError> {
        let from = *self
            .nodes
            .get(name)
            .and_then(|n| n.acked_hw.get(&source))
            .unwrap_or(&0);
        let (all, _) = self.retention_for(source)?.peek(usize::MAX)?;
        let lines: Vec<BatchEntry> = all
            .into_iter()
            .filter(|r| r.id > from)
            .map(|r| BatchEntry {
                source,
                seq: r.id,
                line: r.body.into_bytes(),
            })
            .collect();
        let mut queued = 0u64;
        let batch_lines = self.cfg.batch_lines.max(1);
        for chunk in lines.chunks(batch_lines) {
            let id = self.next_batch_id;
            self.next_batch_id += 1;
            let max = chunk.last().expect("non-empty chunk").seq;
            let frame = encode_frame(&Message::Batch {
                batch_id: id,
                entries: chunk.to_vec(),
            });
            let node = self.nodes.get_mut(name).expect("replay to unknown node");
            node.inflight.push_back(Inflight {
                id,
                maxima: vec![(source, max)],
            });
            node.outbox.push_back(frame);
            node.sent_hw.insert(source, max);
            self.stats.batches_sent += 1;
            queued += chunk.len() as u64;
        }
        self.stats.lines_replayed += queued;
        Ok(queued)
    }

    /// Every accepted line is durably acked by its current owner.
    fn fully_acked(&self) -> bool {
        self.source_seq.iter().all(|(source, &high)| {
            self.assignments
                .get(source)
                .and_then(|owner| self.nodes.get(owner))
                .and_then(|n| n.acked_hw.get(source))
                .is_some_and(|&acked| acked >= high)
        })
    }

    fn mark_disconnected(&mut self, name: &str, gen: u64, now: Instant) {
        let grace = backoff_delay_ms(
            0,
            self.cfg.rebalance_grace_ms,
            self.cfg.rebalance_cap_ms,
            self.cfg.jitter_seed,
        );
        let Some(node) = self.nodes.get_mut(name) else {
            return;
        };
        if node.conn_gen != gen || !node.connected {
            return;
        }
        node.connected = false;
        node.dead_since = Some(now);
        node.rebalance_attempt = 0;
        node.rebalance_at = Some(now + Duration::from_millis(grace));
        node.outbox.clear();
        node.inflight.clear();
        node.sent_hw = node.acked_hw.clone();
        node.fin_sent = false;
    }

    /// Move every source owned by `dead` to a survivor and queue a full
    /// replay (from the new owner's acked mark, normally zero).
    fn rebalance_from(&mut self, dead: &str) -> Result<(), DurabilityError> {
        let survivors = self.connected_nodes();
        if survivors.is_empty() {
            return Ok(());
        }
        let moved: Vec<SourceId> = self
            .assignments
            .iter()
            .filter(|(_, owner)| owner.as_str() == dead)
            .map(|(s, _)| *s)
            .collect();
        for source in moved {
            let new_owner =
                survivors[rendezvous_owner(source, &survivors).expect("non-empty")].clone();
            self.assignments.insert(source, new_owner.clone());
            self.replay_source(source, &new_owner)?;
        }
        if let Some(node) = self.nodes.get_mut(dead) {
            node.dead_since = None;
            node.rebalance_at = None;
        }
        self.stats.rebalances += 1;
        Ok(())
    }

    fn snapshot_stats(&self) -> RouterStats {
        let mut s = self.stats.clone();
        s.template_epoch = self.template_epoch;
        s.template_count = self.fleet_templates.len();
        let mut names: Vec<&String> = self.nodes.keys().collect();
        names.sort();
        s.nodes = names
            .into_iter()
            .map(|name| {
                let assigned = self
                    .assignments
                    .values()
                    .filter(|o| o.as_str() == name)
                    .count();
                (name.clone(), self.nodes[name].connected, assigned)
            })
            .collect();
        s
    }
}

struct Shared {
    core: Mutex<Core>,
    cv: Condvar,
}

impl Shared {
    fn with<R>(&self, f: impl FnOnce(&mut Core) -> R) -> R {
        let mut core = self.core.lock().expect("router core poisoned");
        let r = f(&mut core);
        self.cv.notify_all();
        r
    }
}

/// The router handle owned by the driver thread.
pub struct Router {
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    local_addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Router {
    /// Bind the listener, start the event-loop thread, return the handle.
    pub fn spawn(cfg: RouterConfig) -> Result<Router, RouterError> {
        std::fs::create_dir_all(&cfg.buffer_dir)?;
        let listener = TcpListener::bind(cfg.listen)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            core: Mutex::new(Core {
                cfg,
                nodes: HashMap::new(),
                assignments: HashMap::new(),
                retention: HashMap::new(),
                source_seq: HashMap::new(),
                fleet_templates: TemplateStore::new(),
                template_epoch: 0,
                next_batch_id: 1,
                finished: false,
                stats: RouterStats::default(),
                failure: None,
            }),
            cv: Condvar::new(),
        });

        let mut el = EventLoop::new()?;
        el.register(
            listener.loop_fd(),
            Box::new(ClusterListener {
                listener,
                shared: shared.clone(),
            }),
        )?;
        el.register_timer(Box::new(FleetTimer {
            shared: shared.clone(),
        }));

        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = stop.clone();
        let thread = std::thread::Builder::new()
            .name("monilog-router".into())
            .spawn(move || el.run(loop_stop))?;

        Ok(Router {
            shared,
            stop,
            local_addr,
            thread: Some(thread),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Block until `n` distinct nodes are connected.
    pub fn wait_for_nodes(&self, n: usize, timeout: Duration) -> Result<(), RouterError> {
        let deadline = Instant::now() + timeout;
        let mut core = self.shared.core.lock().expect("router core poisoned");
        loop {
            if core.nodes.values().filter(|nd| nd.connected).count() >= n {
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RouterError::Timeout("fleet join"));
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, deadline - now)
                .expect("router core poisoned");
            core = guard;
        }
    }

    /// Route one line: assign an owner for new sources, append to the
    /// owner's pending batch, seal when full. Blocks while the owner is at
    /// its in-flight cap (or dead and not yet rebalanced) — backpressure,
    /// never loss.
    pub fn route_line(&self, source: SourceId, line: &[u8]) -> Result<(), RouterError> {
        let mut core = self.shared.core.lock().expect("router core poisoned");
        loop {
            if let Some(err) = core.failure.take() {
                return Err(RouterError::Io(io::Error::other(err)));
            }
            if !core.assignments.contains_key(&source) {
                let nodes = core.connected_nodes();
                if let Some(i) = rendezvous_owner(source, &nodes) {
                    core.assignments.insert(source, nodes[i].clone());
                }
            }
            let ready = core
                .assignments
                .get(&source)
                .and_then(|owner| core.nodes.get(owner).map(|n| (owner.clone(), n)))
                .filter(|(_, n)| n.connected && n.inflight.len() < core.cfg.max_inflight)
                .map(|(owner, _)| owner);
            if let Some(owner) = ready {
                let seq = core.source_seq.get(&source).copied().unwrap_or(0) + 1;
                core.source_seq.insert(source, seq);
                core.stats.lines_routed += 1;
                let full = {
                    let node = core.nodes.get_mut(&owner).expect("owner exists");
                    node.pending.push(BatchEntry {
                        source,
                        seq,
                        line: line.to_vec(),
                    });
                    let hw = node.sent_hw.entry(source).or_insert(0);
                    *hw = (*hw).max(seq);
                    node.pending.len() >= core.cfg.batch_lines
                };
                if full {
                    core.seal_pending(&owner)?;
                    self.shared.cv.notify_all();
                }
                return Ok(());
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, Duration::from_millis(50))
                .expect("router core poisoned");
            core = guard;
        }
    }

    /// Seal every node's partial batch.
    pub fn flush(&self) -> Result<(), RouterError> {
        self.shared.with(|core| {
            let names: Vec<String> = core.nodes.keys().cloned().collect();
            for name in names {
                core.seal_pending(&name)?;
            }
            Ok(())
        })
    }

    /// Declare end of input, wait until every accepted line is durably
    /// acked by its current owner (riding out any failovers in between),
    /// then send `Fin` and let the fleet drain.
    pub fn finish(&self, timeout: Duration) -> Result<RouterStats, RouterError> {
        self.flush()?;
        self.shared.with(|core| core.finished = true);
        let deadline = Instant::now() + timeout;
        let mut core = self.shared.core.lock().expect("router core poisoned");
        loop {
            let settled = core.fully_acked()
                && core
                    .nodes
                    .values()
                    .all(|n| !n.connected || (n.drained() && n.fin_sent));
            if settled {
                return Ok(core.snapshot_stats());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RouterError::Timeout("fleet drain"));
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(core, Duration::from_millis(50))
                .expect("router core poisoned");
            core = guard;
        }
    }

    pub fn stats(&self) -> RouterStats {
        self.shared.with(|core| core.snapshot_stats())
    }

    /// Stop the event loop and join its thread.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Accepts monitor connections and registers a [`NodeConn`] per socket.
struct ClusterListener {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Handler for ClusterListener {
    fn ready(&mut self, _r: bool, _w: bool, ctx: &mut LoopCtx<'_>) -> Next {
        loop {
            match self.listener.accept() {
                Ok((conn, _)) => {
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = conn.set_nodelay(true);
                    let fd = conn.loop_fd();
                    ctx.register(
                        fd,
                        Box::new(NodeConn {
                            conn,
                            shared: self.shared.clone(),
                            reader: FrameReader::new(),
                            wbuf: Vec::new(),
                            wpos: 0,
                            node: None,
                            gen: 0,
                        }),
                    );
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Next::Keep,
                Err(_) => return Next::Keep,
            }
        }
    }
}

/// One monitor node's connection.
struct NodeConn {
    conn: TcpStream,
    shared: Arc<Shared>,
    reader: FrameReader,
    /// Frame currently being written (partial writes park here).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Node name, known after `Hello`.
    node: Option<String>,
    /// Connection generation; stale handlers must not touch node state.
    gen: u64,
}

impl NodeConn {
    fn disconnect(&mut self, now: Instant) {
        if let Some(name) = self.node.clone() {
            let gen = self.gen;
            self.shared
                .with(|core| core.mark_disconnected(&name, gen, now));
        }
    }

    fn handle_hello(&mut self, name: String, now: Instant) {
        let gen = self.shared.with(|core| {
            let heartbeat_ms = core.cfg.heartbeat_ms;
            let node = core.nodes.entry(name.clone()).or_default();
            let rejoin = node.conn_gen > 0;
            node.conn_gen += 1;
            let gen = node.conn_gen;
            node.connected = true;
            node.last_seen = Some(now);
            node.last_heartbeat_sent = Some(now);
            node.dead_since = None;
            node.rebalance_at = None;
            node.rebalance_attempt = 0;
            node.outbox.clear();
            node.inflight.clear();
            node.sent_hw = node.acked_hw.clone();
            node.fin_sent = false;
            if rejoin {
                core.stats.rejoins += 1;
            }

            let assigned: Vec<SourceId> = {
                let mut v: Vec<SourceId> = core
                    .assignments
                    .iter()
                    .filter(|(_, owner)| owner.as_str() == name)
                    .map(|(s, _)| *s)
                    .collect();
                v.sort_by_key(|s| s.0);
                v
            };
            let welcome = encode_frame(&Message::Welcome {
                heartbeat_ms,
                assigned: assigned.clone(),
                templates: core.fleet_templates.encode(),
            });
            core.nodes
                .get_mut(&name)
                .expect("entry")
                .outbox
                .push_back(welcome);

            // Revoke every known source this node does not own. Keying
            // this off the node's acked high-water marks is not enough: a
            // node killed mid-first-batch journaled lines (and will
            // resurrect open half-windows from that journal on restart)
            // without ever acking, so the router would hold no mark for
            // it. Over-revoking is free — discarding a source the monitor
            // never held is a no-op — while an unrevoked half-window
            // flushes as a bogus truncated-session anomaly at exit.
            let mut revoked: Vec<SourceId> = core
                .source_seq
                .keys()
                .filter(|s| core.assignments.get(s).map(String::as_str) != Some(name.as_str()))
                .copied()
                .collect();
            revoked.sort_by_key(|s| s.0);
            for source in revoked {
                let frame = encode_frame(&Message::Revoke { source });
                core.nodes
                    .get_mut(&name)
                    .expect("entry")
                    .outbox
                    .push_back(frame);
            }

            // Targeted replay: everything this node owns past its acked
            // high-water mark (zero for a cold join — nothing queued).
            for source in assigned {
                if core.source_seq.get(&source).copied().unwrap_or(0)
                    > core.nodes[&name]
                        .acked_hw
                        .get(&source)
                        .copied()
                        .unwrap_or(0)
                {
                    if let Err(e) = core.replay_source(source, &name) {
                        core.failure = Some(format!("replay of src{} failed: {e}", source.0));
                    }
                }
            }
            gen
        });
        self.gen = gen;
        self.node = Some(name);
    }

    fn handle_message(&mut self, msg: Message, now: Instant) -> Result<(), ()> {
        match msg {
            Message::Hello { node, .. } => {
                self.handle_hello(node, now);
                Ok(())
            }
            Message::Ack { batch_id } => {
                let Some(name) = self.node.clone() else {
                    return Err(());
                };
                let gen = self.gen;
                self.shared.with(|core| {
                    let Some(node) = core.nodes.get_mut(&name) else {
                        return;
                    };
                    if node.conn_gen != gen {
                        return;
                    }
                    node.last_seen = Some(now);
                    // Acks are cumulative per connection: draining up to and
                    // including `batch_id` is safe because the monitor
                    // journals in arrival order.
                    if let Some(pos) = node.inflight.iter().position(|b| b.id == batch_id) {
                        for done in node.inflight.drain(..=pos) {
                            for (source, max) in done.maxima {
                                let hw = node.acked_hw.entry(source).or_insert(0);
                                *hw = (*hw).max(max);
                            }
                            core.stats.batches_acked += 1;
                        }
                    }
                });
                Ok(())
            }
            Message::Heartbeat { .. } => {
                let Some(name) = self.node.clone() else {
                    return Err(());
                };
                let gen = self.gen;
                self.shared.with(|core| {
                    if let Some(node) = core.nodes.get_mut(&name) {
                        if node.conn_gen == gen {
                            node.last_seen = Some(now);
                        }
                    }
                });
                Ok(())
            }
            Message::Templates { snapshot } => {
                if self.node.is_none() {
                    return Err(());
                }
                let Ok(incoming) = TemplateStore::decode(&snapshot) else {
                    // A corrupt snapshot is a protocol error.
                    return Err(());
                };
                self.shared.with(|core| {
                    let changed = super::reconcile::merge_template_store(
                        &mut core.fleet_templates,
                        &incoming,
                    );
                    if changed > 0 {
                        core.template_epoch += 1;
                        let frame = encode_frame(&Message::Reconcile {
                            epoch: core.template_epoch,
                            snapshot: core.fleet_templates.encode(),
                        });
                        for node in core.nodes.values_mut().filter(|n| n.connected) {
                            node.outbox.push_back(frame.clone());
                        }
                    }
                });
                Ok(())
            }
            // Monitors never send these; receiving one is a protocol error.
            Message::Welcome { .. }
            | Message::Batch { .. }
            | Message::Reconcile { .. }
            | Message::Revoke { .. }
            | Message::Fin => Err(()),
        }
    }

    /// Write queued frames until the socket would block.
    fn pump_out(&mut self) -> io::Result<()> {
        loop {
            if self.wpos >= self.wbuf.len() {
                self.wbuf.clear();
                self.wpos = 0;
                let next = match &self.node {
                    Some(name) => {
                        let gen = self.gen;
                        self.shared.with(|core| {
                            core.nodes.get_mut(name).and_then(|n| {
                                if n.conn_gen == gen {
                                    n.outbox.pop_front()
                                } else {
                                    None
                                }
                            })
                        })
                    }
                    None => None,
                };
                match next {
                    Some(frame) => self.wbuf = frame,
                    None => return Ok(()),
                }
            }
            match self.conn.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    }

    fn has_output(&self) -> bool {
        if self.wpos < self.wbuf.len() {
            return true;
        }
        match &self.node {
            Some(name) => {
                let gen = self.gen;
                self.shared.with(|core| {
                    core.nodes
                        .get(name)
                        .is_some_and(|n| n.conn_gen == gen && !n.outbox.is_empty())
                })
            }
            None => false,
        }
    }
}

impl Handler for NodeConn {
    fn ready(&mut self, readable: bool, _writable: bool, ctx: &mut LoopCtx<'_>) -> Next {
        let now = ctx.now;
        if readable {
            let mut buf = [0u8; 64 * 1024];
            loop {
                match self.conn.read(&mut buf) {
                    Ok(0) => {
                        self.disconnect(now);
                        return Next::Close;
                    }
                    Ok(n) => self.reader.extend(&buf[..n]),
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        self.disconnect(now);
                        return Next::Close;
                    }
                }
            }
            loop {
                match self.reader.next_message() {
                    Ok(Some(msg)) => {
                        if self.handle_message(msg, now).is_err() {
                            self.disconnect(now);
                            return Next::Close;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // Torn or corrupt frame: drop the connection; the
                        // monitor reconnects and replay covers the gap.
                        self.disconnect(now);
                        return Next::Close;
                    }
                }
            }
        }
        if self.pump_out().is_err() {
            self.disconnect(now);
            return Next::Close;
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        if let Some(name) = self.node.clone() {
            let gen = self.gen;
            let alive = self.shared.with(|core| {
                let dead_after = Duration::from_millis(core.cfg.dead_after_ms);
                let heartbeat = Duration::from_millis(core.cfg.heartbeat_ms);
                let finished = core.finished;
                let Some(node) = core.nodes.get_mut(&name) else {
                    return false;
                };
                if node.conn_gen != gen {
                    return false;
                }
                if node.last_seen.is_some_and(|seen| now - seen > dead_after) {
                    core.mark_disconnected(&name, gen, now);
                    return false;
                }
                if node
                    .last_heartbeat_sent
                    .is_none_or(|sent| now - sent >= heartbeat)
                {
                    node.last_heartbeat_sent = Some(now);
                    node.outbox.push_back(encode_frame(&Message::Heartbeat {
                        depth: node.inflight.len() as u32,
                    }));
                }
                if finished && !node.fin_sent && node.pending.is_empty() && node.inflight.is_empty()
                {
                    node.outbox.push_back(encode_frame(&Message::Fin));
                    node.fin_sent = true;
                }
                true
            });
            if !alive {
                return Next::Close;
            }
        }
        if self.pump_out().is_err() {
            self.disconnect(now);
            return Next::Close;
        }
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest {
            read: true,
            write: self.has_output(),
        }
    }
}

/// Fleet-level timer: drives the rebalance clock for dead nodes.
struct FleetTimer {
    shared: Arc<Shared>,
}

impl Handler for FleetTimer {
    fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        self.shared.with(|core| {
            let due: Vec<String> = core
                .nodes
                .iter()
                .filter(|(name, n)| {
                    !n.connected
                        && n.rebalance_at.is_some_and(|at| now >= at)
                        && core
                            .assignments
                            .values()
                            .any(|owner| owner.as_str() == name.as_str())
                })
                .map(|(name, _)| name.clone())
                .collect();
            for name in due {
                if core.connected_nodes().is_empty() {
                    // No survivors yet: back off (capped, jittered) and
                    // retry — a restarting fleet gets time to come back.
                    let node = core.nodes.get_mut(&name).expect("due node exists");
                    node.rebalance_attempt += 1;
                    let delay = backoff_delay_ms(
                        node.rebalance_attempt,
                        core.cfg.rebalance_grace_ms,
                        core.cfg.rebalance_cap_ms,
                        core.cfg.jitter_seed,
                    );
                    node.rebalance_at = Some(now + Duration::from_millis(delay));
                    continue;
                }
                if let Err(e) = core.rebalance_from(&name) {
                    core.failure = Some(format!("rebalance from {name} failed: {e}"));
                }
            }
        });
        Next::Keep
    }

    fn interest(&self) -> Interest {
        Interest::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FlakyLinkProxy;
    use crate::cluster::link::RouterLinkConfig;
    use crate::cluster::ClusterMailbox;
    use crate::observe::MetricsRegistry;
    use crate::sources::{SourceQueue, SourcesConfig, SourcesServer};
    use std::collections::{BTreeMap, HashMap};
    use std::sync::atomic::AtomicBool;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "monilog-cluster-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fast_config(dir: &std::path::Path) -> RouterConfig {
        RouterConfig {
            listen: "127.0.0.1:0".parse().unwrap(),
            buffer_dir: dir.to_path_buf(),
            batch_lines: 4,
            max_inflight: 4,
            heartbeat_ms: 50,
            dead_after_ms: 400,
            rebalance_grace_ms: 100,
            rebalance_cap_ms: 400,
            jitter_seed: 7,
        }
    }

    /// Spawn a monitor node: a [`SourcesServer`] with only the router link,
    /// plus a consumer thread that mimics the CLI's journal loop — dedup by
    /// `(source, seq)` (the WAL contract), record the line, publish the
    /// journal high-water so acks flow. Returns the per-source line map on
    /// join.
    struct TestMonitor {
        _server: SourcesServer,
        mailbox: Arc<ClusterMailbox>,
        stop: Arc<AtomicBool>,
        revoked: Arc<std::sync::Mutex<Vec<SourceId>>>,
        handle: Option<std::thread::JoinHandle<HashMap<SourceId, BTreeMap<u64, String>>>>,
    }

    impl TestMonitor {
        fn spawn(node: &str, router_addr: SocketAddr) -> TestMonitor {
            let mut link = RouterLinkConfig::new(router_addr, node.to_string());
            link.reconnect_base_ms = 20;
            link.reconnect_cap_ms = 100;
            let config = SourcesConfig {
                router: Some(link),
                ..SourcesConfig::default()
            };
            let registry = MetricsRegistry::shared();
            let (server, queue) = SourcesServer::spawn(config, registry, None, None).unwrap();
            let mailbox = server.cluster_mailbox().expect("link configured");
            let stop = Arc::new(AtomicBool::new(false));
            let revoked = Arc::new(std::sync::Mutex::new(Vec::new()));
            let handle = std::thread::spawn({
                let mailbox = mailbox.clone();
                let stop = stop.clone();
                let revoked = revoked.clone();
                move || consume(queue, mailbox, stop, revoked)
            });
            TestMonitor {
                _server: server,
                mailbox,
                stop,
                revoked,
                handle: Some(handle),
            }
        }

        fn join(mut self) -> HashMap<SourceId, BTreeMap<u64, String>> {
            self.stop.store(true, Ordering::SeqCst);
            self.handle.take().unwrap().join().unwrap()
        }
    }

    fn consume(
        queue: SourceQueue,
        mailbox: Arc<ClusterMailbox>,
        stop: Arc<AtomicBool>,
        revoked_log: Arc<std::sync::Mutex<Vec<SourceId>>>,
    ) -> HashMap<SourceId, BTreeMap<u64, String>> {
        let mut seen: HashMap<SourceId, BTreeMap<u64, String>> = HashMap::new();
        loop {
            let batch = queue.recv_batch(256, Duration::from_millis(20));
            let mut marks: Vec<(SourceId, u64)> = Vec::new();
            for ev in batch {
                let seq = ev.seq.expect("router-fed events carry a wire seq");
                // The real consumer's WAL dedups replays; mirror that here.
                seen.entry(ev.source)
                    .or_default()
                    .entry(seq)
                    .or_insert_with(|| String::from_utf8_lossy(ev.line.as_bytes()).into_owned());
                match marks.iter_mut().find(|(s, _)| *s == ev.source) {
                    Some((_, m)) => *m = (*m).max(seq),
                    None => marks.push((ev.source, seq)),
                }
            }
            if !marks.is_empty() {
                // "fsync" is instantaneous for the in-memory mirror.
                mailbox.publish_journaled(&marks);
            }
            for source in mailbox.take_revoked() {
                seen.remove(&source);
                revoked_log.lock().unwrap().push(source);
            }
            if stop.load(Ordering::SeqCst)
                || (mailbox.fin_received() && queue.depth() == 0 && mailbox.unacked_batches() == 0)
            {
                return seen;
            }
        }
    }

    fn feed(router: &Router, sources: &[SourceId], lines: std::ops::RangeInclusive<usize>) {
        for i in lines {
            for &s in sources {
                router
                    .route_line(s, format!("src{} line {i}", s.0).as_bytes())
                    .unwrap();
            }
        }
    }

    fn assert_complete(
        merged: &HashMap<SourceId, BTreeMap<u64, String>>,
        sources: &[SourceId],
        lines_per_source: usize,
    ) {
        for &s in sources {
            let lines = merged
                .get(&s)
                .unwrap_or_else(|| panic!("src{} missing", s.0));
            assert_eq!(
                lines.len(),
                lines_per_source,
                "src{}: {} of {lines_per_source} lines",
                s.0,
                lines.len()
            );
            for (i, (seq, body)) in lines.iter().enumerate() {
                assert_eq!(*seq, (i + 1) as u64, "src{}: seq gap", s.0);
                assert_eq!(body, &format!("src{} line {}", s.0, i + 1));
            }
        }
    }

    #[test]
    fn fleet_routes_every_line_exactly_once() {
        let dir = tmp_dir("route");
        let router = Router::spawn(fast_config(&dir)).unwrap();
        let a = TestMonitor::spawn("mon-a", router.local_addr());
        let b = TestMonitor::spawn("mon-b", router.local_addr());
        router.wait_for_nodes(2, Duration::from_secs(5)).unwrap();

        let sources: Vec<SourceId> = (32..38).map(SourceId).collect();
        feed(&router, &sources, 1..=25);
        let stats = router.finish(Duration::from_secs(10)).unwrap();
        assert_eq!(stats.lines_routed, 150);
        assert_eq!(stats.batches_acked, stats.batches_sent);

        let mut merged = a.join();
        for (source, lines) in b.join() {
            assert!(
                merged.insert(source, lines).is_none(),
                "src{} served by both monitors",
                source.0
            );
        }
        assert_complete(&merged, &sources, 25);
        router.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killing_a_monitor_rebalances_and_replays_in_full() {
        let dir = tmp_dir("kill");
        let router = Router::spawn(fast_config(&dir)).unwrap();
        let a = TestMonitor::spawn("mon-a", router.local_addr());
        let b = TestMonitor::spawn("mon-b", router.local_addr());
        router.wait_for_nodes(2, Duration::from_secs(5)).unwrap();

        let sources: Vec<SourceId> = (32..38).map(SourceId).collect();
        feed(&router, &sources, 1..=10);
        router.flush().unwrap();
        // SIGKILL stand-in: tearing down the TestMonitor drops its
        // SourcesServer, closing the link socket under the router. Its
        // stale partial map is deliberately ignored below.
        let _ = b.join();

        feed(&router, &sources, 11..=20); // while the fleet is degraded
        let stats = router.finish(Duration::from_secs(15)).unwrap();
        assert!(stats.rebalances >= 1, "dead node never rebalanced");
        assert!(stats.lines_replayed > 0, "no replay happened");

        // The survivor alone must hold the complete, gap-free set: the
        // dead node's sources were replayed to it from line one.
        let merged = a.join();
        assert_complete(&merged, &sources, 20);
        router.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejoining_node_is_revoked_for_sources_it_lost() {
        let dir = tmp_dir("rejoin-revoke");
        let router = Router::spawn(fast_config(&dir)).unwrap();
        let a = TestMonitor::spawn("mon-a", router.local_addr());
        let b = TestMonitor::spawn("mon-b", router.local_addr());
        router.wait_for_nodes(2, Duration::from_secs(5)).unwrap();

        let sources: Vec<SourceId> = (32..38).map(SourceId).collect();
        feed(&router, &sources, 1..=10);
        router.flush().unwrap();
        // Let acks land so the router has a high-water mark for mon-b.
        let deadline = Instant::now() + Duration::from_secs(5);
        while router.stats().batches_acked < router.stats().batches_sent {
            assert!(Instant::now() < deadline, "acks never settled");
            std::thread::sleep(Duration::from_millis(20));
        }
        let _ = b.join(); // SIGKILL stand-in: the socket drops under the router

        // Wait for the failover to move mon-b's sources to the survivor.
        let deadline = Instant::now() + Duration::from_secs(10);
        while router.stats().rebalances == 0 {
            assert!(Instant::now() < deadline, "dead node never rebalanced");
            std::thread::sleep(Duration::from_millis(20));
        }

        // The node restarts under the same name, with no sources left. The
        // router must revoke everything it once acked so the monitor
        // discards recovered half-windows instead of flushing them as
        // bogus anomaly reports at exit.
        // Every known source now belongs to the survivor, so the rejoiner
        // must be revoked for all of them — including any it journaled
        // but never acked (a mid-batch kill leaves no ack high-water mark
        // at the router, yet the journal still resurrects half-windows).
        let b2 = TestMonitor::spawn("mon-b", router.local_addr());
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let revoked = b2.revoked.lock().unwrap().clone();
            for source in &revoked {
                assert!(sources.contains(source), "revoked unknown src{}", source.0);
            }
            if revoked.len() == sources.len() {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "rejoining node saw revokes for only {} of {} lost sources",
                revoked.len(),
                sources.len()
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        feed(&router, &sources, 11..=20);
        let stats = router.finish(Duration::from_secs(15)).unwrap();
        assert!(stats.rejoins >= 1, "restart was not counted as a rejoin");

        let merged = a.join();
        assert_complete(&merged, &sources, 20);
        let _ = b2.join();
        router.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flaky_router_link_leaks_zero_lines() {
        let dir = tmp_dir("flaky");
        let router = Router::spawn(fast_config(&dir)).unwrap();
        // Session script: cut mid-frame early, cut almost immediately
        // (reconnect storm), one mid-stream cut, then run clean.
        let proxy = FlakyLinkProxy::spawn(router.local_addr(), vec![700, 40, 23, 1_500]).unwrap();
        let a = TestMonitor::spawn("mon-a", proxy.addr());
        router.wait_for_nodes(1, Duration::from_secs(5)).unwrap();

        let sources: Vec<SourceId> = (32..35).map(SourceId).collect();
        feed(&router, &sources, 1..=40);
        let stats = router.finish(Duration::from_secs(20)).unwrap();
        assert!(
            proxy.cuts() >= 2,
            "script never fired: {} cuts",
            proxy.cuts()
        );
        assert!(stats.rejoins >= 1, "monitor never re-handshook");

        let merged = a.join();
        assert_complete(&merged, &sources, 40);
        proxy.shutdown();
        router.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn templates_reconcile_across_the_fleet() {
        use monilog_model::{Template, TemplateStore};
        let dir = tmp_dir("tpl");
        let router = Router::spawn(fast_config(&dir)).unwrap();
        let a = TestMonitor::spawn("mon-a", router.local_addr());
        let b = TestMonitor::spawn("mon-b", router.local_addr());
        router.wait_for_nodes(2, Duration::from_secs(5)).unwrap();

        let mut store_a = TemplateStore::new();
        store_a.intern(Template::from_pattern(Default::default(), "proc <*> started").tokens);
        a.mailbox.offer_templates(store_a.encode());

        // The merged fleet store must reach the *other* node.
        let deadline = Instant::now() + Duration::from_secs(5);
        let merged = loop {
            if let Some(bytes) = b.mailbox.take_templates() {
                let store = TemplateStore::decode(&bytes).unwrap();
                if store.find_by_pattern("proc <*> started").is_some() {
                    break store;
                }
            }
            assert!(
                Instant::now() < deadline,
                "reconcile broadcast never arrived"
            );
            std::thread::sleep(Duration::from_millis(20));
        };
        assert_eq!(merged.len(), 1);
        assert!(router.stats().template_epoch >= 1);

        let stats = router.finish(Duration::from_secs(5)).unwrap();
        assert_eq!(stats.template_count, 1);
        let _ = a.join();
        let _ = b.join();
        router.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
