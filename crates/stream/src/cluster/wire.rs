//! The cluster wire protocol: CRC-framed, versioned messages between the
//! router process and its monitor nodes.
//!
//! Every frame on the wire is
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = "MLCW" magic + u16 version + u8 kind + kind-specific body
//! ```
//!
//! — the same framing discipline as the durable journal and the delivery
//! buffers (PR 5/6), so a torn TCP segment or a bit flip in transit is
//! *detected* (connection dropped, batch replayed) instead of decoded into
//! garbage lines. The protocol is deliberately small: data plane
//! ([`Message::Batch`]/[`Message::Ack`]), liveness ([`Message::Heartbeat`]),
//! and a control channel for membership and template reconciliation
//! ([`Message::Hello`], [`Message::Welcome`], [`Message::Templates`],
//! [`Message::Reconcile`], [`Message::Revoke`], [`Message::Fin`]).
//!
//! Delivery semantics layered on top: frames are at-least-once (the router
//! replays unacked batches after a reconnect or failover), and the monitor
//! dedupes by the per-source `seq` carried in every batch entry against its
//! own write-ahead journal — at-least-once over the wire, exactly-once end
//! to end.

use monilog_model::codec::{crc32, CodecError, Decoder, Encoder};
use monilog_model::SourceId;
use std::fmt;

/// Magic prefixing every payload ("MoniLog Cluster Wire").
pub const CLUSTER_MAGIC: [u8; 4] = *b"MLCW";
/// Protocol version; a mismatch is a typed decode error, never a guess.
pub const CLUSTER_PROTO_VERSION: u16 = 1;
/// Hard cap on one frame's payload. A length field larger than this is
/// corruption (or a hostile peer), not a frame worth buffering for.
pub const MAX_WIRE_FRAME: usize = 8 * 1024 * 1024;

/// Wire-level failure. Any of these tears down the connection; the
/// at-least-once replay path re-sends whatever was in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Declared payload length exceeds [`MAX_WIRE_FRAME`].
    Oversized(usize),
    /// Payload checksum mismatch: torn or bit-flipped frame.
    Crc { expected: u32, found: u32 },
    /// Framing was intact but the payload did not decode.
    Codec(CodecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds cap"),
            WireError::Crc { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
            WireError::Codec(e) => write!(f, "frame payload corrupt: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// One log line inside a [`Message::Batch`]: which source it belongs to,
/// its position in that source's sequence space, and the raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    pub source: SourceId,
    pub seq: u64,
    pub line: Vec<u8>,
}

/// A cluster protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Monitor → router: first frame on every connection. `resume` is true
    /// when the monitor believes it has prior durable state for this node
    /// name (a rejoin after restart rather than a cold join).
    Hello { node: String, resume: bool },
    /// Router → monitor: accepts the join. Carries the liveness cadence the
    /// router expects, the sources currently assigned to this node (so a
    /// rejoining monitor can discard recovered state for revoked ones), and
    /// the fleet's merged template snapshot (`TemplateStore::encode`; empty
    /// when the fleet has none yet) — the warm handoff.
    Welcome {
        heartbeat_ms: u64,
        assigned: Vec<SourceId>,
        templates: Vec<u8>,
    },
    /// Router → monitor: a batch of lines for sources this node owns.
    /// `batch_id` is per-connection monotonic; the monitor acks it only
    /// after its own journal fsync covers every entry.
    Batch {
        batch_id: u64,
        entries: Vec<BatchEntry>,
    },
    /// Monitor → router: `batch_id` (and, per-source, every seq at or below
    /// the batch's maxima) is durable on this node.
    Ack { batch_id: u64 },
    /// Either direction: liveness. `depth` is the sender's ingest queue
    /// depth, a cheap load signal surfaced in `/status`.
    Heartbeat { depth: u32 },
    /// Monitor → router: the node's local template store
    /// (`TemplateStore::encode`) for periodic Logan-style reconciliation.
    Templates { snapshot: Vec<u8> },
    /// Router → monitor: the merged fleet template store. `epoch` increases
    /// every time the merge absorbs something new; monitors apply
    /// idempotently via `Drain::adopt`.
    Reconcile { epoch: u64, snapshot: Vec<u8> },
    /// Router → monitor: the source is no longer assigned to this node
    /// (reassigned after a failover). The monitor must stop emitting for it
    /// and discard any recovered open windows.
    Revoke { source: SourceId },
    /// Router → monitor: no more batches will follow. Once the monitor has
    /// drained and acked, it may finish.
    Fin,
}

impl Message {
    fn kind(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Welcome { .. } => 2,
            Message::Batch { .. } => 3,
            Message::Ack { .. } => 4,
            Message::Heartbeat { .. } => 5,
            Message::Templates { .. } => 6,
            Message::Reconcile { .. } => 7,
            Message::Revoke { .. } => 8,
            Message::Fin => 9,
        }
    }
}

/// Encode one message as a complete wire frame (length + CRC + payload).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let mut e = Encoder::with_header(CLUSTER_MAGIC, CLUSTER_PROTO_VERSION);
    e.put_u8(msg.kind());
    match msg {
        Message::Hello { node, resume } => {
            e.put_str(node);
            e.put_bool(*resume);
        }
        Message::Welcome {
            heartbeat_ms,
            assigned,
            templates,
        } => {
            e.put_u64(*heartbeat_ms);
            e.put_len(assigned.len());
            for s in assigned {
                e.put_u16(s.0);
            }
            e.put_bytes(templates);
        }
        Message::Batch { batch_id, entries } => {
            e.put_u64(*batch_id);
            e.put_len(entries.len());
            for entry in entries {
                e.put_u16(entry.source.0);
                e.put_u64(entry.seq);
                e.put_bytes(&entry.line);
            }
        }
        Message::Ack { batch_id } => e.put_u64(*batch_id),
        Message::Heartbeat { depth } => e.put_u32(*depth),
        Message::Templates { snapshot } => e.put_bytes(snapshot),
        Message::Reconcile { epoch, snapshot } => {
            e.put_u64(*epoch);
            e.put_bytes(snapshot);
        }
        Message::Revoke { source } => e.put_u16(source.0),
        Message::Fin => {}
    }
    let payload = e.finish();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decode one payload (already CRC-verified and length-delimited).
fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
    let mut d = Decoder::new(payload);
    d.expect_header(CLUSTER_MAGIC, CLUSTER_PROTO_VERSION)?;
    let msg = match d.get_u8()? {
        1 => Message::Hello {
            node: d.get_str()?,
            resume: d.get_bool()?,
        },
        2 => {
            let heartbeat_ms = d.get_u64()?;
            let n = d.get_len()?;
            let mut assigned = Vec::with_capacity(n);
            for _ in 0..n {
                assigned.push(SourceId(d.get_u16()?));
            }
            Message::Welcome {
                heartbeat_ms,
                assigned,
                templates: d.get_bytes()?,
            }
        }
        3 => {
            let batch_id = d.get_u64()?;
            let n = d.get_len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(BatchEntry {
                    source: SourceId(d.get_u16()?),
                    seq: d.get_u64()?,
                    line: d.get_bytes()?,
                });
            }
            Message::Batch { batch_id, entries }
        }
        4 => Message::Ack {
            batch_id: d.get_u64()?,
        },
        5 => Message::Heartbeat {
            depth: d.get_u32()?,
        },
        6 => Message::Templates {
            snapshot: d.get_bytes()?,
        },
        7 => Message::Reconcile {
            epoch: d.get_u64()?,
            snapshot: d.get_bytes()?,
        },
        8 => Message::Revoke {
            source: SourceId(d.get_u16()?),
        },
        9 => Message::Fin,
        _ => return Err(CodecError::Corrupt("cluster message kind").into()),
    };
    if !d.is_exhausted() {
        return Err(CodecError::Corrupt("trailing bytes in cluster frame").into());
    }
    Ok(msg)
}

/// Incremental frame reader for a nonblocking socket: feed it whatever
/// `read(2)` returned, pull complete messages out. A partial frame stays
/// buffered (`Ok(None)`) until the rest arrives; a corrupt one is a typed
/// error and the connection should be dropped.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer freshly-received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next complete message, if one is fully buffered.
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("sized")) as usize;
        if len > MAX_WIRE_FRAME {
            return Err(WireError::Oversized(len));
        }
        let expected = u32::from_le_bytes(self.buf[4..8].try_into().expect("sized"));
        if self.buf.len() < 8 + len {
            return Ok(None);
        }
        let payload = &self.buf[8..8 + len];
        let found = crc32(payload);
        if found != expected {
            return Err(WireError::Crc { expected, found });
        }
        let msg = decode_payload(payload)?;
        self.buf.drain(..8 + len);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello {
                node: "mon-a".into(),
                resume: true,
            },
            Message::Welcome {
                heartbeat_ms: 500,
                assigned: vec![SourceId(32), SourceId(33)],
                templates: vec![1, 2, 3, 4],
            },
            Message::Batch {
                batch_id: 7,
                entries: vec![
                    BatchEntry {
                        source: SourceId(32),
                        seq: 1,
                        line: b"2020-03-19 15:38:55,977 INFO boot".to_vec(),
                    },
                    BatchEntry {
                        source: SourceId(33),
                        seq: 9,
                        line: Vec::new(),
                    },
                ],
            },
            Message::Ack { batch_id: 7 },
            Message::Heartbeat { depth: 42 },
            Message::Templates {
                snapshot: vec![0xAB; 17],
            },
            Message::Reconcile {
                epoch: 3,
                snapshot: vec![0xCD; 9],
            },
            Message::Revoke {
                source: SourceId(33),
            },
            Message::Fin,
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let frame = encode_frame(&msg);
            let mut r = FrameReader::new();
            r.extend(&frame);
            assert_eq!(r.next_message().unwrap(), Some(msg));
            assert_eq!(r.pending_bytes(), 0);
            assert_eq!(r.next_message().unwrap(), None);
        }
    }

    #[test]
    fn frames_survive_arbitrary_segmentation() {
        // TCP may deliver the stream in any chunking; one byte at a time is
        // the worst case.
        let msgs = sample_messages();
        let stream: Vec<u8> = msgs.iter().flat_map(encode_frame).collect();
        let mut r = FrameReader::new();
        let mut out = Vec::new();
        for &b in &stream {
            r.extend(&[b]);
            while let Some(m) = r.next_message().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn torn_frame_waits_for_the_rest() {
        let frame = encode_frame(&Message::Ack { batch_id: 99 });
        for cut in 0..frame.len() {
            let mut r = FrameReader::new();
            r.extend(&frame[..cut]);
            assert_eq!(r.next_message().unwrap(), None, "cut at {cut}");
            r.extend(&frame[cut..]);
            assert_eq!(
                r.next_message().unwrap(),
                Some(Message::Ack { batch_id: 99 }),
                "completing the frame cut at {cut} must decode"
            );
        }
    }

    #[test]
    fn payload_bit_flip_is_a_crc_error() {
        let frame = encode_frame(&Message::Heartbeat { depth: 5 });
        for byte in 8..frame.len() {
            let mut copy = frame.clone();
            copy[byte] ^= 0x20;
            let mut r = FrameReader::new();
            r.extend(&copy);
            assert!(
                matches!(r.next_message(), Err(WireError::Crc { .. })),
                "flip at payload byte {byte} undetected"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut r = FrameReader::new();
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&(u32::MAX).to_le_bytes());
        bogus.extend_from_slice(&[0u8; 4]);
        r.extend(&bogus);
        assert!(matches!(r.next_message(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let mut e = Encoder::with_header(CLUSTER_MAGIC, CLUSTER_PROTO_VERSION + 1);
        e.put_u8(9); // Fin
        let payload = e.finish();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut r = FrameReader::new();
        r.extend(&frame);
        assert!(matches!(
            r.next_message(),
            Err(WireError::Codec(CodecError::BadVersion { .. }))
        ));
    }

    #[test]
    fn trailing_bytes_in_payload_are_rejected() {
        let mut e = Encoder::with_header(CLUSTER_MAGIC, CLUSTER_PROTO_VERSION);
        e.put_u8(9); // Fin ...
        e.put_u32(7); // ... followed by junk the decoder must not ignore
        let payload = e.finish();
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut r = FrameReader::new();
        r.extend(&frame);
        assert!(matches!(r.next_message(), Err(WireError::Codec(_))));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_entry() -> impl Strategy<Value = BatchEntry> {
        (
            any::<u16>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..200),
        )
            .prop_map(|(s, seq, line)| BatchEntry {
                source: SourceId(s),
                seq,
                line,
            })
    }

    fn arb_message() -> impl Strategy<Value = Message> {
        prop_oneof![
            (".{0,24}", any::<bool>()).prop_map(|(node, resume)| Message::Hello { node, resume }),
            (
                any::<u64>(),
                proptest::collection::vec(any::<u16>(), 0..16),
                proptest::collection::vec(any::<u8>(), 0..256),
            )
                .prop_map(|(hb, srcs, templates)| Message::Welcome {
                    heartbeat_ms: hb,
                    assigned: srcs.into_iter().map(SourceId).collect(),
                    templates,
                }),
            (any::<u64>(), proptest::collection::vec(arb_entry(), 0..12))
                .prop_map(|(batch_id, entries)| Message::Batch { batch_id, entries }),
            any::<u64>().prop_map(|batch_id| Message::Ack { batch_id }),
            any::<u32>().prop_map(|depth| Message::Heartbeat { depth }),
            proptest::collection::vec(any::<u8>(), 0..256)
                .prop_map(|snapshot| Message::Templates { snapshot }),
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256))
                .prop_map(|(epoch, snapshot)| Message::Reconcile { epoch, snapshot }),
            any::<u16>().prop_map(|s| Message::Revoke {
                source: SourceId(s)
            }),
            Just(Message::Fin),
        ]
    }

    proptest! {
        /// Any message stream round-trips through any segmentation.
        #[test]
        fn round_trip_with_random_chunking(
            msgs in proptest::collection::vec(arb_message(), 1..8),
            chunk in 1usize..64,
        ) {
            let stream: Vec<u8> = msgs.iter().flat_map(encode_frame).collect();
            let mut r = FrameReader::new();
            let mut out = Vec::new();
            for piece in stream.chunks(chunk) {
                r.extend(piece);
                while let Some(m) = r.next_message().unwrap() {
                    out.push(m);
                }
            }
            prop_assert_eq!(out, msgs);
            prop_assert_eq!(r.pending_bytes(), 0);
        }

        /// A torn frame never yields a message and never errors — it waits.
        #[test]
        fn torn_frames_never_decode_partially(msg in arb_message(), frac in 0.0f64..1.0) {
            let frame = encode_frame(&msg);
            let cut = ((frame.len() - 1) as f64 * frac) as usize;
            let mut r = FrameReader::new();
            r.extend(&frame[..cut]);
            prop_assert_eq!(r.next_message().unwrap(), None);
        }

        /// A single bit flip anywhere in a frame is detected: the reader
        /// either errors or keeps waiting — it NEVER emits a decoded
        /// message from a corrupted frame.
        #[test]
        fn bit_flips_never_produce_a_message(
            msg in arb_message(),
            byte_frac in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let mut frame = encode_frame(&msg);
            let idx = ((frame.len() - 1) as f64 * byte_frac) as usize;
            frame[idx] ^= 1 << bit;
            let mut r = FrameReader::new();
            r.extend(&frame);
            let first = r.next_message();
            prop_assert!(
                !matches!(first, Ok(Some(_))),
                "flipped bit {bit} of byte {idx} still decoded: {first:?}"
            );
        }

        /// Random garbage never panics the reader.
        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut r = FrameReader::new();
            r.extend(&bytes);
            while let Ok(Some(_)) = r.next_message() {}
        }
    }
}
