//! Shared configuration types for the streaming layer: typed construction
//! errors and the overload policy vocabulary used by
//! [`crate::supervisor::SupervisedParseService`] and surfaced through the
//! `monilog` CLI.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// A structurally invalid streaming configuration.
///
/// Construction-time validation errors: services return these instead of
/// panicking so deployments can reject bad configs at the edge (CLI flag
/// parsing, config files) with a message instead of a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A sharded component needs at least one shard.
    ZeroShards,
    /// Bounded queues need capacity for at least one item.
    ZeroCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => f.write_str("need at least one shard"),
            ConfigError::ZeroCapacity => f.write_str("queues need capacity for at least one item"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// What `submit()` does when the pipeline is saturated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OverloadPolicy {
    /// Block until space frees up — end-to-end backpressure, the historical
    /// behaviour. With a submit deadline configured, blocks at most that
    /// long and then reports the deadline.
    #[default]
    Block,
    /// Drop the line and account it to the reserved catch-all template
    /// ([`crate::supervisor::CATCH_ALL_TEMPLATE_ID`]): downstream detectors
    /// still see *that* load arrived, just not what it said.
    ShedToCatchAll,
    /// Divert the line to the dead-letter queue with an overload marker so
    /// it can be replayed once the pipeline catches up.
    DeadLetter,
}

impl OverloadPolicy {
    /// Parse a CLI-style policy name (`block` | `shed` | `dead-letter`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(OverloadPolicy::Block),
            "shed" => Ok(OverloadPolicy::ShedToCatchAll),
            "dead-letter" => Ok(OverloadPolicy::DeadLetter),
            other => Err(format!(
                "unknown overload policy {other:?} (expected block, shed, or dead-letter)"
            )),
        }
    }

    /// The CLI-style name (inverse of [`OverloadPolicy::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::ShedToCatchAll => "shed",
            OverloadPolicy::DeadLetter => "dead-letter",
        }
    }
}

impl fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Router batch-flush tuning for [`crate::service::ShardedParseService`]
/// (surfaced on the CLI as `--batch-lines` / `--batch-deadline-ms`).
///
/// The router accumulates routed lines per shard and flushes a shard's
/// buffer when it reaches `max_lines` or has sat idle past `deadline`.
/// Bigger batches amortize transfer cost (throughput); a shorter deadline
/// caps the latency a partial batch can add.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Lines the router accumulates per shard before flushing (clamped to
    /// queue capacity by the service so batching never weakens
    /// backpressure). Must be non-zero.
    pub max_lines: usize,
    /// How long a partial shard buffer may sit while the input is idle.
    pub deadline: Duration,
    /// Pin shard workers thread-per-core (best effort; see
    /// [`crate::affinity`]).
    pub pin_workers: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // Mirrors `service::{MAX_BATCH, BATCH_FLUSH_INTERVAL}`, the
        // historical hard-coded values.
        BatchConfig {
            max_lines: 64,
            deadline: Duration::from_millis(1),
            pin_workers: true,
        }
    }
}

impl BatchConfig {
    /// CLI constructor: `--batch-lines` / `--batch-deadline-ms` values.
    pub fn new(max_lines: usize, deadline_ms: u64) -> Result<Self, ConfigError> {
        if max_lines == 0 {
            return Err(ConfigError::ZeroCapacity);
        }
        Ok(BatchConfig {
            max_lines,
            deadline: Duration::from_millis(deadline_ms),
            ..BatchConfig::default()
        })
    }
}

/// Retry schedule for a line whose parse attempt panicked: exponential
/// backoff with deterministic per-line jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts after the first failure before the line is quarantined.
    pub max_retries: u32,
    /// Backoff before retry `k` (1-based) is `base * 2^(k-1)` plus jitter.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (1-based), jittered by up to
    /// +50% keyed on `seq` so co-failing lines don't retry in lockstep.
    pub fn backoff(&self, attempt: u32, seq: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        // SplitMix64-style scramble of (seq, attempt) → jitter fraction.
        let mut z = seq
            .wrapping_add(attempt as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let jitter_num = (z >> 32) % 512; // 0..512 of 1024 → up to +50%
        capped + capped.mul_f64(jitter_num as f64 / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [
            OverloadPolicy::Block,
            OverloadPolicy::ShedToCatchAll,
            OverloadPolicy::DeadLetter,
        ] {
            assert_eq!(OverloadPolicy::parse(p.name()), Ok(p));
        }
        assert!(OverloadPolicy::parse("drop-everything").is_err());
    }

    #[test]
    fn config_errors_have_messages() {
        assert!(ConfigError::ZeroShards.to_string().contains("shard"));
        assert!(ConfigError::ZeroCapacity.to_string().contains("capacity"));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let r = RetryPolicy {
            max_retries: 8,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        };
        let b1 = r.backoff(1, 7);
        let b3 = r.backoff(3, 7);
        let b7 = r.backoff(7, 7);
        assert!(b1 >= Duration::from_millis(2));
        assert!(b1 <= Duration::from_millis(3));
        assert!(b3 >= Duration::from_millis(8));
        // Cap plus at most +50% jitter.
        assert!(b7 <= Duration::from_millis(30));
        // Deterministic per (attempt, seq).
        assert_eq!(r.backoff(2, 9), r.backoff(2, 9));
    }
}
