//! Atomic, generational checkpoint persistence.
//!
//! Each checkpoint is a [`CheckpointManifest`] (versioned, CRC-trailed —
//! see `monilog_model::checkpoint`) written as
//! `checkpoint-{generation:020}.ckpt` via temp-file + fsync + atomic
//! rename, so a crash mid-write can never damage a committed generation.
//! The previous generation is kept as a fallback: if the newest file fails
//! validation (torn rename target on exotic filesystems, bit rot), load
//! steps back one generation instead of failing recovery.

use super::DurabilityError;
use monilog_model::CheckpointManifest;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How many committed generations stay on disk.
const KEEP_GENERATIONS: usize = 2;

/// A checkpoint read back from disk.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    pub manifest: CheckpointManifest,
    /// True when the newest generation was corrupt and an older one was
    /// used — worth surfacing to the operator even though recovery
    /// succeeded (the journal suffix since that older checkpoint replays).
    pub fell_back: bool,
}

/// The on-disk checkpoint directory.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// Commit a manifest as its generation's file: write `.tmp`, fsync,
    /// rename into place, fsync the directory, then drop generations
    /// beyond the retention window. Returns the committed path.
    pub fn commit(&self, manifest: &CheckpointManifest) -> Result<PathBuf, DurabilityError> {
        let final_path = self.dir.join(checkpoint_name(manifest.generation));
        let tmp_path = final_path.with_extension("ckpt.tmp");
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&manifest.encode())?;
            f.sync_data()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        let mut gens = self.generations()?;
        while gens.len() > KEEP_GENERATIONS {
            let old = gens.remove(0);
            fs::remove_file(self.dir.join(checkpoint_name(old)))?;
        }
        Ok(final_path)
    }

    /// Committed generations, oldest first. Leftover `.tmp` files (crash
    /// mid-commit) are ignored.
    pub fn generations(&self) -> Result<Vec<u64>, DurabilityError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(g) = name
                .strip_prefix("checkpoint-")
                .and_then(|r| r.strip_suffix(".ckpt"))
                .and_then(|g| g.parse::<u64>().ok())
            {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Load the newest valid checkpoint. `Ok(None)` means a fresh start
    /// (no generations on disk); [`DurabilityError::AllCheckpointsCorrupt`]
    /// means state exists but none of it validates.
    pub fn load_latest(&self) -> Result<Option<LoadedCheckpoint>, DurabilityError> {
        let gens = self.generations()?;
        if gens.is_empty() {
            return Ok(None);
        }
        for (tried, g) in gens.iter().rev().enumerate() {
            let bytes = match fs::read(self.dir.join(checkpoint_name(*g))) {
                Ok(b) => b,
                Err(_) => continue,
            };
            if let Ok(manifest) = CheckpointManifest::decode(&bytes) {
                return Ok(Some(LoadedCheckpoint {
                    manifest,
                    fell_back: tried > 0,
                }));
            }
        }
        Err(DurabilityError::AllCheckpointsCorrupt)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn checkpoint_name(generation: u64) -> String {
    format!("checkpoint-{generation:020}.ckpt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_model::SourceId;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("monilog-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(generation: u64, last_seq: u64) -> CheckpointManifest {
        let mut m = CheckpointManifest {
            generation,
            created_ms: 1_000 + generation,
            ..CheckpointManifest::default()
        };
        m.set_position(SourceId(0), last_seq);
        m.set_section("pipeline", vec![generation as u8; 64]);
        m
    }

    #[test]
    fn commit_load_round_trips_and_retains_two_generations() {
        let dir = tmp_dir("retain");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none(), "fresh start");
        for g in 1..=5u64 {
            store.commit(&manifest(g, g * 10)).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        let loaded = store.load_latest().unwrap().unwrap();
        assert!(!loaded.fell_back);
        assert_eq!(loaded.manifest.generation, 5);
        assert_eq!(loaded.manifest.position(SourceId(0)), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_one_generation() {
        let dir = tmp_dir("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        store.commit(&manifest(1, 10)).unwrap();
        store.commit(&manifest(2, 20)).unwrap();
        let newest = dir.join(checkpoint_name(2));
        let full = fs::read(&newest).unwrap();
        // Every truncation and a bit flip anywhere: load never panics and
        // always lands on generation 1.
        for cut in 0..full.len() {
            fs::write(&newest, &full[..cut]).unwrap();
            let loaded = store.load_latest().unwrap().unwrap();
            assert!(loaded.fell_back, "cut {cut}");
            assert_eq!(loaded.manifest.generation, 1);
        }
        for byte in 0..full.len() {
            let mut damaged = full.clone();
            damaged[byte] ^= 0x10;
            fs::write(&newest, &damaged).unwrap();
            let loaded = store.load_latest().unwrap().unwrap();
            assert!(loaded.fell_back, "byte {byte}");
            assert_eq!(loaded.manifest.generation, 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let dir = tmp_dir("allcorrupt");
        let store = CheckpointStore::open(&dir).unwrap();
        store.commit(&manifest(1, 10)).unwrap();
        store.commit(&manifest(2, 20)).unwrap();
        for g in [1u64, 2] {
            fs::write(dir.join(checkpoint_name(g)), b"garbage").unwrap();
        }
        assert!(matches!(
            store.load_latest(),
            Err(DurabilityError::AllCheckpointsCorrupt)
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_files_are_ignored() {
        let dir = tmp_dir("tmpfiles");
        let store = CheckpointStore::open(&dir).unwrap();
        store.commit(&manifest(3, 30)).unwrap();
        fs::write(
            dir.join("checkpoint-00000000000000000004.ckpt.tmp"),
            b"half",
        )
        .unwrap();
        let loaded = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.manifest.generation, 3);
        assert_eq!(store.generations().unwrap(), vec![3]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
