//! Persistent dead-letter log: quarantined lines as replayable JSONL.
//!
//! The in-memory dead-letter queue (see [`crate::supervisor`]) vanishes
//! with the process; under `--state-dir` every quarantined line is also
//! appended here, one JSON object per line, so poison lines survive
//! restarts and can be replayed after a parser fix. The file is
//! size-capped via [`RotatingLog`]: past the cap it rotates to `<name>.1`
//! (older generations shift up, a bounded number are retained), and every
//! byte deleted by rotation is reported back so the caller can account it
//! (`dlq_bytes_dropped`). Loading tolerates a torn final line — a crash
//! mid-append loses at most that line.

use super::rotate::RotatingLog;
use super::DurabilityError;
use crate::supervisor::{DeadLetter, FailureReason};
use monilog_model::trace::json_string;
use std::path::{Path, PathBuf};

/// Rotated generations kept by default (matches the old one-previous-file
/// behaviour).
pub const DEFAULT_DLQ_RETAIN: usize = 1;

/// Append-side handle to the JSONL dead-letter file.
pub struct DeadLetterLog {
    file: RotatingLog,
}

impl DeadLetterLog {
    /// Open (creating parent directories if needed) the log at `path`,
    /// retaining [`DEFAULT_DLQ_RETAIN`] rotated generations.
    pub fn open(
        path: impl Into<PathBuf>,
        cap_bytes: u64,
    ) -> Result<DeadLetterLog, DurabilityError> {
        Self::open_with_retain(path, cap_bytes, DEFAULT_DLQ_RETAIN)
    }

    /// Open with an explicit retained-generation cap.
    pub fn open_with_retain(
        path: impl Into<PathBuf>,
        cap_bytes: u64,
        retain: usize,
    ) -> Result<DeadLetterLog, DurabilityError> {
        Ok(DeadLetterLog {
            file: RotatingLog::open(path, cap_bytes, retain)?,
        })
    }

    /// Append letters, rotating first if the file is over its cap. Each
    /// append is fsync'd — quarantine is rare and must survive a crash.
    /// Returns the bytes rotation deleted during this call (0 almost
    /// always); callers surface it as the `dlq_bytes_dropped` counter.
    pub fn append(&self, letters: &[DeadLetter]) -> Result<u64, DurabilityError> {
        if letters.is_empty() {
            return Ok(0);
        }
        let mut buf = String::new();
        for l in letters {
            buf.push_str(&render(l));
            buf.push('\n');
        }
        self.file.append_text(&buf)
    }

    /// Everything replayable: retained generations oldest-first, then the
    /// current file. Unparseable lines — a torn tail, hand-edited damage —
    /// are skipped, never fatal.
    pub fn load(&self) -> Result<Vec<DeadLetter>, DurabilityError> {
        let text = self.file.load_text()?;
        Ok(text.lines().filter_map(parse).collect())
    }

    /// The current (non-rotated) file path.
    pub fn path(&self) -> &Path {
        self.file.path()
    }
}

fn reason_str(reason: FailureReason) -> &'static str {
    match reason {
        FailureReason::Panic => "panic",
        FailureReason::Overload => "overload",
        FailureReason::WorkerCrash => "worker_crash",
    }
}

fn render(l: &DeadLetter) -> String {
    let shard = match l.shard {
        Some(s) => s.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"seq\":{},\"shard\":{},\"line\":{},\"reason\":\"{}\",\"attempts\":{}}}",
        l.seq,
        shard,
        json_string(&l.line),
        reason_str(l.reason),
        l.attempts
    )
}

/// Parse one rendered line back. Fields are consumed in writing order, so
/// a `line` body containing `"reason":` look-alikes can't confuse it.
fn parse(text: &str) -> Option<DeadLetter> {
    let mut rest = text.trim();
    rest = rest.strip_prefix('{')?;
    rest = rest.strip_prefix("\"seq\":")?;
    let (seq, r) = take_u64(rest)?;
    rest = r.strip_prefix(",\"shard\":")?;
    let shard = if let Some(r) = rest.strip_prefix("null") {
        rest = r;
        None
    } else {
        let (s, r) = take_u64(rest)?;
        rest = r;
        Some(s as usize)
    };
    rest = rest.strip_prefix(",\"line\":\"")?;
    let (line, r) = take_json_string(rest)?;
    rest = r.strip_prefix(",\"reason\":\"")?;
    let end = rest.find('"')?;
    let reason = match &rest[..end] {
        "panic" => FailureReason::Panic,
        "overload" => FailureReason::Overload,
        "worker_crash" => FailureReason::WorkerCrash,
        _ => return None,
    };
    rest = rest[end + 1..].strip_prefix(",\"attempts\":")?;
    let (attempts, r) = take_u64(rest)?;
    if r != "}" {
        return None;
    }
    Some(DeadLetter {
        seq,
        shard,
        line,
        reason,
        attempts: attempts as u32,
    })
}

fn take_u64(s: &str) -> Option<(u64, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    Some((s[..end].parse().ok()?, &s[end..]))
}

/// Consume a JSON string body (opening quote already stripped) up to its
/// closing quote, unescaping [`json_string`]'s escapes.
fn take_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            _ => out.push(c),
        }
    }
    None // unterminated: a torn tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::{self, OpenOptions};
    use std::io::Write;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("monilog-dlq-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("dead_letters.jsonl")
    }

    fn letter(seq: u64, line: &str) -> DeadLetter {
        DeadLetter {
            seq,
            shard: if seq.is_multiple_of(2) {
                Some(seq as usize % 4)
            } else {
                None
            },
            line: line.to_string(),
            reason: match seq % 3 {
                0 => FailureReason::Panic,
                1 => FailureReason::Overload,
                _ => FailureReason::WorkerCrash,
            },
            attempts: seq as u32 % 5,
        }
    }

    #[test]
    fn append_load_round_trips_including_nasty_lines() {
        let path = tmp_path("roundtrip");
        let log = DeadLetterLog::open(&path, 1 << 20).unwrap();
        let letters: Vec<DeadLetter> = vec![
            letter(1, "plain poison"),
            letter(2, "embedded \"quotes\" and \\backslashes\\"),
            letter(3, "looks like json: {\"reason\":\"panic\",\"attempts\":9}"),
            letter(4, "newline\nand\ttab and control\u{1}char"),
            letter(5, "unicode: héllo wörld — ☃"),
        ];
        log.append(&letters).unwrap();
        assert_eq!(log.load().unwrap(), letters);
        // A second process appends more; both batches load.
        let log2 = DeadLetterLog::open(&path, 1 << 20).unwrap();
        log2.append(&[letter(6, "later")]).unwrap();
        assert_eq!(log2.load().unwrap().len(), 6);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_and_garbage_lines_are_skipped() {
        let path = tmp_path("torn");
        let log = DeadLetterLog::open(&path, 1 << 20).unwrap();
        log.append(&[letter(1, "ok one"), letter(2, "ok two")])
            .unwrap();
        // Simulate a crash mid-append: half a record, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":3,\"shard\":null,\"line\":\"cut of")
            .unwrap();
        drop(f);
        let loaded = log.load().unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].line, "ok two");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn rotation_caps_disk_and_counts_dropped_bytes() {
        let path = tmp_path("rotate");
        let log = DeadLetterLog::open(&path, 200).unwrap();
        let mut dropped = 0;
        for batch in 0..20u64 {
            dropped += log
                .append(&[letter(
                    batch,
                    &format!("poison batch {batch} {}", "x".repeat(40)),
                )])
                .unwrap();
        }
        let current = fs::metadata(&path).unwrap().len();
        assert!(current <= 400, "current file stays near the cap: {current}");
        assert!(
            path.with_file_name("dead_letters.jsonl.1").exists(),
            "one rotated generation retained"
        );
        assert!(dropped > 0, "rotation past the cap reported dropped bytes");
        let loaded = log.load().unwrap();
        assert!(!loaded.is_empty());
        assert!(loaded.len() < 20, "rotation dropped the oldest records");
        let last = loaded.last().unwrap();
        assert_eq!(last.seq, 19);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn retain_cap_bounds_generations() {
        let path = tmp_path("retain");
        let log = DeadLetterLog::open_with_retain(&path, 150, 3).unwrap();
        for batch in 0..40u64 {
            log.append(&[letter(batch, &format!("p{batch} {}", "y".repeat(40)))])
                .unwrap();
        }
        for g in 1..=3 {
            assert!(
                path.with_file_name(format!("dead_letters.jsonl.{g}"))
                    .exists(),
                "generation {g} retained"
            );
        }
        assert!(!path.with_file_name("dead_letters.jsonl.4").exists());
        // Ordering across generations holds: seqs load ascending.
        let seqs: Vec<u64> = log.load().unwrap().iter().map(|l| l.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert_eq!(*seqs.last().unwrap(), 39);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
