//! The write-ahead ingest journal.
//!
//! One append-only segment file per source, named
//! `src{source}-{base_seq:020}.wal`, where `base_seq` is the first
//! sequence number the segment holds. A segment starts with a 16-byte
//! header (`MLWJ`, version, source id, base seq) followed by frames:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [seq: u64 LE][line bytes (UTF-8)]
//! ```
//!
//! The durability contract is *journal first, apply second*: the caller
//! appends a line and fsyncs (group commit, [`JournalConfig::fsync_interval_ms`])
//! before feeding it to the pipeline. A crash can therefore lose only
//! lines that were never applied — and those are re-read from the input —
//! while every line the pipeline acted on is replayable.
//!
//! Segments rotate at [`JournalConfig::segment_bytes`]; replay tolerates a
//! truncated or corrupt tail (the torn final frame of a crash) by treating
//! the first bad frame as end-of-segment. [`Journal::prune`] deletes
//! segments fully covered by a checkpoint position.

use super::DurabilityError;
use monilog_model::{crc32, JournalPosition, RawLog, SourceId};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEGMENT_MAGIC: [u8; 4] = *b"MLWJ";
const SEGMENT_VERSION: u16 = 1;
const SEGMENT_HEADER_LEN: usize = 16;
/// Frames larger than this are rejected as corruption rather than
/// allocated — no legitimate log line approaches it.
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Journal tuning knobs (`--journal-fsync-ms`, `--journal-segment-bytes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Group-commit interval: appends are fsync'd when this many
    /// milliseconds have passed since the last sync. `0` syncs on every
    /// append (maximum durability, minimum throughput).
    pub fsync_interval_ms: u64,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            fsync_interval_ms: 50,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

struct SegmentWriter {
    file: BufWriter<File>,
    bytes: u64,
}

/// The append side of the write-ahead journal.
pub struct Journal {
    dir: PathBuf,
    config: JournalConfig,
    writers: HashMap<u16, SegmentWriter>,
    dirty: bool,
    last_sync: Instant,
    appended_bytes: u64,
}

impl Journal {
    /// Open (creating if needed) the journal directory for appending.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: JournalConfig,
    ) -> Result<Journal, DurabilityError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Journal {
            dir,
            config,
            writers: HashMap::new(),
            dirty: false,
            last_sync: Instant::now(),
            appended_bytes: 0,
        })
    }

    /// Append one raw line; returns the bytes written (for the
    /// `journal_bytes` metric). The frame is buffered — it is durable only
    /// after the next [`Journal::sync`].
    pub fn append(&mut self, raw: &RawLog) -> Result<u64, DurabilityError> {
        let rotate = self
            .writers
            .get(&raw.source.0)
            .is_some_and(|w| w.bytes >= self.config.segment_bytes);
        if rotate {
            let mut w = self.writers.remove(&raw.source.0).expect("checked above");
            w.file.flush()?;
            w.file.get_ref().sync_data()?;
        }
        if !self.writers.contains_key(&raw.source.0) {
            let path = self.dir.join(segment_name(raw.source.0, raw.seq));
            // A crash can leave a segment that was created but never got a
            // durable frame; a restart continuing at the same seq may then
            // collide with its name. Reusing it is safe exactly when it
            // holds nothing replayable.
            if path.exists() {
                if !read_segment(&path)?.is_empty() {
                    return Err(DurabilityError::Corrupt(
                        "segment name collision with replayable frames",
                    ));
                }
                fs::remove_file(&path)?;
            }
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            let mut writer = BufWriter::new(file);
            let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
            header.extend_from_slice(&SEGMENT_MAGIC);
            header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
            header.extend_from_slice(&raw.source.0.to_le_bytes());
            header.extend_from_slice(&raw.seq.to_le_bytes());
            writer.write_all(&header)?;
            self.writers.insert(
                raw.source.0,
                SegmentWriter {
                    file: writer,
                    bytes: SEGMENT_HEADER_LEN as u64,
                },
            );
        }
        let writer = self.writers.get_mut(&raw.source.0).expect("just inserted");
        let mut payload = Vec::with_capacity(8 + raw.line.len());
        payload.extend_from_slice(&raw.seq.to_le_bytes());
        payload.extend_from_slice(raw.line.as_bytes());
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        writer.file.write_all(&frame)?;
        writer.bytes += frame.len() as u64;
        self.dirty = true;
        self.appended_bytes += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Whether the group-commit interval has elapsed since the last sync.
    pub fn sync_due(&self) -> bool {
        self.dirty && self.last_sync.elapsed().as_millis() as u64 >= self.config.fsync_interval_ms
    }

    /// Flush and fsync every dirty segment. After this returns, every
    /// appended frame survives a crash.
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        if self.dirty {
            for w in self.writers.values_mut() {
                w.file.flush()?;
                w.file.get_ref().sync_data()?;
            }
            self.dirty = false;
        }
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Total bytes appended since open.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Replay every decodable line with `seq` greater than its source's
    /// checkpointed position, in `(source, seq)` order. Sources without a
    /// position replay from the start. A torn or corrupt frame ends its
    /// segment (crash-tail tolerance) — it never fails the replay.
    pub fn replay_after(
        dir: &Path,
        positions: &[JournalPosition],
    ) -> Result<Vec<RawLog>, DurabilityError> {
        let mut out = Vec::new();
        for (path, _, _) in sorted_segments(dir)? {
            for raw in read_segment(&path)? {
                let applied = positions
                    .iter()
                    .find(|p| p.source == raw.source)
                    .map_or(0, |p| p.last_seq);
                if raw.seq > applied {
                    out.push(raw);
                }
            }
        }
        out.sort_by_key(|r| (r.source.0, r.seq));
        Ok(out)
    }

    /// Delete segments whose every line is at or below the checkpointed
    /// position — i.e. the *next* segment for the source starts at or
    /// before `last_seq + 1`. The newest segment per source is always
    /// kept (it may still be open for appending). Returns the number of
    /// segments removed.
    pub fn prune(&mut self, positions: &[JournalPosition]) -> Result<usize, DurabilityError> {
        let segments = sorted_segments(&self.dir)?;
        let mut removed = 0;
        for p in positions {
            let of_source: Vec<_> = segments
                .iter()
                .filter(|(_, s, _)| *s == p.source.0)
                .collect();
            for pair in of_source.windows(2) {
                let (path, _, _) = pair[0];
                let (_, _, next_base) = pair[1];
                if *next_base <= p.last_seq.saturating_add(1) {
                    fs::remove_file(path)?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

fn segment_name(source: u16, base_seq: u64) -> String {
    format!("src{source}-{base_seq:020}.wal")
}

/// `(path, source, base_seq)` for every segment file, sorted by
/// `(source, base_seq)`. Files that don't match the naming scheme are
/// ignored (they're not ours).
fn sorted_segments(dir: &Path) -> Result<Vec<(PathBuf, u16, u64)>, DurabilityError> {
    let mut segments = Vec::new();
    if !dir.exists() {
        return Ok(segments);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".wal") else {
            continue;
        };
        let Some(rest) = stem.strip_prefix("src") else {
            continue;
        };
        let Some((source, base)) = rest.split_once('-') else {
            continue;
        };
        if let (Ok(source), Ok(base)) = (source.parse::<u16>(), base.parse::<u64>()) {
            segments.push((path, source, base));
        }
    }
    segments.sort_by_key(|(_, s, b)| (*s, *b));
    Ok(segments)
}

/// Decode one segment, stopping at the first torn or corrupt frame.
fn read_segment(path: &Path) -> Result<Vec<RawLog>, DurabilityError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut out = Vec::new();
    if bytes.len() < SEGMENT_HEADER_LEN
        || bytes[..4] != SEGMENT_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != SEGMENT_VERSION
    {
        // A header torn mid-write (or an alien file): nothing recoverable,
        // but not an error — the segment simply has no replayable frames.
        return Ok(out);
    }
    let source = SourceId(u16::from_le_bytes([bytes[6], bytes[7]]));
    let mut at = SEGMENT_HEADER_LEN;
    // A torn length/crc prefix ends the journal.
    while let Some(frame_header) = bytes.get(at..at + 8) {
        let len = u32::from_le_bytes(frame_header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame_header[4..].try_into().expect("4 bytes"));
        if !(8..=MAX_FRAME_BYTES).contains(&len) {
            break; // corrupt length: end of journal
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len as usize) else {
            break; // torn payload: end of journal
        };
        if crc32(payload) != crc {
            break; // bit-flipped frame: end of journal
        }
        let seq = u64::from_le_bytes(payload[..8].try_into().expect("len >= 8"));
        let Ok(line) = std::str::from_utf8(&payload[8..]) else {
            break; // CRC passed but text is invalid: treat as tail damage
        };
        out.push(RawLog::new(source, seq, line));
        at += 8 + len as usize;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("monilog-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn raw(source: u16, seq: u64, line: &str) -> RawLog {
        RawLog::new(SourceId(source), seq, line)
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let dir = tmp_dir("roundtrip");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 1..=50u64 {
            j.append(&raw(0, i, &format!("line {i}"))).unwrap();
            j.append(&raw(1, i, &format!("other {i}"))).unwrap();
        }
        j.sync().unwrap();
        assert!(j.appended_bytes() > 0);
        let all = Journal::replay_after(&dir, &[]).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all[0], raw(0, 1, "line 1"));
        assert_eq!(all[49], raw(0, 50, "line 50"));
        assert_eq!(all[99], raw(1, 50, "other 50"));
        // Positions filter per source.
        let suffix = Journal::replay_after(
            &dir,
            &[
                JournalPosition {
                    source: SourceId(0),
                    last_seq: 48,
                },
                JournalPosition {
                    source: SourceId(1),
                    last_seq: 50,
                },
            ],
        )
        .unwrap();
        assert_eq!(
            suffix,
            vec![raw(0, 49, "line 49"), raw(0, 50, "line 50")],
            "only unapplied lines replay"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_prune() {
        let dir = tmp_dir("rotate");
        let config = JournalConfig {
            segment_bytes: 256,
            ..JournalConfig::default()
        };
        let mut j = Journal::open(&dir, config).unwrap();
        for i in 1..=40u64 {
            j.append(&raw(0, i, &format!("a fairly long log line number {i}")))
                .unwrap();
        }
        j.sync().unwrap();
        let segments = sorted_segments(&dir).unwrap();
        assert!(segments.len() > 2, "rotation must split: {segments:?}");
        // Everything replays across the rotation boundary.
        let all = Journal::replay_after(&dir, &[]).unwrap();
        assert_eq!(all.len(), 40);
        // Prune everything covered by a checkpoint at seq 40: all but the
        // newest segment goes away, and replay still works.
        let removed = j
            .prune(&[JournalPosition {
                source: SourceId(0),
                last_seq: 40,
            }])
            .unwrap();
        assert_eq!(removed, segments.len() - 1);
        let after = Journal::replay_after(
            &dir,
            &[JournalPosition {
                source: SourceId(0),
                last_seq: 40,
            }],
        )
        .unwrap();
        assert!(after.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_ends_replay_cleanly() {
        let dir = tmp_dir("torn");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 1..=10u64 {
            j.append(&raw(0, i, &format!("line {i}"))).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let (path, _, _) = sorted_segments(&dir).unwrap().remove(0);
        let full = fs::read(&path).unwrap();
        // Every possible truncation point yields a clean prefix replay.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let replayed = Journal::replay_after(&dir, &[]).unwrap();
            assert!(replayed.len() <= 10);
            for (i, r) in replayed.iter().enumerate() {
                assert_eq!(r.seq, i as u64 + 1, "replay is a prefix");
            }
        }
        fs::write(&path, &full).unwrap();
        assert_eq!(Journal::replay_after(&dir, &[]).unwrap().len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_never_panic_and_never_fabricate() {
        let dir = tmp_dir("flips");
        let mut j = Journal::open(&dir, JournalConfig::default()).unwrap();
        for i in 1..=8u64 {
            j.append(&raw(0, i, &format!("stable line {i}"))).unwrap();
        }
        j.sync().unwrap();
        drop(j);
        let (path, _, _) = sorted_segments(&dir).unwrap().remove(0);
        let full = fs::read(&path).unwrap();
        for byte in 0..full.len() {
            for bit in [0, 3, 7] {
                let mut damaged = full.clone();
                damaged[byte] ^= 1 << bit;
                fs::write(&path, &damaged).unwrap();
                let replayed = Journal::replay_after(&dir, &[]).unwrap();
                // A flip can only shorten the replay or alter nothing
                // (flips inside a line body are caught by the CRC, so any
                // surviving record is byte-identical to what was written).
                assert!(replayed.len() <= 8);
                for r in &replayed {
                    assert_eq!(r.line, format!("stable line {}", r.seq));
                }
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_interval_gates_sync_due() {
        let dir = tmp_dir("group");
        let mut j = Journal::open(
            &dir,
            JournalConfig {
                fsync_interval_ms: 10_000,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        assert!(!j.sync_due(), "clean journal never due");
        j.append(&raw(0, 1, "x")).unwrap();
        assert!(!j.sync_due(), "interval has not elapsed");
        let mut eager = Journal::open(
            &dir,
            JournalConfig {
                fsync_interval_ms: 0,
                ..JournalConfig::default()
            },
        )
        .unwrap();
        eager.append(&raw(1, 1, "y")).unwrap();
        assert!(eager.sync_due(), "interval 0 is always due when dirty");
        eager.sync().unwrap();
        assert!(!eager.sync_due(), "sync clears dirtiness");
        fs::remove_dir_all(&dir).unwrap();
    }
}
