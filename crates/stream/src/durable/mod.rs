//! Durable state: the write-ahead ingest journal, the checkpoint store,
//! the persistent dead-letter log, and process shutdown signalling.
//!
//! Together these give the streaming pipeline crash recovery across
//! process restarts (ISSUE: "kill -9 at any point; restart loses nothing
//! that was reported and reports nothing twice"):
//!
//! - [`Journal`] — per-source append-only segment files of CRC-framed raw
//!   lines, fsync'd on a group-commit interval. Lines are journaled
//!   *before* they are applied to the pipeline, so anything the pipeline
//!   ever saw is re-readable after a crash.
//! - [`CheckpointStore`] — atomic (temp-file + rename) versioned snapshots
//!   of the full pipeline state, previous generation kept as fallback; a
//!   torn or bit-flipped newest checkpoint falls back one generation
//!   instead of failing recovery.
//! - [`DeadLetterLog`] — quarantined poison lines persisted as replayable
//!   size-capped JSONL, reloaded on restart so quarantine survives crashes.
//! - [`signal`] — SIGTERM/SIGINT latching for graceful drain: quiesce,
//!   final checkpoint, clean exit (a restart then replays zero lines).
//!
//! All failure paths are typed [`DurabilityError`]s — corrupt state never
//! panics the recovery path.

pub mod checkpoint;
pub mod dlq;
pub mod journal;
pub mod rotate;
pub mod signal;

pub use checkpoint::{CheckpointStore, LoadedCheckpoint};
pub use dlq::DeadLetterLog;
pub use journal::{Journal, JournalConfig};
pub use rotate::RotatingLog;
pub use signal::{
    install_reload_handler, install_shutdown_handler, reset_shutdown_flag, shutdown_requested,
    take_reload_request, FORCED_EXIT_CODE,
};

use monilog_model::CodecError;
use std::fmt;

/// Why a durability operation failed. Recovery code matches on this to
/// distinguish "no state yet" (fresh start) from "state exists but is
/// unusable" (operator attention).
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// Persisted bytes failed validation (checksum, magic, structure).
    Corrupt(&'static str),
    /// A codec-level decode failure inside otherwise-framed state.
    Codec(CodecError),
    /// Every checkpoint generation on disk failed validation.
    AllCheckpointsCorrupt,
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Corrupt(what) => write!(f, "corrupt durable state: {what}"),
            DurabilityError::Codec(e) => write!(f, "durable state decode error: {e}"),
            DurabilityError::AllCheckpointsCorrupt => {
                write!(f, "every checkpoint generation failed validation")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<std::io::Error> for DurabilityError {
    fn from(e: std::io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Codec(e)
    }
}
