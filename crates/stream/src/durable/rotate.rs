//! Size-capped file rotation with a retained-generation cap.
//!
//! Both the dead-letter queue and the delivery spill file are append-only
//! line files that must not grow without bound. [`RotatingLog`] gives them
//! one rotation policy: when the current file exceeds `rotate_bytes` it is
//! renamed to `<name>.1` (older generations shift to `.2`, `.3`, …), and
//! generations past `retain` are deleted. Deletion is the only place data
//! is lost, and it is *accounted*: every append reports how many bytes
//! rotation dropped so callers can surface the loss as a counter instead
//! of silently truncating history.

use super::DurabilityError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// An append-only text file that rotates by size, keeping a bounded number
/// of previous generations.
#[derive(Debug)]
pub struct RotatingLog {
    path: PathBuf,
    rotate_bytes: u64,
    retain: usize,
}

impl RotatingLog {
    /// Open (creating parent directories if needed) the log at `path`.
    /// `rotate_bytes` is the size past which the current file rotates;
    /// `retain` is how many rotated generations survive (0 = rotation
    /// deletes immediately).
    pub fn open(
        path: impl Into<PathBuf>,
        rotate_bytes: u64,
        retain: usize,
    ) -> Result<RotatingLog, DurabilityError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        Ok(RotatingLog {
            path,
            rotate_bytes,
            retain,
        })
    }

    /// Path of rotated generation `n` (1 = newest rotated).
    fn generation(&self, n: usize) -> PathBuf {
        let name = self
            .path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.path.with_file_name(format!("{name}.{n}"))
    }

    /// Append `text` (caller includes trailing newlines), rotating first if
    /// the current file is over its cap. Returns the bytes deleted by
    /// rotation during this call (0 almost always). Appends are fsync'd.
    pub fn append_text(&self, text: &str) -> Result<u64, DurabilityError> {
        if text.is_empty() {
            return Ok(0);
        }
        let mut dropped = 0;
        let size = fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        if size > self.rotate_bytes {
            dropped = self.rotate()?;
        }
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
        Ok(dropped)
    }

    /// Shift generations up by one and retire the oldest. Returns bytes
    /// deleted.
    fn rotate(&self) -> Result<u64, DurabilityError> {
        let mut dropped = 0;
        // Retire everything at or past the cap (normally just one file,
        // but a lowered `retain` cleans up extras too).
        let mut n = self.retain.max(1);
        loop {
            let p = self.generation(n);
            match fs::metadata(&p) {
                Ok(m) => {
                    dropped += m.len();
                    fs::remove_file(&p)?;
                }
                Err(_) if n > self.retain => break,
                Err(_) => {}
            }
            n += 1;
        }
        for k in (1..self.retain.max(1)).rev() {
            let from = self.generation(k);
            if from.exists() {
                fs::rename(&from, self.generation(k + 1))?;
            }
        }
        if self.retain == 0 {
            if let Ok(m) = fs::metadata(&self.path) {
                dropped += m.len();
            }
            fs::remove_file(&self.path)?;
        } else {
            fs::rename(&self.path, self.generation(1))?;
        }
        Ok(dropped)
    }

    /// Concatenated contents, oldest generation first, current file last.
    /// Missing or non-UTF-8 generations are skipped, never fatal.
    pub fn load_text(&self) -> Result<String, DurabilityError> {
        let mut out = String::new();
        let mut paths: Vec<PathBuf> = (1..=self.retain)
            .rev()
            .map(|n| self.generation(n))
            .collect();
        paths.push(self.path.clone());
        for p in paths {
            let Ok(mut f) = File::open(&p) else {
                continue;
            };
            let mut text = String::new();
            if f.read_to_string(&mut text).is_err() {
                continue; // non-UTF-8 damage: nothing salvageable here
            }
            out.push_str(&text);
        }
        Ok(out)
    }

    /// The current (non-rotated) file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes currently on disk across all generations.
    pub fn disk_bytes(&self) -> u64 {
        let mut total = fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        for n in 1..=self.retain {
            total += fs::metadata(self.generation(n))
                .map(|m| m.len())
                .unwrap_or(0);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("monilog-rotate-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("log.jsonl")
    }

    #[test]
    fn small_appends_never_rotate() {
        let path = tmp("small");
        let log = RotatingLog::open(&path, 1 << 20, 2).unwrap();
        for i in 0..10 {
            assert_eq!(log.append_text(&format!("line {i}\n")).unwrap(), 0);
        }
        let text = log.load_text().unwrap();
        assert_eq!(text.lines().count(), 10);
        assert!(text.starts_with("line 0"));
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn rotation_keeps_retain_generations_and_counts_dropped_bytes() {
        let path = tmp("retain");
        let log = RotatingLog::open(&path, 100, 2).unwrap();
        let mut dropped = 0;
        for i in 0..30 {
            dropped += log
                .append_text(&format!("payload {i:03} {}\n", "x".repeat(30)))
                .unwrap();
        }
        assert!(dropped > 0, "old generations were deleted");
        assert!(log.generation(1).exists());
        assert!(log.generation(2).exists());
        assert!(!log.generation(3).exists());
        // Disk usage is bounded: current + 2 generations, each near the cap.
        assert!(
            log.disk_bytes() <= 100 * 3 + 200,
            "bytes={}",
            log.disk_bytes()
        );
        // Newest data always survives; load is oldest-first.
        let text = log.load_text().unwrap();
        assert!(text
            .trim_end()
            .ends_with(&format!("payload 029 {}", "x".repeat(30))));
        let nums: Vec<u32> = text
            .lines()
            .map(|l| l.split_whitespace().nth(1).unwrap().parse().unwrap())
            .collect();
        let mut sorted = nums.clone();
        sorted.sort_unstable();
        assert_eq!(nums, sorted, "generations concatenate oldest-first");
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn retain_zero_drops_the_whole_file_on_rotation() {
        let path = tmp("zero");
        let log = RotatingLog::open(&path, 50, 0).unwrap();
        let mut dropped = 0;
        for i in 0..10 {
            dropped += log
                .append_text(&format!("entry {i} {}\n", "y".repeat(20)))
                .unwrap();
        }
        assert!(dropped > 0);
        assert!(!log.generation(1).exists());
        assert!(log.disk_bytes() <= 100);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn dropped_bytes_match_what_disk_lost() {
        let path = tmp("account");
        let log = RotatingLog::open(&path, 80, 1).unwrap();
        let mut written = 0u64;
        let mut dropped = 0u64;
        for i in 0..40 {
            let line = format!("row {i:02} {}\n", "z".repeat(10));
            written += line.len() as u64;
            dropped += log.append_text(&line).unwrap();
        }
        assert_eq!(log.disk_bytes(), written - dropped);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
