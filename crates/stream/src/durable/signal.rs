//! Graceful-shutdown signalling.
//!
//! SIGTERM and SIGINT set a process-wide latch; the ingestion loop polls
//! [`shutdown_requested`] between lines and, when set, quiesces: stops
//! reading input, syncs the journal, writes a final checkpoint, and exits
//! cleanly — so the next start replays zero journal lines. The handler
//! itself only stores an atomic counter (the only thing that's async-signal
//! safe); all real work happens on the main thread.
//!
//! **Second signal = immediate exit.** A drain over a large backlog can take
//! seconds; an operator (or init system) that signals again is saying "stop
//! now". The handler counts deliveries and, on the second one, calls
//! `_exit(130)` directly from signal context — async-signal-safe, no
//! destructors, no flushing. That is exactly the crash the WAL exists for:
//! the next start replays the journal from the last checkpoint, so the
//! forced exit loses nothing that was durably ingested.
//!
//! **SIGHUP = hot reload.** The classic daemon convention: SIGHUP latches
//! a separate counter that the monitor loop drains via
//! [`take_reload_request`] and answers by re-reading its config file into
//! a fresh [`crate::ops::ReloadableConfig`] snapshot — no restart, no
//! dropped lines. A SIGHUP never escalates to an exit.
//!
//! No libc crate: `signal(2)` / `_exit(2)` are declared directly. On
//! non-Unix targets installation is a no-op and drain must be requested
//! programmatically.

use std::sync::atomic::{AtomicU32, Ordering};

static SIGNAL_COUNT: AtomicU32 = AtomicU32::new(0);
static RELOAD_COUNT: AtomicU32 = AtomicU32::new(0);

/// Exit status for a forced (second-signal) shutdown: 128 + SIGINT, the
/// conventional "killed by Ctrl-C" status.
pub const FORCED_EXIT_CODE: i32 = 130;

#[cfg(unix)]
mod ffi {
    use std::sync::atomic::Ordering;

    const SIGHUP: i32 = 1;
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn latch(_signum: i32) {
        // fetch_add returns the previous count: 0 on the first signal
        // (request graceful drain), >=1 on any further signal (force exit).
        if super::SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst) >= 1 {
            unsafe { _exit(super::FORCED_EXIT_CODE) };
        }
    }

    extern "C" fn latch_reload(_signum: i32) {
        super::RELOAD_COUNT.fetch_add(1, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn _exit(status: i32) -> !;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, latch);
            signal(SIGINT, latch);
        }
    }

    pub fn install_reload() {
        unsafe {
            signal(SIGHUP, latch_reload);
        }
    }
}

/// Install the SIGTERM/SIGINT latch. Idempotent; call once near startup,
/// before the ingestion loop.
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    ffi::install();
}

/// Whether a shutdown signal has arrived since the last reset.
pub fn shutdown_requested() -> bool {
    SIGNAL_COUNT.load(Ordering::SeqCst) > 0
}

/// Clear the latch (tests, or a supervisor restarting the loop in-process).
/// Also resets the second-signal force-exit counter.
pub fn reset_shutdown_flag() {
    SIGNAL_COUNT.store(0, Ordering::SeqCst);
}

/// Install the SIGHUP hot-reload latch. Idempotent; default SIGHUP
/// disposition (terminate) is replaced, so a daemonized monitor survives
/// terminal hangups even before it polls the latch.
pub fn install_reload_handler() {
    #[cfg(unix)]
    ffi::install_reload();
}

/// Consume any pending reload request. Returns true when at least one
/// SIGHUP arrived since the last call; coalesces bursts into one reload.
pub fn take_reload_request() -> bool {
    RELOAD_COUNT.swap(0, Ordering::SeqCst) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test (not several) because the latch is process-global state and
    // the test harness runs in parallel.
    #[test]
    fn latch_sets_resets_and_trips_on_a_real_signal() {
        reset_shutdown_flag();
        assert!(!shutdown_requested());
        SIGNAL_COUNT.store(1, Ordering::SeqCst);
        assert!(shutdown_requested());
        reset_shutdown_flag();
        assert!(!shutdown_requested());
        #[cfg(unix)]
        {
            install_shutdown_handler();
            // Raise SIGTERM at ourselves through the installed handler.
            // Exactly once — a second raise would _exit(130) the test
            // harness; the process-level double-signal path is covered by
            // the exp_d7 gate instead.
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            unsafe {
                raise(15);
            }
            assert!(shutdown_requested());
            reset_shutdown_flag();

            // SIGHUP latches the reload counter, not the shutdown one,
            // and take_reload_request coalesces + clears it.
            install_reload_handler();
            assert!(!take_reload_request());
            unsafe {
                raise(1);
                raise(1);
            }
            assert!(take_reload_request(), "SIGHUP latched a reload");
            assert!(!take_reload_request(), "latch cleared after take");
            assert!(!shutdown_requested(), "SIGHUP never requests shutdown");
        }
    }
}
