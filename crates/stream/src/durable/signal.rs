//! Graceful-shutdown signalling.
//!
//! SIGTERM and SIGINT set a process-wide latch; the ingestion loop polls
//! [`shutdown_requested`] between lines and, when set, quiesces: stops
//! reading input, syncs the journal, writes a final checkpoint, and exits
//! cleanly — so the next start replays zero journal lines. The handler
//! itself only stores an atomic flag (the only thing that's async-signal
//! safe); all real work happens on the main thread.
//!
//! No libc crate: `signal(2)` is declared directly. On non-Unix targets
//! installation is a no-op and drain must be requested programmatically.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn latch(_signum: i32) {
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, latch);
            signal(SIGINT, latch);
        }
    }
}

/// Install the SIGTERM/SIGINT latch. Idempotent; call once near startup,
/// before the ingestion loop.
pub fn install_shutdown_handler() {
    #[cfg(unix)]
    ffi::install();
}

/// Whether a shutdown signal has arrived since the last reset.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clear the latch (tests, or a supervisor restarting the loop in-process).
pub fn reset_shutdown_flag() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test (not several) because the latch is process-global state and
    // the test harness runs in parallel.
    #[test]
    fn latch_sets_resets_and_trips_on_a_real_signal() {
        reset_shutdown_flag();
        assert!(!shutdown_requested());
        SHUTDOWN.store(true, Ordering::SeqCst);
        assert!(shutdown_requested());
        reset_shutdown_flag();
        assert!(!shutdown_requested());
        #[cfg(unix)]
        {
            install_shutdown_handler();
            // Raise SIGTERM at ourselves through the installed handler.
            extern "C" {
                fn raise(signum: i32) -> i32;
            }
            unsafe {
                raise(15);
            }
            assert!(shutdown_requested());
            reset_shutdown_flag();
        }
    }
}
