//! Metrics export endpoint.
//!
//! [`MetricsExporter`] is a minimal blocking HTTP/1.1 server on
//! `std::net::TcpListener` that serves [`crate::observe::MetricsSnapshot`]
//! renderings and, when a [`Tracer`] is attached, the span-tracing views:
//!
//! - `GET /metrics` — Prometheus text exposition format
//! - `GET /metrics.json` — JSON
//! - `GET /healthz` — liveness probe (200 `ok`)
//! - `GET /trace/{id}` — span tree of one sampled trace (JSON)
//! - `GET /flight` — current flight-recorder ring contents (JSON)
//!
//! A background thread re-renders the snapshot every `interval` (so a
//! scrape never walks the histogram buckets on the request path) and
//! accepts connections with a short poll timeout so `Drop` can stop it
//! promptly. No external HTTP crate — the request parsing is the minimum
//! needed for `curl`/Prometheus: read the request head (capped at 4 KiB,
//! under read *and* write timeouts so a slow or malicious client cannot
//! wedge the single-threaded accept loop), match the path.

use crate::observe::MetricsRegistry;
use crate::trace::Tracer;
use monilog_model::TraceId;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Upper bound on the bytes of request head we are willing to read.
/// Anything larger is a client error (431-ish; we answer 400).
const MAX_REQUEST_BYTES: usize = 4096;

/// Overall deadline for reading one request head. The per-read timeout
/// alone is not enough: a client trickling one byte every 400 ms resets
/// that clock on each byte and can hold the single handler thread for
/// minutes before the byte cap bites. The deadline bounds the whole read,
/// however slowly the bytes arrive.
const READ_DEADLINE: Duration = Duration::from_secs(2);

/// Rendered snapshot cache shared between the refresher and request
/// handling.
#[derive(Debug, Default)]
struct Rendered {
    prometheus: String,
    json: String,
}

/// Periodic metrics exporter over a blocking TCP/HTTP endpoint.
///
/// Spawn with [`MetricsExporter::spawn`]; the endpoint serves until the
/// exporter is dropped. Bind to port 0 to let the OS pick a free port and
/// read it back with [`MetricsExporter::local_addr`].
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` and start serving snapshots of `registry`, re-rendered
    /// every `interval`. `/trace/{id}` and `/flight` answer 404 — attach a
    /// tracer with [`MetricsExporter::spawn_with_tracer`] to enable them.
    pub fn spawn(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> io::Result<Self> {
        Self::spawn_with_tracer(addr, registry, interval, None)
    }

    /// Like [`MetricsExporter::spawn`], additionally serving the span
    /// tracer's `/trace/{id}` and `/flight` views.
    pub fn spawn_with_tracer(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        tracer: Option<Arc<Tracer>>,
    ) -> io::Result<Self> {
        let listener = bind_reusable(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(true));
        let stop_flag = Arc::clone(&stop);
        stop.store(false, Ordering::Release);
        let handle = thread::Builder::new()
            .name("monilog-metrics-exporter".into())
            .spawn(move || serve_loop(listener, registry, interval, stop_flag, tracer))
            .expect("spawn exporter thread");
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Bind the exporter socket with `SO_REUSEADDR` so a restarting process
/// (the crash-recovery path) can re-bind its old address while the dead
/// process's connections sit in TIME_WAIT. On targets without the raw
/// syscall shim — or if it fails — fall back to plain binds under a short
/// exponential backoff, which rides out the same window more slowly.
fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
    let mut delay = Duration::from_millis(50);
    let mut last_err = None;
    for attempt in 0..5 {
        #[cfg(target_os = "linux")]
        let result = match addr {
            SocketAddr::V4(v4) => reuseaddr::bind_v4(v4).or_else(|_| TcpListener::bind(addr)),
            _ => TcpListener::bind(addr),
        };
        #[cfg(not(target_os = "linux"))]
        let result = TcpListener::bind(addr);
        match result {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = Some(e),
        }
        if attempt < 4 {
            thread::sleep(delay);
            delay *= 2;
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("bind failed")))
}

/// `socket(2)`/`setsockopt(2)`/`bind(2)`/`listen(2)` declared directly (no
/// libc crate) — the constants and `sockaddr_in` layout are Linux ABI.
#[cfg(target_os = "linux")]
mod reuseaddr {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::unix::io::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        /// Network byte order.
        sin_port: u16,
        /// Network byte order.
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn bind_v4(addr: SocketAddrV4) -> io::Result<TcpListener> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
                return Err(fail(fd));
            }
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_ne_bytes(addr.ip().octets()),
                sin_zero: [0; 8],
            };
            if bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) != 0 {
                return Err(fail(fd));
            }
            if listen(fd, 128) != 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    interval: Duration,
    stop: Arc<AtomicBool>,
    tracer: Option<Arc<Tracer>>,
) {
    let cache = Mutex::new(Rendered::default());
    render_into(&registry, &cache);
    let mut since_render = Duration::ZERO;
    const POLL: Duration = Duration::from_millis(20);
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Re-render on demand too, so a scrape right after a burst
                // sees it even with a long interval.
                render_into(&registry, &cache);
                let _ = handle_request(stream, &cache, tracer.as_deref());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL);
                since_render += POLL;
                if since_render >= interval {
                    render_into(&registry, &cache);
                    since_render = Duration::ZERO;
                }
            }
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn render_into(registry: &MetricsRegistry, cache: &Mutex<Rendered>) {
    let snapshot = registry.snapshot();
    let mut slot = cache.lock().expect("render cache");
    slot.prometheus = snapshot.to_prometheus();
    slot.json = snapshot.to_json();
}

/// Read the request head: up to the end of the request line (or header
/// block), the 4 KiB cap, the per-read timeout, or the overall
/// [`READ_DEADLINE`] — whichever comes first. Returns `None` when the
/// client sent more than the cap allows.
fn read_request_head(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let deadline = std::time::Instant::now() + READ_DEADLINE;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Shrink the per-read timeout to whatever is left of the overall
        // deadline, so a byte-at-a-time client cannot reset the clock.
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            break; // deadline: route on whatever arrived (likely a 400)
        }
        stream.set_read_timeout(Some(remaining.min(Duration::from_millis(500))))?;
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            // A timeout with a partial request in hand: serve what we got.
            Err(e)
                if !buf.is_empty()
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                break;
            }
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > MAX_REQUEST_BYTES {
            drain(stream);
            return Ok(None);
        }
        // The request line is all we route on; stop at its end.
        if buf.windows(2).any(|w| w == b"\r\n") || buf.contains(&b'\n') {
            break;
        }
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// Discard (bounded) whatever else an over-limit client sent. Closing with
/// unread bytes in the receive buffer makes the kernel RST the connection,
/// which would destroy the 400 response before the client reads it.
fn drain(stream: &mut TcpStream) {
    let mut sink = [0u8; 1024];
    let mut total = 0usize;
    while total < 64 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

fn handle_request(
    mut stream: TcpStream,
    cache: &Mutex<Rendered>,
    tracer: Option<&Tracer>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let request = read_request_head(&mut stream)?;
    let (status, content_type, body) = match request {
        None => (
            "400 Bad Request",
            "text/plain",
            "request head exceeds 4096 bytes\n".to_string(),
        ),
        Some(request) => match request.lines().next().map(parse_request_line) {
            None | Some(None) => (
                "400 Bad Request",
                "text/plain",
                "malformed request line\n".to_string(),
            ),
            Some(Some(path)) => route(&path, cache, tracer),
        },
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Extract the path from `GET <path> HTTP/1.1`; `None` when the line is
/// not a plausible HTTP request line.
fn parse_request_line(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if !method.chars().all(|c| c.is_ascii_uppercase()) || !path.starts_with('/') {
        return None;
    }
    Some(path.to_string())
}

fn route(
    path: &str,
    cache: &Mutex<Rendered>,
    tracer: Option<&Tracer>,
) -> (&'static str, &'static str, String) {
    match path {
        // Liveness probe, shared convention with the delivery sinks'
        // healthcheck (`crate::sinks`): 200 + "ok" with no registry work.
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/metrics" | "/" => {
            let rendered = cache.lock().expect("render cache");
            (
                "200 OK",
                "text/plain; version=0.0.4",
                rendered.prometheus.clone(),
            )
        }
        "/metrics.json" => {
            let rendered = cache.lock().expect("render cache");
            ("200 OK", "application/json", rendered.json.clone())
        }
        "/flight" => match tracer {
            Some(t) => ("200 OK", "application/json", t.flight_json()),
            None => (
                "404 Not Found",
                "application/json",
                "{\"error\":\"tracing disabled\"}\n".to_string(),
            ),
        },
        _ => match path.strip_prefix("/trace/") {
            Some(id) => match (id.parse::<u64>(), tracer) {
                (Err(_), _) | (Ok(0), _) => (
                    "400 Bad Request",
                    "application/json",
                    "{\"error\":\"trace id must be a positive integer\"}\n".to_string(),
                ),
                (Ok(_), None) => (
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"tracing disabled\"}\n".to_string(),
                ),
                (Ok(id), Some(t)) => match t.trace_json(TraceId(id)) {
                    Some(json) => ("200 OK", "application/json", json),
                    None => (
                        "404 Not Found",
                        "application/json",
                        format!("{{\"error\":\"no spans for trace {id}\"}}\n"),
                    ),
                },
            },
            None => (
                "404 Not Found",
                "text/plain",
                "not found; try /metrics, /metrics.json, /healthz, /trace/{id} or /flight\n"
                    .to_string(),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineMetrics;
    use crate::observe::Stage;
    use crate::trace::{SpanRecord, SpanStage, TraceConfig};

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    /// Body length must match the advertised Content-Length exactly.
    fn assert_content_length(head: &str, body: &str) {
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        assert_eq!(len, body.len(), "Content-Length mismatch: {head}");
    }

    fn test_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::shared_with_shards(2);
        PipelineMetrics::add(&r.counters().lines_ingested, 42);
        r.stage(Stage::Parse).record(Duration::from_micros(15));
        r
    }

    fn test_tracer() -> Arc<Tracer> {
        let t = Tracer::shared(&TraceConfig::default(), 1);
        t.record(SpanRecord {
            trace: monilog_model::TraceId(1),
            stage: SpanStage::Parse,
            shard: 0,
            start_ns: 100,
            end_ns: 300,
            template: Some(4),
            cache_hit: Some(false),
        });
        t
    }

    #[test]
    fn serves_prometheus_over_http() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("monilog_lines_ingested_total 42"), "{body}");
        assert!(
            body.contains("monilog_stage_latency_seconds_count{stage=\"parse_exec\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("monilog_shard_queue_depth{shard=\"1\"}"),
            "{body}"
        );
    }

    #[test]
    fn serves_json_and_404() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"lines_ingested\":42"), "{body}");
        assert!(body.contains("\"parse_exec\":{\"count\":1"), "{body}");
        let (head, body) = http_get(exporter.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn scrape_sees_updates_after_spawn() {
        let registry = test_registry();
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_secs(3600), // interval irrelevant: scrape re-renders
        )
        .expect("bind");
        PipelineMetrics::add(&registry.counters().lines_parsed, 7);
        let (_, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(body.contains("monilog_lines_parsed_total 7"), "{body}");
    }

    #[test]
    fn drop_stops_the_listener() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        drop(exporter);
        // Port released: either connect fails or a fresh bind succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "exporter did not release {addr}");
    }

    #[test]
    fn serves_trace_and_flight_views() {
        let exporter = MetricsExporter::spawn_with_tracer(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
            Some(test_tracer()),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/trace/1");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with("{\"trace_id\":1,"), "{body}");
        assert!(body.contains("\"stage\":\"parse_exec\""), "{body}");
        assert_content_length(&head, &body);

        let (head, body) = http_get(exporter.local_addr(), "/flight");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"spans\":[{\"trace_id\":1,"), "{body}");
        assert_content_length(&head, &body);

        // Unknown trace id → 404; junk id → 400.
        let (head, body) = http_get(exporter.local_addr(), "/trace/999");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_content_length(&head, &body);
        let (head, body) = http_get(exporter.local_addr(), "/trace/bogus");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn trace_routes_404_without_a_tracer() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        for path in ["/trace/1", "/flight"] {
            let (head, body) = http_get(exporter.local_addr(), path);
            assert!(head.starts_with("HTTP/1.1 404"), "{path}: {head}");
            assert!(body.contains("tracing disabled"), "{path}: {body}");
            assert_content_length(&head, &body);
        }
    }

    #[test]
    fn restart_rebinds_the_same_address_immediately() {
        // A restarting process must be able to reclaim its metrics address
        // right away: bind, serve, drop, and rebind the same port twice.
        let registry = test_registry();
        let first = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_millis(50),
        )
        .expect("initial bind");
        let addr = first.local_addr();
        let (head, _) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        drop(first);
        for generation in 0..2 {
            let again =
                MetricsExporter::spawn(addr, Arc::clone(&registry), Duration::from_millis(50))
                    .unwrap_or_else(|e| panic!("rebind generation {generation} failed: {e}"));
            let (head, _) = http_get(again.local_addr(), "/metrics");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert_eq!(again.local_addr(), addr);
        }
    }

    #[test]
    fn bind_conflict_is_reported_after_retries() {
        // A port that stays occupied: bind_reusable must back off, retry,
        // and surface the error instead of hanging or panicking.
        let occupant = TcpListener::bind("127.0.0.1:0").expect("occupant");
        let addr = occupant.local_addr().unwrap();
        let started = std::time::Instant::now();
        let result = MetricsExporter::spawn(addr, test_registry(), Duration::from_millis(50));
        assert!(result.is_err(), "bind to an occupied port must fail");
        assert!(
            started.elapsed() >= Duration::from_millis(300),
            "failure must come after backoff retries, not instantly"
        );
    }

    #[test]
    fn healthz_answers_without_touching_the_registry() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
        assert_content_length(&head, &body);
    }

    #[test]
    fn slow_loris_request_is_cut_off_at_the_overall_deadline() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        // Trickle bytes slower than the per-read timeout would ever fire:
        // each 400 ms byte used to reset the 500 ms clock indefinitely.
        // The overall deadline must cut the connection loose regardless.
        let addr = exporter.local_addr();
        let started = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET").unwrap();
        let mut answered = String::new();
        loop {
            if started.elapsed() > Duration::from_secs(8) {
                panic!("handler still holding the slow-loris connection");
            }
            if stream.write_all(b"X").is_err() {
                break; // handler gave up on us
            }
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let mut buf = [0u8; 512];
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    answered.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if answered.contains("\r\n\r\n") {
                        break;
                    }
                }
                Err(_) => {}
            }
            thread::sleep(Duration::from_millis(400));
        }
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "deadline bounded the slow client"
        );
        // And the loop is free again for a real scrape.
        let (head, _) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    #[test]
    fn oversized_and_malformed_requests_get_400() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        // A request line well past the 4 KiB cap: the exporter must answer
        // 400 instead of buffering without bound or hanging the loop.
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8192));
        stream.write_all(huge.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("response split");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert_content_length(head, body);

        // Garbage that is not an HTTP request line at all.
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // The loop survives both and keeps serving.
        let (head, _) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }
}
