//! Metrics export endpoint.
//!
//! [`MetricsExporter`] is a minimal HTTP/1.1 server serving
//! [`crate::observe::MetricsSnapshot`] renderings and, when a [`Tracer`] is
//! attached, the span-tracing views:
//!
//! - `GET /metrics` — Prometheus text exposition format
//! - `GET /metrics.json` — JSON
//! - `GET /healthz` — liveness probe (200 `ok`)
//! - `GET /trace/{id}` — span tree of one sampled trace (JSON)
//! - `GET /flight` — current flight-recorder ring contents (JSON)
//!
//! With an [`OpsState`] attached ([`MetricsExporter::spawn_with_ops`]) the
//! same listener also serves the live operations surface (`crate::ops`):
//!
//! - `GET /reports[?since=&severity=&template=&source=&limit=]` — query the
//!   recent-anomaly store
//! - `GET /reports/{id}` — one report joined to its sampled trace spans
//! - `GET /status` — the `ok | degraded | critical` health rollup
//! - `GET /readyz` — readiness gate: 200 `ok`, 200 with a `degraded`
//!   status body (still ready — e.g. a lost router link while local
//!   sources keep flowing), or 503 with reasons
//! - `GET /config` / `POST /config` — view / hot-reload the runtime config
//!
//! Connections are served on the shared [`crate::net`] event loop: every
//! client gets its own non-blocking connection handler with a per-connection
//! read buffer, so one stalled or malicious peer can no longer head-of-line
//! block other scrapes (the old implementation accepted and served one
//! connection at a time inline), and readiness notification replaces the old
//! 20 ms accept poll, so an idle endpoint answers in microseconds instead of
//! up to a poll tick. No external HTTP crate — request parsing is the
//! minimum needed for `curl`/Prometheus: read the request head (capped at
//! 4 KiB, under an overall deadline enforced from the loop tick), match the
//! path.

use crate::net::{AsLoopFd, EventLoop, Handler, Interest, LoopCtx, Next};
use crate::observe::MetricsRegistry;
use crate::ops::{
    degraded_reasons, parse_config_pairs, readiness_reasons, render_status, report_detail_json,
    reports_json, OpsState, ReportsQuery,
};
use crate::trace::Tracer;
use monilog_model::trace::json_string;
use monilog_model::TraceId;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Upper bound on the bytes of request head we are willing to read.
/// Anything larger is a client error (431-ish; we answer 400).
const MAX_REQUEST_BYTES: usize = 4096;

/// Overall deadline for reading one request head. A client trickling one
/// byte at a time can never hold a response hostage longer than this; the
/// connection is routed (usually to a 400) with whatever arrived.
const READ_DEADLINE: Duration = Duration::from_secs(2);

/// Deadline for flushing a response once it is queued.
const WRITE_DEADLINE: Duration = Duration::from_secs(2);

/// Cap on post-response bytes we are willing to discard. Closing with
/// unread bytes in the receive buffer makes the kernel RST the connection,
/// which would destroy a 400 response before the client reads it — so we
/// keep reading (and dropping) up to this much while flushing.
const DRAIN_CAP: usize = 64 * 1024;

/// Rendered snapshot cache shared between the refresher and request
/// handling.
#[derive(Debug, Default)]
struct Rendered {
    prometheus: String,
    json: String,
}

/// Renders snapshots and answers routed requests. Shared between the
/// standalone [`MetricsExporter`] and the sources server, which mounts the
/// same endpoint on its own event loop.
pub(crate) struct MetricsService {
    registry: Arc<MetricsRegistry>,
    tracer: Option<Arc<Tracer>>,
    ops: Option<Arc<OpsState>>,
    cache: Mutex<Rendered>,
}

impl MetricsService {
    pub(crate) fn new(
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
        ops: Option<Arc<OpsState>>,
    ) -> Self {
        let svc = MetricsService {
            registry,
            tracer,
            ops,
            cache: Mutex::new(Rendered::default()),
        };
        svc.render();
        svc
    }

    /// Re-render the snapshot cache (called on accept and on the refresh
    /// interval, so a scrape never walks histogram buckets on the request
    /// path of a busy endpoint).
    pub(crate) fn render(&self) {
        let snapshot = self.registry.snapshot();
        let mut slot = self.cache.lock().expect("render cache");
        slot.prometheus = snapshot.to_prometheus();
        slot.json = snapshot.to_json();
    }

    fn route(&self, method: &str, path: &str, body: &str) -> (&'static str, &'static str, String) {
        if method == "POST" {
            return self.route_post(path, body);
        }
        match path {
            "/status" => match &self.ops {
                Some(ops) => {
                    // A fresh snapshot, not the render cache: the health
                    // rollup is the page an operator refreshes while
                    // something is on fire.
                    let snap = self.registry.snapshot();
                    let inputs = ops.status.inputs();
                    let (_, json) =
                        render_status(&snap, &inputs, ops.status.budget_ms(), ops.reload.version());
                    ("200 OK", "application/json", json)
                }
                None => ops_disabled(),
            },
            "/readyz" => match &self.ops {
                // Without an ops state there is nothing that could be
                // not-ready: fall back to liveness semantics.
                None => ("200 OK", "text/plain", "ok\n".to_string()),
                Some(ops) => {
                    let inputs = ops.status.inputs();
                    let critical = readiness_reasons(&inputs);
                    let degraded = degraded_reasons(&inputs);
                    let enc = |rs: &[String]| -> String {
                        let quoted: Vec<String> = rs.iter().map(|r| json_string(r)).collect();
                        quoted.join(",")
                    };
                    if !critical.is_empty() {
                        (
                            "503 Service Unavailable",
                            "application/json",
                            format!("{{\"ready\":false,\"reasons\":[{}]}}\n", enc(&critical)),
                        )
                    } else if !degraded.is_empty() {
                        // Degraded but ready: a monitor that lost its
                        // router keeps serving local sources, so probes
                        // must NOT pull it from rotation — 200 with the
                        // machine-readable reason in the body.
                        (
                            "200 OK",
                            "application/json",
                            format!(
                                "{{\"ready\":true,\"status\":\"degraded\",\
                                 \"reasons\":[{}]}}\n",
                                enc(&degraded)
                            ),
                        )
                    } else {
                        ("200 OK", "text/plain", "ok\n".to_string())
                    }
                }
            },
            "/config" => match &self.ops {
                Some(ops) => ("200 OK", "application/json", ops.reload.to_json()),
                None => ops_disabled(),
            },
            p if p == "/reports" || p.starts_with("/reports?") || p.starts_with("/reports/") => {
                self.route_reports(p)
            }
            _ => route(path, &self.cache, self.tracer.as_deref()),
        }
    }

    fn route_post(&self, path: &str, body: &str) -> (&'static str, &'static str, String) {
        match (path, &self.ops) {
            ("/config", Some(ops)) => {
                match parse_config_pairs(body)
                    .and_then(|pairs| ops.reload.apply_pairs(&pairs, "post"))
                {
                    Ok(_) => ("200 OK", "application/json", ops.reload.to_json()),
                    Err(e) => (
                        "400 Bad Request",
                        "application/json",
                        format!("{{\"error\":{}}}\n", json_string(&e)),
                    ),
                }
            }
            ("/config", None) => ops_disabled(),
            _ => (
                "405 Method Not Allowed",
                "application/json",
                "{\"error\":\"POST is only accepted on /config\"}\n".to_string(),
            ),
        }
    }

    fn route_reports(&self, path: &str) -> (&'static str, &'static str, String) {
        let Some(ops) = &self.ops else {
            return ops_disabled();
        };
        if let Some(rest) = path.strip_prefix("/reports/") {
            return match rest.parse::<u64>() {
                Err(_) => (
                    "400 Bad Request",
                    "application/json",
                    "{\"error\":\"report id must be an unsigned integer\"}\n".to_string(),
                ),
                Ok(id) => match ops.reports.get(id) {
                    Some(r) => (
                        "200 OK",
                        "application/json",
                        report_detail_json(&r, self.tracer.as_deref()),
                    ),
                    None => (
                        "404 Not Found",
                        "application/json",
                        format!("{{\"error\":\"no report {id} in the store\"}}\n"),
                    ),
                },
            };
        }
        let qs = path
            .strip_prefix("/reports")
            .map(|rest| rest.strip_prefix('?').unwrap_or(rest))
            .unwrap_or("");
        match ReportsQuery::parse(qs) {
            Err(e) => (
                "400 Bad Request",
                "application/json",
                format!("{{\"error\":{}}}\n", json_string(&e)),
            ),
            Ok(q) => {
                let (total, items) = ops.reports.query(&q);
                ("200 OK", "application/json", reports_json(total, &items))
            }
        }
    }
}

fn ops_disabled() -> (&'static str, &'static str, String) {
    (
        "404 Not Found",
        "application/json",
        "{\"error\":\"ops surface disabled\"}\n".to_string(),
    )
}

/// Periodic metrics exporter over a TCP/HTTP endpoint.
///
/// Spawn with [`MetricsExporter::spawn`]; the endpoint serves until the
/// exporter is dropped. Bind to port 0 to let the OS pick a free port and
/// read it back with [`MetricsExporter::local_addr`].
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` and start serving snapshots of `registry`, re-rendered
    /// every `interval`. `/trace/{id}` and `/flight` answer 404 — attach a
    /// tracer with [`MetricsExporter::spawn_with_tracer`] to enable them.
    pub fn spawn(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> io::Result<Self> {
        Self::spawn_with_tracer(addr, registry, interval, None)
    }

    /// Like [`MetricsExporter::spawn`], additionally serving the span
    /// tracer's `/trace/{id}` and `/flight` views.
    pub fn spawn_with_tracer(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        tracer: Option<Arc<Tracer>>,
    ) -> io::Result<Self> {
        Self::spawn_with_ops(addr, registry, interval, tracer, None)
    }

    /// Like [`MetricsExporter::spawn_with_tracer`], additionally serving
    /// the live operations surface (`/reports`, `/status`, `/readyz`,
    /// `/config`) backed by `ops`.
    pub fn spawn_with_ops(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        tracer: Option<Arc<Tracer>>,
        ops: Option<Arc<OpsState>>,
    ) -> io::Result<Self> {
        let listener = bind_reusable(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(MetricsService::new(registry, tracer, ops));

        let mut event_loop = EventLoop::new()?;
        register_metrics_listener(&mut event_loop, listener, service, interval)?;

        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("monilog-metrics-exporter".into())
            .spawn(move || event_loop.run(stop_flag))
            .expect("spawn exporter thread");
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Register the `/metrics` listener + refresh tick on an event loop. Used by
/// the standalone exporter and by the sources server, which shares its loop
/// with the syslog/HTTP ingest endpoints.
pub(crate) fn register_metrics_listener(
    event_loop: &mut EventLoop,
    listener: TcpListener,
    service: Arc<MetricsService>,
    interval: Duration,
) -> io::Result<()> {
    let fd = listener.loop_fd();
    event_loop.register(
        fd,
        Box::new(MetricsListener {
            listener,
            service,
            interval,
            last_render: Instant::now(),
        }),
    )?;
    Ok(())
}

/// Bind the exporter socket with `SO_REUSEADDR` so a restarting process
/// (the crash-recovery path) can re-bind its old address while the dead
/// process's connections sit in TIME_WAIT. On targets without the raw
/// syscall shim — or if it fails — fall back to plain binds under a short
/// exponential backoff, which rides out the same window more slowly.
pub(crate) fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
    let mut delay = Duration::from_millis(50);
    let mut last_err = None;
    for attempt in 0..5 {
        #[cfg(target_os = "linux")]
        let result = match addr {
            SocketAddr::V4(v4) => reuseaddr::bind_v4(v4).or_else(|_| TcpListener::bind(addr)),
            _ => TcpListener::bind(addr),
        };
        #[cfg(not(target_os = "linux"))]
        let result = TcpListener::bind(addr);
        match result {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = Some(e),
        }
        if attempt < 4 {
            thread::sleep(delay);
            delay *= 2;
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("bind failed")))
}

/// `socket(2)`/`setsockopt(2)`/`bind(2)`/`listen(2)` declared directly (no
/// libc crate) — the constants and `sockaddr_in` layout are Linux ABI.
#[cfg(target_os = "linux")]
mod reuseaddr {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::unix::io::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        /// Network byte order.
        sin_port: u16,
        /// Network byte order.
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn bind_v4(addr: SocketAddrV4) -> io::Result<TcpListener> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
                return Err(fail(fd));
            }
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_ne_bytes(addr.ip().octets()),
                sin_zero: [0; 8],
            };
            if bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) != 0 {
                return Err(fail(fd));
            }
            if listen(fd, 1024) != 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Accepts scrape connections and hands each its own [`MetricsConn`].
struct MetricsListener {
    listener: TcpListener,
    service: Arc<MetricsService>,
    interval: Duration,
    last_render: Instant,
}

impl Handler for MetricsListener {
    fn ready(&mut self, _readable: bool, _writable: bool, ctx: &mut LoopCtx<'_>) -> Next {
        let mut accepted_any = false;
        loop {
            match self.listener.accept() {
                Ok((conn, _)) => {
                    accepted_any = true;
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let fd = conn.loop_fd();
                    ctx.register(fd, Box::new(MetricsConn::new(conn, self.service.clone())));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if accepted_any {
            // Re-render on demand too, so a scrape right after a burst sees
            // fresh numbers even with a long refresh interval.
            self.service.render();
            self.last_render = Instant::now();
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        if now.duration_since(self.last_render) >= self.interval {
            self.service.render();
            self.last_render = now;
        }
        Next::Keep
    }
}

enum ConnPhase {
    /// Accumulating the request head.
    Reading,
    /// Response queued in `out`; flush, drain stragglers, then close.
    Writing { since: Instant },
}

/// One scrape connection: non-blocking, owns its read buffer, enforces the
/// head cap and deadlines from the loop tick.
struct MetricsConn {
    conn: TcpStream,
    service: Arc<MetricsService>,
    buf: Vec<u8>,
    out: Vec<u8>,
    phase: ConnPhase,
    opened: Instant,
    drained: usize,
}

impl MetricsConn {
    fn new(conn: TcpStream, service: Arc<MetricsService>) -> Self {
        MetricsConn {
            conn,
            service,
            buf: Vec::with_capacity(512),
            out: Vec::new(),
            phase: ConnPhase::Reading,
            opened: Instant::now(),
            drained: 0,
        }
    }

    fn respond(&mut self, status: &str, content_type: &str, body: &str) {
        self.out = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes();
        self.phase = ConnPhase::Writing {
            since: Instant::now(),
        };
    }

    /// Route whatever request has arrived (possibly none, possibly
    /// over-cap garbage) and queue the response.
    fn route_now(&mut self) {
        if self.buf.len() > MAX_REQUEST_BYTES {
            self.respond(
                "400 Bad Request",
                "text/plain",
                "request exceeds 4096 bytes\n",
            );
            return;
        }
        let text = String::from_utf8_lossy(&self.buf).into_owned();
        let (status, content_type, body) = match text.lines().next().map(parse_request_line) {
            None | Some(None) => (
                "400 Bad Request",
                "text/plain",
                "malformed request line\n".to_string(),
            ),
            Some(Some((method, path))) => {
                let payload = request_body(&self.buf);
                self.service.route(&method, &path, &payload)
            }
        };
        self.respond(status, content_type, &body);
    }

    /// Whether enough of the request has arrived to route it. `GET`-style
    /// requests route on the request line alone (the historical fast
    /// path); `POST` waits for the blank line plus `Content-Length` bytes
    /// of body, all under the same 4 KiB cap and read deadline.
    fn request_complete(&self) -> bool {
        if !self.buf.contains(&b'\n') {
            return false;
        }
        if !self.buf.starts_with(b"POST ") {
            return true;
        }
        let Some(head_end) = find_head_end(&self.buf) else {
            return false;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]);
        let content_length = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                if name.trim().eq_ignore_ascii_case("content-length") {
                    value.trim().parse::<usize>().ok()
                } else {
                    None
                }
            })
            .unwrap_or(0);
        self.buf.len() >= head_end.saturating_add(content_length)
    }

    /// Read until `WouldBlock`. Returns false when the peer is gone.
    fn pump_read(&mut self) -> bool {
        let mut chunk = [0u8; 1024];
        loop {
            match self.conn.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => match self.phase {
                    ConnPhase::Reading => {
                        self.buf.extend_from_slice(&chunk[..n]);
                        if self.buf.len() > MAX_REQUEST_BYTES || self.request_complete() {
                            self.route_now();
                            return true;
                        }
                    }
                    ConnPhase::Writing { .. } => {
                        // Drain (and drop) stragglers so close() does not
                        // RST the queued response away.
                        self.drained += n;
                        if self.drained > DRAIN_CAP {
                            return false;
                        }
                    }
                },
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Flush the queued response. `Ok(true)` = fully flushed.
    fn pump_write(&mut self) -> io::Result<bool> {
        while !self.out.is_empty() {
            match self.conn.write(&self.out) {
                Ok(0) => return Err(io::Error::other("peer stopped reading")),
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

impl Handler for MetricsConn {
    fn ready(&mut self, readable: bool, writable: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        if readable && !self.pump_read() {
            // EOF mid-request: nothing useful to say; EOF after the
            // response is queued: flush what we can below.
            if matches!(self.phase, ConnPhase::Reading) {
                return Next::Close;
            }
        }
        if let ConnPhase::Writing { .. } = self.phase {
            let _ = writable;
            match self.pump_write() {
                Ok(true) => {
                    // Drain any request bytes still queued (an over-cap head
                    // leaves some behind) so close() sends FIN, not RST,
                    // and the peer can read the whole response.
                    let _ = self.pump_read();
                    return Next::Close;
                }
                Ok(false) => {}
                Err(_) => return Next::Close,
            }
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        match self.phase {
            ConnPhase::Reading => {
                if now.duration_since(self.opened) >= READ_DEADLINE {
                    // Route whatever arrived (likely a 400) instead of
                    // holding the connection open forever.
                    self.route_now();
                    match self.pump_write() {
                        Ok(true) => {
                            let _ = self.pump_read();
                            return Next::Close;
                        }
                        Ok(false) => {}
                        Err(_) => return Next::Close,
                    }
                }
                Next::Keep
            }
            ConnPhase::Writing { since } => {
                if now.duration_since(since) >= WRITE_DEADLINE {
                    return Next::Close;
                }
                Next::Keep
            }
        }
    }

    fn interest(&self) -> Interest {
        Interest {
            read: true,
            write: !self.out.is_empty(),
        }
    }
}

/// Extract `(method, path)` from `GET <path> HTTP/1.1`; `None` when the
/// line is not a plausible HTTP request line.
fn parse_request_line(line: &str) -> Option<(String, String)> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method.is_empty()
        || !method.chars().all(|c| c.is_ascii_uppercase())
        || !path.starts_with('/')
    {
        return None;
    }
    Some((method.to_string(), path.to_string()))
}

/// Byte offset one past the `\r\n\r\n` (or bare `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
        return Some(at + 4);
    }
    buf.windows(2).position(|w| w == b"\n\n").map(|at| at + 2)
}

/// The request body (bytes past the head terminator), lossily decoded.
fn request_body(buf: &[u8]) -> String {
    match find_head_end(buf) {
        Some(at) => String::from_utf8_lossy(&buf[at..]).into_owned(),
        None => String::new(),
    }
}

fn route(
    path: &str,
    cache: &Mutex<Rendered>,
    tracer: Option<&Tracer>,
) -> (&'static str, &'static str, String) {
    match path {
        // Liveness probe, shared convention with the delivery sinks'
        // healthcheck (`crate::sinks`): 200 + "ok" with no registry work.
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/metrics" | "/" => {
            let rendered = cache.lock().expect("render cache");
            (
                "200 OK",
                "text/plain; version=0.0.4",
                rendered.prometheus.clone(),
            )
        }
        "/metrics.json" => {
            let rendered = cache.lock().expect("render cache");
            ("200 OK", "application/json", rendered.json.clone())
        }
        "/flight" => match tracer {
            Some(t) => ("200 OK", "application/json", t.flight_json()),
            None => (
                "404 Not Found",
                "application/json",
                "{\"error\":\"tracing disabled\"}\n".to_string(),
            ),
        },
        _ => match path.strip_prefix("/trace/") {
            Some(id) => match (id.parse::<u64>(), tracer) {
                (Err(_), _) | (Ok(0), _) => (
                    "400 Bad Request",
                    "application/json",
                    "{\"error\":\"trace id must be a positive integer\"}\n".to_string(),
                ),
                (Ok(_), None) => (
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"tracing disabled\"}\n".to_string(),
                ),
                (Ok(id), Some(t)) => match t.trace_json(TraceId(id)) {
                    Some(json) => ("200 OK", "application/json", json),
                    None => (
                        "404 Not Found",
                        "application/json",
                        format!("{{\"error\":\"no spans for trace {id}\"}}\n"),
                    ),
                },
            },
            None => (
                "404 Not Found",
                "text/plain",
                "not found; try /metrics, /metrics.json, /healthz, /readyz, /status, \
                 /reports, /config, /trace/{id} or /flight\n"
                    .to_string(),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineMetrics;
    use crate::observe::Stage;
    use crate::ops::{
        ConfigSnapshot, ReloadableConfig, ReportStore, StatusBoard, StatusInputs, StoredReport,
        DEFAULT_LATENCY_BUDGET_MS,
    };
    use crate::trace::{SpanRecord, SpanStage, TraceConfig};
    use monilog_model::{
        AnomalyKind, AnomalyReport, Criticality, EventId, LogEvent, Provenance, ScoreComponent,
        Severity, SourceId, TemplateId, Timestamp,
    };

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    fn http_post(addr: SocketAddr, path: &str, payload: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(
            stream,
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{payload}",
            payload.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    /// Body length must match the advertised Content-Length exactly.
    fn assert_content_length(head: &str, body: &str) {
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        assert_eq!(len, body.len(), "Content-Length mismatch: {head}");
    }

    fn test_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::shared_with_shards(2);
        PipelineMetrics::add(&r.counters().lines_ingested, 42);
        r.stage(Stage::Parse).record(Duration::from_micros(15));
        r
    }

    fn anomaly(id: u64, template: u32) -> AnomalyReport {
        let event = LogEvent::new(
            EventId(id * 100),
            Timestamp::from_millis(1_000 + id),
            SourceId(id as u16),
            Severity::Info,
            TemplateId(template),
            vec![],
            None,
        )
        .with_trace(Some(TraceId(id)));
        AnomalyReport {
            id,
            kind: AnomalyKind::Sequential,
            score: 0.9,
            detector: "deeplog".to_string(),
            events: vec![event],
            explanation: "unexpected successor".to_string(),
            provenance: Provenance {
                trace_ids: vec![TraceId(id)],
                template_ids: vec![template],
                window: None,
                score_components: vec![ScoreComponent::new("score", 0.9)],
            },
        }
    }

    /// Twelve reports: ids 1..=12, even ids high severity, ids 1..=6 on
    /// template 7 and 7..=12 on template 9, source id = report id.
    fn test_ops(registry: &Arc<MetricsRegistry>) -> Arc<OpsState> {
        let reports = ReportStore::shared(64);
        for id in 1..=12u64 {
            let severity = if id % 2 == 0 {
                Criticality::High
            } else {
                Criticality::Low
            };
            let template = if id <= 6 { 7 } else { 9 };
            assert!(reports.record(StoredReport::from_report(&anomaly(id, template), severity)));
        }
        Arc::new(OpsState::new(
            reports,
            StatusBoard::shared(DEFAULT_LATENCY_BUDGET_MS),
            ReloadableConfig::shared(
                ConfigSnapshot::default(),
                None,
                Arc::clone(registry.counters()),
            ),
        ))
    }

    fn spawn_ops_exporter() -> (MetricsExporter, Arc<OpsState>) {
        let registry = test_registry();
        let ops = test_ops(&registry);
        let exporter = MetricsExporter::spawn_with_ops(
            "127.0.0.1:0".parse().unwrap(),
            registry,
            Duration::from_millis(50),
            Some(test_tracer()),
            Some(Arc::clone(&ops)),
        )
        .expect("bind");
        (exporter, ops)
    }

    fn test_tracer() -> Arc<Tracer> {
        let t = Tracer::shared(&TraceConfig::default(), 1);
        t.record(SpanRecord {
            trace: monilog_model::TraceId(1),
            stage: SpanStage::Parse,
            shard: 0,
            start_ns: 100,
            end_ns: 300,
            template: Some(4),
            cache_hit: Some(false),
        });
        t
    }

    #[test]
    fn serves_prometheus_over_http() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("monilog_lines_ingested_total 42"), "{body}");
        assert!(
            body.contains("monilog_stage_latency_seconds_count{stage=\"parse_exec\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("monilog_shard_queue_depth{shard=\"1\"}"),
            "{body}"
        );
    }

    #[test]
    fn serves_json_and_404() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"lines_ingested\":42"), "{body}");
        assert!(body.contains("\"parse_exec\":{\"count\":1"), "{body}");
        let (head, body) = http_get(exporter.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn scrape_sees_updates_after_spawn() {
        let registry = test_registry();
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_secs(3600), // interval irrelevant: scrape re-renders
        )
        .expect("bind");
        PipelineMetrics::add(&registry.counters().lines_parsed, 7);
        let (_, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(body.contains("monilog_lines_parsed_total 7"), "{body}");
    }

    #[test]
    fn drop_stops_the_listener() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        drop(exporter);
        // Port released: either connect fails or a fresh bind succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "exporter did not release {addr}");
    }

    #[test]
    fn serves_trace_and_flight_views() {
        let exporter = MetricsExporter::spawn_with_tracer(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
            Some(test_tracer()),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/trace/1");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with("{\"trace_id\":1,"), "{body}");
        assert!(body.contains("\"stage\":\"parse_exec\""), "{body}");
        assert_content_length(&head, &body);

        let (head, body) = http_get(exporter.local_addr(), "/flight");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"spans\":[{\"trace_id\":1,"), "{body}");
        assert_content_length(&head, &body);

        // Unknown trace id → 404; junk id → 400.
        let (head, body) = http_get(exporter.local_addr(), "/trace/999");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_content_length(&head, &body);
        let (head, body) = http_get(exporter.local_addr(), "/trace/bogus");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn trace_routes_404_without_a_tracer() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        for path in ["/trace/1", "/flight"] {
            let (head, body) = http_get(exporter.local_addr(), path);
            assert!(head.starts_with("HTTP/1.1 404"), "{path}: {head}");
            assert!(body.contains("tracing disabled"), "{path}: {body}");
            assert_content_length(&head, &body);
        }
    }

    #[test]
    fn restart_rebinds_the_same_address_immediately() {
        // A restarting process must be able to reclaim its metrics address
        // right away: bind, serve, drop, and rebind the same port twice.
        let registry = test_registry();
        let first = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_millis(50),
        )
        .expect("initial bind");
        let addr = first.local_addr();
        let (head, _) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        drop(first);
        for generation in 0..2 {
            let again =
                MetricsExporter::spawn(addr, Arc::clone(&registry), Duration::from_millis(50))
                    .unwrap_or_else(|e| panic!("rebind generation {generation} failed: {e}"));
            let (head, _) = http_get(again.local_addr(), "/metrics");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert_eq!(again.local_addr(), addr);
        }
    }

    #[test]
    fn bind_conflict_is_reported_after_retries() {
        // A port that stays occupied: bind_reusable must back off, retry,
        // and surface the error instead of hanging or panicking.
        let occupant = TcpListener::bind("127.0.0.1:0").expect("occupant");
        let addr = occupant.local_addr().unwrap();
        let started = std::time::Instant::now();
        let result = MetricsExporter::spawn(addr, test_registry(), Duration::from_millis(50));
        assert!(result.is_err(), "bind to an occupied port must fail");
        assert!(
            started.elapsed() >= Duration::from_millis(300),
            "failure must come after backoff retries, not instantly"
        );
    }

    #[test]
    fn healthz_answers_without_touching_the_registry() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
        assert_content_length(&head, &body);
    }

    #[test]
    fn slow_loris_request_is_cut_off_at_the_overall_deadline() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        // Trickle bytes forever without completing a request line. The
        // overall deadline must cut the connection loose regardless.
        let addr = exporter.local_addr();
        let started = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET").unwrap();
        let mut answered = String::new();
        loop {
            if started.elapsed() > Duration::from_secs(8) {
                panic!("handler still holding the slow-loris connection");
            }
            if stream.write_all(b"X").is_err() {
                break; // handler gave up on us
            }
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let mut buf = [0u8; 512];
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    answered.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if answered.contains("\r\n\r\n") {
                        break;
                    }
                }
                Err(_) => {}
            }
            thread::sleep(Duration::from_millis(400));
        }
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "deadline bounded the slow client"
        );
        // And the endpoint keeps serving real scrapes.
        let (head, _) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    #[test]
    fn oversized_and_malformed_requests_get_400() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        // A request line well past the 4 KiB cap: the exporter must answer
        // 400 instead of buffering without bound or hanging the loop.
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8192));
        stream.write_all(huge.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("response split");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert_content_length(head, body);

        // Garbage that is not an HTTP request line at all.
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // The loop survives both and keeps serving.
        let (head, _) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    /// Regression for the head-of-line blocking bug: the old exporter
    /// accepted and served one connection at a time inline, so a client
    /// that connected and sent nothing delayed every other scrape by up to
    /// its 500 ms read timeout. On the event loop a stalled client costs
    /// other scrapes nothing.
    #[test]
    fn stalled_client_does_not_block_concurrent_scrapes() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        // Two clients connect and stall without sending a byte.
        let _stalled_a = TcpStream::connect(addr).unwrap();
        let _stalled_b = TcpStream::connect(addr).unwrap();

        let mut latencies: Vec<Duration> = (0..10)
            .map(|_| {
                let t0 = Instant::now();
                let (head, _) = http_get(addr, "/metrics");
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                t0.elapsed()
            })
            .collect();
        latencies.sort();
        let median = latencies[latencies.len() / 2];
        // The old inline loop paid ≥500 ms per stalled client per scrape;
        // use a generous CI-safe bound well below that.
        assert!(
            median < Duration::from_millis(250),
            "scrape median {median:?} while clients stalled — head-of-line blocking is back"
        );
    }

    /// Regression for the 20 ms accept busy-poll: readiness notification
    /// must answer an idle-endpoint scrape well under the old poll tick.
    #[test]
    fn idle_scrape_latency_beats_the_old_poll_tick() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_secs(3600),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        // Warm up (thread spawn, first render).
        let _ = http_get(addr, "/healthz");
        let mut latencies: Vec<Duration> = (0..20)
            .map(|_| {
                let t0 = Instant::now();
                let (head, _) = http_get(addr, "/healthz");
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                t0.elapsed()
            })
            .collect();
        latencies.sort();
        let median = latencies[latencies.len() / 2];
        assert!(
            median < Duration::from_millis(20),
            "idle scrape median {median:?} — should be far below the old 20 ms accept poll"
        );
    }

    #[test]
    fn reports_route_filters_and_paginates() {
        let (exporter, _ops) = spawn_ops_exporter();
        let addr = exporter.local_addr();

        let (head, body) = http_get(addr, "/reports");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with("{\"total\":12,\"count\":12,"), "{body}");
        assert_content_length(&head, &body);

        // Pagination: first page of 5, then resume from the last seen id.
        let (_, body) = http_get(addr, "/reports?limit=5");
        assert!(body.starts_with("{\"total\":12,\"count\":5,"), "{body}");
        for id in 1..=5 {
            assert!(body.contains(&format!("\"id\":{id},")), "{id}: {body}");
        }
        let (_, body) = http_get(addr, "/reports?since=5&limit=5");
        assert!(body.starts_with("{\"total\":7,\"count\":5,"), "{body}");
        assert!(
            body.contains("\"id\":6,") && body.contains("\"id\":10,"),
            "{body}"
        );
        assert!(
            !body.contains("\"id\":5,") && !body.contains("\"id\":11,"),
            "{body}"
        );

        // Severity, template, and source filters.
        let (_, body) = http_get(addr, "/reports?severity=high");
        assert!(body.starts_with("{\"total\":6,"), "{body}");
        assert!(!body.contains("\"severity\":\"low\""), "{body}");
        let (_, body) = http_get(addr, "/reports?template=9");
        assert!(body.starts_with("{\"total\":6,"), "{body}");
        let (_, body) = http_get(addr, "/reports?source=3");
        assert!(body.starts_with("{\"total\":1,"), "{body}");
        assert!(body.contains("\"id\":3,"), "{body}");
        let (_, body) = http_get(addr, "/reports?severity=high&template=9&limit=2");
        assert!(body.starts_with("{\"total\":3,\"count\":2,"), "{body}");

        // Bad queries are 400s, not silently-empty result sets.
        for bad in [
            "/reports?bogus=1",
            "/reports?limit=0",
            "/reports?severity=purple",
            "/reports?since=1&since=2",
        ] {
            let (head, body) = http_get(addr, bad);
            assert!(head.starts_with("HTTP/1.1 400"), "{bad}: {head}");
            assert!(body.contains("\"error\":"), "{bad}: {body}");
        }
    }

    #[test]
    fn report_detail_joins_sampled_spans() {
        let (exporter, _ops) = spawn_ops_exporter();
        let addr = exporter.local_addr();
        // Report 1's provenance carries TraceId(1), which the test tracer
        // has a recorded span for.
        let (head, body) = http_get(addr, "/reports/1");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"report\":{\"id\":1,"), "{body}");
        assert!(body.contains("\"spans\":[{\"trace_id\":1,"), "{body}");
        assert_content_length(&head, &body);
        // Report 2 has no sampled spans: still 200, empty join.
        let (_, body) = http_get(addr, "/reports/2");
        assert!(body.ends_with("\"spans\":[]}"), "{body}");

        let (head, _) = http_get(addr, "/reports/999");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = http_get(addr, "/reports/abc");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    }

    #[test]
    fn post_config_applies_allowlisted_keys_and_rejects_others() {
        let (exporter, ops) = spawn_ops_exporter();
        let addr = exporter.local_addr();

        let (head, body) = http_get(addr, "/config");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.starts_with("{\"version\":0,"), "{body}");

        let (head, body) = http_post(addr, "/config", "on-overload=shed&trace-sample-rate=64");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.starts_with("{\"version\":1,"), "{body}");
        assert!(body.contains("\"on-overload\":\"shed\""), "{body}");
        assert!(body.contains("\"trace-sample-rate\":64"), "{body}");
        assert_content_length(&head, &body);
        assert_eq!(ops.reload.version(), 1);

        // A non-allowlisted key rejects the whole update: the snapshot
        // stays at version 1 with the values applied above.
        let (head, body) = http_post(addr, "/config", "state-dir=/tmp/elsewhere");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("\"error\":"), "{body}");
        assert_content_length(&head, &body);
        let (_, body) = http_get(addr, "/config");
        assert!(body.starts_with("{\"version\":1,"), "{body}");
        assert!(body.contains("\"on-overload\":\"shed\""), "{body}");

        // POST anywhere else is a 405.
        let (head, _) = http_post(addr, "/metrics", "x=y");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
    }

    #[test]
    fn readyz_gates_on_published_status_inputs() {
        let (exporter, ops) = spawn_ops_exporter();
        let addr = exporter.local_addr();
        let (head, body) = http_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let inputs = StatusInputs {
            delivery_spilling: true,
            ..StatusInputs::default()
        };
        ops.status.publish(inputs);
        let (head, body) = http_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(body.contains("\"ready\":false"), "{body}");
        assert!(body.contains("spilling"), "{body}");
        assert_content_length(&head, &body);

        // /status agrees: the same condition is its critical tier.
        let (head, body) = http_get(addr, "/status");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.starts_with("{\"status\":\"critical\""), "{body}");
        assert!(body.contains("\"config_version\":0"), "{body}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn readyz_reports_a_lost_router_link_as_degraded_not_503() {
        let (exporter, ops) = spawn_ops_exporter();
        let addr = exporter.local_addr();

        // The monitor lost its router but keeps serving local sources:
        // still ready, body carries the machine-readable reason.
        ops.status.publish(StatusInputs {
            router_link: Some(("degraded".to_string(), "router-link-lost".to_string())),
            ..StatusInputs::default()
        });
        let (head, body) = http_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"ready\":true"), "{body}");
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("router-link-lost"), "{body}");
        assert_content_length(&head, &body);

        // /status carries the same condition in its degraded tier plus a
        // structured cluster section.
        let (_, body) = http_get(addr, "/status");
        assert!(body.starts_with("{\"status\":\"degraded\""), "{body}");
        assert!(
            body.contains(
                "\"cluster\":{\"router_link\":\"degraded\",\"reason\":\"router-link-lost\"}"
            ),
            "{body}"
        );

        // Reconnected: back to the plain ok probe, cluster section shows
        // the healthy link.
        ops.status.publish(StatusInputs {
            router_link: Some(("connected".to_string(), String::new())),
            ..StatusInputs::default()
        });
        let (head, body) = http_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
        let (_, body) = http_get(addr, "/status");
        assert!(body.starts_with("{\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"router_link\":\"connected\""), "{body}");
    }

    /// Satellite guarantee: `/status` stays responsive while wedged
    /// clients (stalled connections and a slow-loris half-finished POST)
    /// sit on the same listener.
    #[test]
    fn status_answers_under_concurrent_scrapes_with_wedged_clients() {
        let (exporter, _ops) = spawn_ops_exporter();
        let addr = exporter.local_addr();
        // Two clients stall without sending a byte; one wedges mid-POST
        // (complete head, body never arrives).
        let _stalled_a = TcpStream::connect(addr).unwrap();
        let _stalled_b = TcpStream::connect(addr).unwrap();
        let mut loris = TcpStream::connect(addr).unwrap();
        loris
            .write_all(b"POST /config HTTP/1.1\r\nContent-Length: 4000\r\n\r\non-ov")
            .unwrap();

        let mut latencies: Vec<Duration> = (0..10)
            .map(|_| {
                let t0 = Instant::now();
                let (head, body) = http_get(addr, "/status");
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                assert!(body.starts_with("{\"status\":"), "{body}");
                t0.elapsed()
            })
            .collect();
        latencies.sort();
        let median = latencies[latencies.len() / 2];
        assert!(
            median < Duration::from_millis(250),
            "/status median {median:?} while clients wedged — head-of-line blocking"
        );
    }

    #[test]
    fn ops_routes_404_without_an_ops_state() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        for path in ["/reports", "/reports/1", "/status", "/config"] {
            let (head, body) = http_get(addr, path);
            assert!(head.starts_with("HTTP/1.1 404"), "{path}: {head}");
            assert!(body.contains("ops surface disabled"), "{path}: {body}");
        }
        // Liveness-style readiness still answers without ops state.
        let (head, body) = http_get(addr, "/readyz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
    }
}
