//! Metrics export endpoint.
//!
//! [`MetricsExporter`] is a minimal HTTP/1.1 server serving
//! [`crate::observe::MetricsSnapshot`] renderings and, when a [`Tracer`] is
//! attached, the span-tracing views:
//!
//! - `GET /metrics` — Prometheus text exposition format
//! - `GET /metrics.json` — JSON
//! - `GET /healthz` — liveness probe (200 `ok`)
//! - `GET /trace/{id}` — span tree of one sampled trace (JSON)
//! - `GET /flight` — current flight-recorder ring contents (JSON)
//!
//! Connections are served on the shared [`crate::net`] event loop: every
//! client gets its own non-blocking connection handler with a per-connection
//! read buffer, so one stalled or malicious peer can no longer head-of-line
//! block other scrapes (the old implementation accepted and served one
//! connection at a time inline), and readiness notification replaces the old
//! 20 ms accept poll, so an idle endpoint answers in microseconds instead of
//! up to a poll tick. No external HTTP crate — request parsing is the
//! minimum needed for `curl`/Prometheus: read the request head (capped at
//! 4 KiB, under an overall deadline enforced from the loop tick), match the
//! path.

use crate::net::{AsLoopFd, EventLoop, Handler, Interest, LoopCtx, Next};
use crate::observe::MetricsRegistry;
use crate::trace::Tracer;
use monilog_model::TraceId;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Upper bound on the bytes of request head we are willing to read.
/// Anything larger is a client error (431-ish; we answer 400).
const MAX_REQUEST_BYTES: usize = 4096;

/// Overall deadline for reading one request head. A client trickling one
/// byte at a time can never hold a response hostage longer than this; the
/// connection is routed (usually to a 400) with whatever arrived.
const READ_DEADLINE: Duration = Duration::from_secs(2);

/// Deadline for flushing a response once it is queued.
const WRITE_DEADLINE: Duration = Duration::from_secs(2);

/// Cap on post-response bytes we are willing to discard. Closing with
/// unread bytes in the receive buffer makes the kernel RST the connection,
/// which would destroy a 400 response before the client reads it — so we
/// keep reading (and dropping) up to this much while flushing.
const DRAIN_CAP: usize = 64 * 1024;

/// Rendered snapshot cache shared between the refresher and request
/// handling.
#[derive(Debug, Default)]
struct Rendered {
    prometheus: String,
    json: String,
}

/// Renders snapshots and answers routed requests. Shared between the
/// standalone [`MetricsExporter`] and the sources server, which mounts the
/// same endpoint on its own event loop.
pub(crate) struct MetricsService {
    registry: Arc<MetricsRegistry>,
    tracer: Option<Arc<Tracer>>,
    cache: Mutex<Rendered>,
}

impl MetricsService {
    pub(crate) fn new(registry: Arc<MetricsRegistry>, tracer: Option<Arc<Tracer>>) -> Self {
        let svc = MetricsService {
            registry,
            tracer,
            cache: Mutex::new(Rendered::default()),
        };
        svc.render();
        svc
    }

    /// Re-render the snapshot cache (called on accept and on the refresh
    /// interval, so a scrape never walks histogram buckets on the request
    /// path of a busy endpoint).
    pub(crate) fn render(&self) {
        let snapshot = self.registry.snapshot();
        let mut slot = self.cache.lock().expect("render cache");
        slot.prometheus = snapshot.to_prometheus();
        slot.json = snapshot.to_json();
    }

    fn route(&self, path: &str) -> (&'static str, &'static str, String) {
        route(path, &self.cache, self.tracer.as_deref())
    }
}

/// Periodic metrics exporter over a TCP/HTTP endpoint.
///
/// Spawn with [`MetricsExporter::spawn`]; the endpoint serves until the
/// exporter is dropped. Bind to port 0 to let the OS pick a free port and
/// read it back with [`MetricsExporter::local_addr`].
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` and start serving snapshots of `registry`, re-rendered
    /// every `interval`. `/trace/{id}` and `/flight` answer 404 — attach a
    /// tracer with [`MetricsExporter::spawn_with_tracer`] to enable them.
    pub fn spawn(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> io::Result<Self> {
        Self::spawn_with_tracer(addr, registry, interval, None)
    }

    /// Like [`MetricsExporter::spawn`], additionally serving the span
    /// tracer's `/trace/{id}` and `/flight` views.
    pub fn spawn_with_tracer(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
        tracer: Option<Arc<Tracer>>,
    ) -> io::Result<Self> {
        let listener = bind_reusable(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let service = Arc::new(MetricsService::new(registry, tracer));

        let mut event_loop = EventLoop::new()?;
        register_metrics_listener(&mut event_loop, listener, service, interval)?;

        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("monilog-metrics-exporter".into())
            .spawn(move || event_loop.run(stop_flag))
            .expect("spawn exporter thread");
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Register the `/metrics` listener + refresh tick on an event loop. Used by
/// the standalone exporter and by the sources server, which shares its loop
/// with the syslog/HTTP ingest endpoints.
pub(crate) fn register_metrics_listener(
    event_loop: &mut EventLoop,
    listener: TcpListener,
    service: Arc<MetricsService>,
    interval: Duration,
) -> io::Result<()> {
    let fd = listener.loop_fd();
    event_loop.register(
        fd,
        Box::new(MetricsListener {
            listener,
            service,
            interval,
            last_render: Instant::now(),
        }),
    )?;
    Ok(())
}

/// Bind the exporter socket with `SO_REUSEADDR` so a restarting process
/// (the crash-recovery path) can re-bind its old address while the dead
/// process's connections sit in TIME_WAIT. On targets without the raw
/// syscall shim — or if it fails — fall back to plain binds under a short
/// exponential backoff, which rides out the same window more slowly.
pub(crate) fn bind_reusable(addr: SocketAddr) -> io::Result<TcpListener> {
    let mut delay = Duration::from_millis(50);
    let mut last_err = None;
    for attempt in 0..5 {
        #[cfg(target_os = "linux")]
        let result = match addr {
            SocketAddr::V4(v4) => reuseaddr::bind_v4(v4).or_else(|_| TcpListener::bind(addr)),
            _ => TcpListener::bind(addr),
        };
        #[cfg(not(target_os = "linux"))]
        let result = TcpListener::bind(addr);
        match result {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = Some(e),
        }
        if attempt < 4 {
            thread::sleep(delay);
            delay *= 2;
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("bind failed")))
}

/// `socket(2)`/`setsockopt(2)`/`bind(2)`/`listen(2)` declared directly (no
/// libc crate) — the constants and `sockaddr_in` layout are Linux ABI.
#[cfg(target_os = "linux")]
mod reuseaddr {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::unix::io::FromRawFd;

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    #[repr(C)]
    struct SockAddrIn {
        sin_family: u16,
        /// Network byte order.
        sin_port: u16,
        /// Network byte order.
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const i32, optlen: u32) -> i32;
        fn bind(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn bind_v4(addr: SocketAddrV4) -> io::Result<TcpListener> {
        unsafe {
            let fd = socket(AF_INET, SOCK_STREAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let fail = |fd: i32| -> io::Error {
                let e = io::Error::last_os_error();
                close(fd);
                e
            };
            let one: i32 = 1;
            if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
                return Err(fail(fd));
            }
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_ne_bytes(addr.ip().octets()),
                sin_zero: [0; 8],
            };
            if bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) != 0 {
                return Err(fail(fd));
            }
            if listen(fd, 1024) != 0 {
                return Err(fail(fd));
            }
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Accepts scrape connections and hands each its own [`MetricsConn`].
struct MetricsListener {
    listener: TcpListener,
    service: Arc<MetricsService>,
    interval: Duration,
    last_render: Instant,
}

impl Handler for MetricsListener {
    fn ready(&mut self, _readable: bool, _writable: bool, ctx: &mut LoopCtx<'_>) -> Next {
        let mut accepted_any = false;
        loop {
            match self.listener.accept() {
                Ok((conn, _)) => {
                    accepted_any = true;
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let fd = conn.loop_fd();
                    ctx.register(fd, Box::new(MetricsConn::new(conn, self.service.clone())));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        if accepted_any {
            // Re-render on demand too, so a scrape right after a burst sees
            // fresh numbers even with a long refresh interval.
            self.service.render();
            self.last_render = Instant::now();
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        if now.duration_since(self.last_render) >= self.interval {
            self.service.render();
            self.last_render = now;
        }
        Next::Keep
    }
}

enum ConnPhase {
    /// Accumulating the request head.
    Reading,
    /// Response queued in `out`; flush, drain stragglers, then close.
    Writing { since: Instant },
}

/// One scrape connection: non-blocking, owns its read buffer, enforces the
/// head cap and deadlines from the loop tick.
struct MetricsConn {
    conn: TcpStream,
    service: Arc<MetricsService>,
    buf: Vec<u8>,
    out: Vec<u8>,
    phase: ConnPhase,
    opened: Instant,
    drained: usize,
}

impl MetricsConn {
    fn new(conn: TcpStream, service: Arc<MetricsService>) -> Self {
        MetricsConn {
            conn,
            service,
            buf: Vec::with_capacity(512),
            out: Vec::new(),
            phase: ConnPhase::Reading,
            opened: Instant::now(),
            drained: 0,
        }
    }

    fn respond(&mut self, status: &str, content_type: &str, body: &str) {
        self.out = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes();
        self.phase = ConnPhase::Writing {
            since: Instant::now(),
        };
    }

    /// Route whatever request head has arrived (possibly none, possibly
    /// over-cap garbage) and queue the response.
    fn route_now(&mut self) {
        if self.buf.len() > MAX_REQUEST_BYTES {
            self.respond(
                "400 Bad Request",
                "text/plain",
                "request head exceeds 4096 bytes\n",
            );
            return;
        }
        let head = String::from_utf8_lossy(&self.buf).into_owned();
        let (status, content_type, body) = match head.lines().next().map(parse_request_line) {
            None | Some(None) => (
                "400 Bad Request",
                "text/plain",
                "malformed request line\n".to_string(),
            ),
            Some(Some(path)) => self.service.route(&path),
        };
        self.respond(status, content_type, &body);
    }

    /// Read until `WouldBlock`. Returns false when the peer is gone.
    fn pump_read(&mut self) -> bool {
        let mut chunk = [0u8; 1024];
        loop {
            match self.conn.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => match self.phase {
                    ConnPhase::Reading => {
                        self.buf.extend_from_slice(&chunk[..n]);
                        if self.buf.len() > MAX_REQUEST_BYTES {
                            self.route_now();
                            return true;
                        }
                        // The request line is all we route on.
                        if self.buf.contains(&b'\n') {
                            self.route_now();
                            return true;
                        }
                    }
                    ConnPhase::Writing { .. } => {
                        // Drain (and drop) stragglers so close() does not
                        // RST the queued response away.
                        self.drained += n;
                        if self.drained > DRAIN_CAP {
                            return false;
                        }
                    }
                },
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Flush the queued response. `Ok(true)` = fully flushed.
    fn pump_write(&mut self) -> io::Result<bool> {
        while !self.out.is_empty() {
            match self.conn.write(&self.out) {
                Ok(0) => return Err(io::Error::other("peer stopped reading")),
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

impl Handler for MetricsConn {
    fn ready(&mut self, readable: bool, writable: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        if readable && !self.pump_read() {
            // EOF mid-request: nothing useful to say; EOF after the
            // response is queued: flush what we can below.
            if matches!(self.phase, ConnPhase::Reading) {
                return Next::Close;
            }
        }
        if let ConnPhase::Writing { .. } = self.phase {
            let _ = writable;
            match self.pump_write() {
                Ok(true) => {
                    // Drain any request bytes still queued (an over-cap head
                    // leaves some behind) so close() sends FIN, not RST,
                    // and the peer can read the whole response.
                    let _ = self.pump_read();
                    return Next::Close;
                }
                Ok(false) => {}
                Err(_) => return Next::Close,
            }
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        match self.phase {
            ConnPhase::Reading => {
                if now.duration_since(self.opened) >= READ_DEADLINE {
                    // Route whatever arrived (likely a 400) instead of
                    // holding the connection open forever.
                    self.route_now();
                    match self.pump_write() {
                        Ok(true) => {
                            let _ = self.pump_read();
                            return Next::Close;
                        }
                        Ok(false) => {}
                        Err(_) => return Next::Close,
                    }
                }
                Next::Keep
            }
            ConnPhase::Writing { since } => {
                if now.duration_since(since) >= WRITE_DEADLINE {
                    return Next::Close;
                }
                Next::Keep
            }
        }
    }

    fn interest(&self) -> Interest {
        Interest {
            read: true,
            write: !self.out.is_empty(),
        }
    }
}

/// Extract the path from `GET <path> HTTP/1.1`; `None` when the line is
/// not a plausible HTTP request line.
fn parse_request_line(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if !method.chars().all(|c| c.is_ascii_uppercase()) || !path.starts_with('/') {
        return None;
    }
    Some(path.to_string())
}

fn route(
    path: &str,
    cache: &Mutex<Rendered>,
    tracer: Option<&Tracer>,
) -> (&'static str, &'static str, String) {
    match path {
        // Liveness probe, shared convention with the delivery sinks'
        // healthcheck (`crate::sinks`): 200 + "ok" with no registry work.
        "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
        "/metrics" | "/" => {
            let rendered = cache.lock().expect("render cache");
            (
                "200 OK",
                "text/plain; version=0.0.4",
                rendered.prometheus.clone(),
            )
        }
        "/metrics.json" => {
            let rendered = cache.lock().expect("render cache");
            ("200 OK", "application/json", rendered.json.clone())
        }
        "/flight" => match tracer {
            Some(t) => ("200 OK", "application/json", t.flight_json()),
            None => (
                "404 Not Found",
                "application/json",
                "{\"error\":\"tracing disabled\"}\n".to_string(),
            ),
        },
        _ => match path.strip_prefix("/trace/") {
            Some(id) => match (id.parse::<u64>(), tracer) {
                (Err(_), _) | (Ok(0), _) => (
                    "400 Bad Request",
                    "application/json",
                    "{\"error\":\"trace id must be a positive integer\"}\n".to_string(),
                ),
                (Ok(_), None) => (
                    "404 Not Found",
                    "application/json",
                    "{\"error\":\"tracing disabled\"}\n".to_string(),
                ),
                (Ok(id), Some(t)) => match t.trace_json(TraceId(id)) {
                    Some(json) => ("200 OK", "application/json", json),
                    None => (
                        "404 Not Found",
                        "application/json",
                        format!("{{\"error\":\"no spans for trace {id}\"}}\n"),
                    ),
                },
            },
            None => (
                "404 Not Found",
                "text/plain",
                "not found; try /metrics, /metrics.json, /healthz, /trace/{id} or /flight\n"
                    .to_string(),
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineMetrics;
    use crate::observe::Stage;
    use crate::trace::{SpanRecord, SpanStage, TraceConfig};

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    /// Body length must match the advertised Content-Length exactly.
    fn assert_content_length(head: &str, body: &str) {
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        assert_eq!(len, body.len(), "Content-Length mismatch: {head}");
    }

    fn test_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::shared_with_shards(2);
        PipelineMetrics::add(&r.counters().lines_ingested, 42);
        r.stage(Stage::Parse).record(Duration::from_micros(15));
        r
    }

    fn test_tracer() -> Arc<Tracer> {
        let t = Tracer::shared(&TraceConfig::default(), 1);
        t.record(SpanRecord {
            trace: monilog_model::TraceId(1),
            stage: SpanStage::Parse,
            shard: 0,
            start_ns: 100,
            end_ns: 300,
            template: Some(4),
            cache_hit: Some(false),
        });
        t
    }

    #[test]
    fn serves_prometheus_over_http() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("monilog_lines_ingested_total 42"), "{body}");
        assert!(
            body.contains("monilog_stage_latency_seconds_count{stage=\"parse_exec\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("monilog_shard_queue_depth{shard=\"1\"}"),
            "{body}"
        );
    }

    #[test]
    fn serves_json_and_404() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"lines_ingested\":42"), "{body}");
        assert!(body.contains("\"parse_exec\":{\"count\":1"), "{body}");
        let (head, body) = http_get(exporter.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn scrape_sees_updates_after_spawn() {
        let registry = test_registry();
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_secs(3600), // interval irrelevant: scrape re-renders
        )
        .expect("bind");
        PipelineMetrics::add(&registry.counters().lines_parsed, 7);
        let (_, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(body.contains("monilog_lines_parsed_total 7"), "{body}");
    }

    #[test]
    fn drop_stops_the_listener() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        drop(exporter);
        // Port released: either connect fails or a fresh bind succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "exporter did not release {addr}");
    }

    #[test]
    fn serves_trace_and_flight_views() {
        let exporter = MetricsExporter::spawn_with_tracer(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
            Some(test_tracer()),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/trace/1");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.starts_with("{\"trace_id\":1,"), "{body}");
        assert!(body.contains("\"stage\":\"parse_exec\""), "{body}");
        assert_content_length(&head, &body);

        let (head, body) = http_get(exporter.local_addr(), "/flight");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"spans\":[{\"trace_id\":1,"), "{body}");
        assert_content_length(&head, &body);

        // Unknown trace id → 404; junk id → 400.
        let (head, body) = http_get(exporter.local_addr(), "/trace/999");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_content_length(&head, &body);
        let (head, body) = http_get(exporter.local_addr(), "/trace/bogus");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert_content_length(&head, &body);
    }

    #[test]
    fn trace_routes_404_without_a_tracer() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        for path in ["/trace/1", "/flight"] {
            let (head, body) = http_get(exporter.local_addr(), path);
            assert!(head.starts_with("HTTP/1.1 404"), "{path}: {head}");
            assert!(body.contains("tracing disabled"), "{path}: {body}");
            assert_content_length(&head, &body);
        }
    }

    #[test]
    fn restart_rebinds_the_same_address_immediately() {
        // A restarting process must be able to reclaim its metrics address
        // right away: bind, serve, drop, and rebind the same port twice.
        let registry = test_registry();
        let first = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_millis(50),
        )
        .expect("initial bind");
        let addr = first.local_addr();
        let (head, _) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        drop(first);
        for generation in 0..2 {
            let again =
                MetricsExporter::spawn(addr, Arc::clone(&registry), Duration::from_millis(50))
                    .unwrap_or_else(|e| panic!("rebind generation {generation} failed: {e}"));
            let (head, _) = http_get(again.local_addr(), "/metrics");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            assert_eq!(again.local_addr(), addr);
        }
    }

    #[test]
    fn bind_conflict_is_reported_after_retries() {
        // A port that stays occupied: bind_reusable must back off, retry,
        // and surface the error instead of hanging or panicking.
        let occupant = TcpListener::bind("127.0.0.1:0").expect("occupant");
        let addr = occupant.local_addr().unwrap();
        let started = std::time::Instant::now();
        let result = MetricsExporter::spawn(addr, test_registry(), Duration::from_millis(50));
        assert!(result.is_err(), "bind to an occupied port must fail");
        assert!(
            started.elapsed() >= Duration::from_millis(300),
            "failure must come after backoff retries, not instantly"
        );
    }

    #[test]
    fn healthz_answers_without_touching_the_registry() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");
        assert_content_length(&head, &body);
    }

    #[test]
    fn slow_loris_request_is_cut_off_at_the_overall_deadline() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        // Trickle bytes forever without completing a request line. The
        // overall deadline must cut the connection loose regardless.
        let addr = exporter.local_addr();
        let started = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET").unwrap();
        let mut answered = String::new();
        loop {
            if started.elapsed() > Duration::from_secs(8) {
                panic!("handler still holding the slow-loris connection");
            }
            if stream.write_all(b"X").is_err() {
                break; // handler gave up on us
            }
            stream
                .set_read_timeout(Some(Duration::from_millis(50)))
                .unwrap();
            let mut buf = [0u8; 512];
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    answered.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if answered.contains("\r\n\r\n") {
                        break;
                    }
                }
                Err(_) => {}
            }
            thread::sleep(Duration::from_millis(400));
        }
        assert!(
            started.elapsed() < Duration::from_secs(8),
            "deadline bounded the slow client"
        );
        // And the endpoint keeps serving real scrapes.
        let (head, _) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    #[test]
    fn oversized_and_malformed_requests_get_400() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        // A request line well past the 4 KiB cap: the exporter must answer
        // 400 instead of buffering without bound or hanging the loop.
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(8192));
        stream.write_all(huge.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("response split");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert_content_length(head, body);

        // Garbage that is not an HTTP request line at all.
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // The loop survives both and keeps serving.
        let (head, _) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    /// Regression for the head-of-line blocking bug: the old exporter
    /// accepted and served one connection at a time inline, so a client
    /// that connected and sent nothing delayed every other scrape by up to
    /// its 500 ms read timeout. On the event loop a stalled client costs
    /// other scrapes nothing.
    #[test]
    fn stalled_client_does_not_block_concurrent_scrapes() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        // Two clients connect and stall without sending a byte.
        let _stalled_a = TcpStream::connect(addr).unwrap();
        let _stalled_b = TcpStream::connect(addr).unwrap();

        let mut latencies: Vec<Duration> = (0..10)
            .map(|_| {
                let t0 = Instant::now();
                let (head, _) = http_get(addr, "/metrics");
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                t0.elapsed()
            })
            .collect();
        latencies.sort();
        let median = latencies[latencies.len() / 2];
        // The old inline loop paid ≥500 ms per stalled client per scrape;
        // use a generous CI-safe bound well below that.
        assert!(
            median < Duration::from_millis(250),
            "scrape median {median:?} while clients stalled — head-of-line blocking is back"
        );
    }

    /// Regression for the 20 ms accept busy-poll: readiness notification
    /// must answer an idle-endpoint scrape well under the old poll tick.
    #[test]
    fn idle_scrape_latency_beats_the_old_poll_tick() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_secs(3600),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        // Warm up (thread spawn, first render).
        let _ = http_get(addr, "/healthz");
        let mut latencies: Vec<Duration> = (0..20)
            .map(|_| {
                let t0 = Instant::now();
                let (head, _) = http_get(addr, "/healthz");
                assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
                t0.elapsed()
            })
            .collect();
        latencies.sort();
        let median = latencies[latencies.len() / 2];
        assert!(
            median < Duration::from_millis(20),
            "idle scrape median {median:?} — should be far below the old 20 ms accept poll"
        );
    }
}
