//! Metrics export endpoint.
//!
//! [`MetricsExporter`] is a minimal blocking HTTP/1.1 server on
//! `std::net::TcpListener` that serves [`crate::observe::MetricsSnapshot`]
//! renderings:
//!
//! - `GET /metrics` — Prometheus text exposition format
//! - `GET /metrics.json` — JSON
//!
//! A background thread re-renders the snapshot every `interval` (so a
//! scrape never walks the histogram buckets on the request path) and
//! accepts connections with a short poll timeout so `Drop` can stop it
//! promptly. No external HTTP crate — the request parsing is the minimum
//! needed for `curl`/Prometheus: read the first line, match the path.

use crate::observe::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Rendered snapshot cache shared between the refresher and request
/// handling.
#[derive(Debug, Default)]
struct Rendered {
    prometheus: String,
    json: String,
}

/// Periodic metrics exporter over a blocking TCP/HTTP endpoint.
///
/// Spawn with [`MetricsExporter::spawn`]; the endpoint serves until the
/// exporter is dropped. Bind to port 0 to let the OS pick a free port and
/// read it back with [`MetricsExporter::local_addr`].
#[derive(Debug)]
pub struct MetricsExporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Bind `addr` and start serving snapshots of `registry`, re-rendered
    /// every `interval`.
    pub fn spawn(
        addr: SocketAddr,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(true));
        let stop_flag = Arc::clone(&stop);
        stop.store(false, Ordering::Release);
        let handle = thread::Builder::new()
            .name("monilog-metrics-exporter".into())
            .spawn(move || serve_loop(listener, registry, interval, stop_flag))
            .expect("spawn exporter thread");
        Ok(MetricsExporter {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) {
    let cache = Mutex::new(Rendered::default());
    render_into(&registry, &cache);
    let mut since_render = Duration::ZERO;
    const POLL: Duration = Duration::from_millis(20);
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Re-render on demand too, so a scrape right after a burst
                // sees it even with a long interval.
                render_into(&registry, &cache);
                let _ = handle_request(stream, &cache);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(POLL);
                since_render += POLL;
                if since_render >= interval {
                    render_into(&registry, &cache);
                    since_render = Duration::ZERO;
                }
            }
            Err(_) => thread::sleep(POLL),
        }
    }
}

fn render_into(registry: &MetricsRegistry, cache: &Mutex<Rendered>) {
    let snapshot = registry.snapshot();
    let mut slot = cache.lock().expect("render cache");
    slot.prometheus = snapshot.to_prometheus();
    slot.json = snapshot.to_json();
}

fn handle_request(mut stream: TcpStream, cache: &Mutex<Rendered>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = {
        let rendered = cache.lock().expect("render cache");
        match path {
            "/metrics" | "/" => (
                "200 OK",
                "text/plain; version=0.0.4",
                rendered.prometheus.clone(),
            ),
            "/metrics.json" => ("200 OK", "application/json", rendered.json.clone()),
            _ => (
                "404 Not Found",
                "text/plain",
                "not found; try /metrics or /metrics.json\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineMetrics;
    use crate::observe::Stage;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect exporter");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_string(), body.to_string())
    }

    fn test_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::shared_with_shards(2);
        PipelineMetrics::add(&r.counters().lines_ingested, 42);
        r.stage(Stage::Parse).record(Duration::from_micros(15));
        r
    }

    #[test]
    fn serves_prometheus_over_http() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain"), "{head}");
        assert!(body.contains("monilog_lines_ingested_total 42"), "{body}");
        assert!(
            body.contains("monilog_stage_latency_seconds_count{stage=\"parse_exec\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("monilog_shard_queue_depth{shard=\"1\"}"),
            "{body}"
        );
    }

    #[test]
    fn serves_json_and_404() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert!(body.contains("\"lines_ingested\":42"), "{body}");
        assert!(body.contains("\"parse_exec\":{\"count\":1"), "{body}");
        let (head, _) = http_get(exporter.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn scrape_sees_updates_after_spawn() {
        let registry = test_registry();
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            Duration::from_secs(3600), // interval irrelevant: scrape re-renders
        )
        .expect("bind");
        PipelineMetrics::add(&registry.counters().lines_parsed, 7);
        let (_, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(body.contains("monilog_lines_parsed_total 7"), "{body}");
    }

    #[test]
    fn drop_stops_the_listener() {
        let exporter = MetricsExporter::spawn(
            "127.0.0.1:0".parse().unwrap(),
            test_registry(),
            Duration::from_millis(50),
        )
        .expect("bind");
        let addr = exporter.local_addr();
        drop(exporter);
        // Port released: either connect fails or a fresh bind succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "exporter did not release {addr}");
    }
}
