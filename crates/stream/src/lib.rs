//! # monilog-stream
//!
//! The distributed streaming substrate of MoniLog (Section II: "It is
//! important for MoniLog components to be distributable in order to ensure
//! scalability").
//!
//! - [`merge`] — k-way merging of per-source streams with a bounded
//!   reorder buffer, absorbing the transport noise of Section I ("logs can
//!   arrive in mixed order or sometimes be duplicated"): watermark-based
//!   release plus duplicate suppression by `(source, seq)`.
//! - [`partition`] — deterministic hash partitioning of a stream across
//!   workers.
//! - [`pipeline`] — parallel stages over crossbeam channels, including the
//!   multi-threaded sharded-Drain runner measured by experiment D1.
//! - [`service`] — the long-lived deployment shape: standing Drain workers
//!   behind bounded queues with end-to-end backpressure.
//! - [`supervisor`] — the fault-tolerant deployment shape: the service
//!   topology plus per-line retry/quarantine, crashed-worker respawn that
//!   keeps template ids stable, crash-loop degradation, and configurable
//!   overload policies.
//! - [`chaos`] — deterministic fault injection (worker kills, poison
//!   lines, transient faults) for testing the supervisor's guarantees.
//! - [`ring`] — single-producer/single-consumer rings with a batched
//!   doorbell, the router→shard transport inside [`service`].
//! - [`affinity`] — best-effort thread-per-core pinning for shard
//!   workers.
//! - [`config`] — typed configuration errors, router batch tuning
//!   ([`config::BatchConfig`]), and the overload-policy vocabulary shared
//!   with the CLI.
//! - [`durable`] — the write-ahead ingest journal, atomic generational
//!   checkpoints, the persistent dead-letter log, and shutdown
//!   signalling: crash recovery across process restarts.
//! - [`metrics`] — cheap shared counters for pipeline observability.
//! - [`observe`] — stage latency histograms, shard gauges, and the typed
//!   [`observe::MetricsSnapshot`] with Prometheus/JSON renderings.
//! - [`export`] — the periodic exporter thread serving snapshots over a
//!   minimal blocking HTTP endpoint.
//! - [`ops`] — the live operations surface on the same listener: the
//!   queryable anomaly report store (`/reports`), the `/status` health
//!   rollup and `/readyz` gate, and hot config reload (`POST /config`,
//!   SIGHUP) through a versioned atomic-swap snapshot.
//! - [`sinks`] — at-least-once anomaly delivery: HTTP/TCP/file sinks
//!   behind a disk-buffered [`sinks::DeliveryPipeline`] with capped
//!   backoff, per-sink circuit breakers and spill-file degradation.
//! - [`net`] — the minimal epoll-based event loop shared by every network
//!   endpoint (ingest sources and the metrics exporter).
//! - [`sources`] — network ingestion: TCP/UDP syslog (RFC 3164/5424,
//!   LF and octet-counting framing), HTTP bulk ingest, and checkpointed
//!   file tailing, all with backpressure into the bounded ingest queue.

pub mod affinity;
pub mod chaos;
pub mod cluster;
pub mod config;
pub mod durable;
pub mod export;
pub mod merge;
pub mod metrics;
pub mod net;
pub mod observe;
pub mod ops;
pub mod partition;
pub mod pipeline;
pub mod ring;
pub mod service;
pub mod sinks;
pub mod sources;
pub mod supervisor;
pub mod trace;

pub use chaos::{
    FaultContext, FaultInjector, FaultPlan, FlakyLinkProxy, FlakySourceClient, SourceChaosStats,
    SourceFault, WorkerKill,
};
pub use cluster::{
    is_router_source, rendezvous_owner, ClusterMailbox, LinkSnapshot, LinkState, Router,
    RouterConfig, RouterLinkConfig, RouterStats, ROUTER_SOURCE_BASE,
};
pub use config::{BatchConfig, ConfigError, OverloadPolicy, RetryPolicy};
pub use durable::{
    install_reload_handler, install_shutdown_handler, shutdown_requested, take_reload_request,
    CheckpointStore, DeadLetterLog, DurabilityError, Journal, JournalConfig, LoadedCheckpoint,
};
pub use export::MetricsExporter;
pub use merge::{BoundedReorderBuffer, DedupFilter};
pub use metrics::PipelineMetrics;
pub use net::{AsLoopFd, EventLoop, Handler, Interest, LoopCtx, Next};
pub use observe::{
    Exemplar, HistogramSnapshot, LatencyHistogram, MetricsRegistry, MetricsSnapshot, RateSnapshot,
    ShardGauges, ShardSnapshot, SizeHistogram, SizeSnapshot, Stage, StageSnapshot,
};
pub use ops::{
    ConfigSnapshot, OpsState, ReloadableConfig, ReportStore, ReportsQuery, StatusBoard,
    StatusInputs, StatusLevel, StoredReport, DEFAULT_LATENCY_BUDGET_MS, DEFAULT_REPORT_CAPACITY,
    RELOADABLE_KEYS,
};
pub use partition::HashPartitioner;
pub use pipeline::{parallel_map, ParallelShardedDrain};
pub use sinks::{
    BreakerConfig, BreakerState, BufferPosition, BufferedReport, CircuitBreaker, DeliveryBuffer,
    DeliveryConfig, DeliveryPipeline, DeliveryWorker, FileSink, FramedTcpSink, RouteSpec, Sink,
    SinkError, WebhookSink,
};
pub use sources::{
    FrameDecoder, FrameError, GlobResume, MetricsEndpoint, SourceEvent, SourceQueue, SourcesConfig,
    SourcesServer, SyslogMessage, TailCursor, TailGlobSpec, TailSpec, HTTP_SOURCE,
    SYSLOG_TCP_SOURCE, SYSLOG_UDP_SOURCE, TAIL_SOURCE_BASE,
};
pub use trace::{
    SpanRecord, SpanStage, TraceConfig, Tracer, DEFAULT_FLIGHT_CAPACITY, DEFAULT_SAMPLE_RATE,
};

// `service::SubmitError` stays module-scoped: the lib root re-exports the
// supervisor's richer `SubmitError` below, and the two must not collide.
pub use service::{
    Item, ParsedItem, ShardedParseService, TrySubmitError, BATCH_FLUSH_INTERVAL, MAX_BATCH,
    SHARD_ID_STRIDE,
};
pub use supervisor::{
    DeadLetter, FailureReason, ShardHealth, SubmitError, SubmitOutcome, SupervisedParseService,
    SupervisorConfig, CATCH_ALL_TEMPLATE_ID,
};
