//! # monilog-stream
//!
//! The distributed streaming substrate of MoniLog (Section II: "It is
//! important for MoniLog components to be distributable in order to ensure
//! scalability").
//!
//! - [`merge`] — k-way merging of per-source streams with a bounded
//!   reorder buffer, absorbing the transport noise of Section I ("logs can
//!   arrive in mixed order or sometimes be duplicated"): watermark-based
//!   release plus duplicate suppression by `(source, seq)`.
//! - [`partition`] — deterministic hash partitioning of a stream across
//!   workers.
//! - [`pipeline`] — parallel stages over crossbeam channels, including the
//!   multi-threaded sharded-Drain runner measured by experiment D1.
//! - [`service`] — the long-lived deployment shape: standing Drain workers
//!   behind bounded queues with end-to-end backpressure.
//! - [`metrics`] — cheap shared counters for pipeline observability.

pub mod merge;
pub mod metrics;
pub mod partition;
pub mod pipeline;
pub mod service;

pub use merge::{BoundedReorderBuffer, DedupFilter};
pub use metrics::PipelineMetrics;
pub use partition::HashPartitioner;
pub use pipeline::{parallel_map, ParallelShardedDrain};
pub use service::{ParsedItem, ShardedParseService, SHARD_ID_STRIDE};
