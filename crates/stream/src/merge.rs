//! Stream reordering and deduplication.
//!
//! "The spatial distance between log sources and the different storage
//! systems is variable. This configuration induces noise, as logs can
//! arrive in mixed order or sometimes be duplicated." (Section I)
//!
//! [`BoundedReorderBuffer`] restores timestamp order for any input whose
//! disorder is bounded by `max_disorder_ms`: an item is released once the
//! watermark (max timestamp seen − bound) passes it. [`DedupFilter`]
//! suppresses transport duplicates by `(source, seq)` with a bounded
//! memory window.

use monilog_model::{SourceId, Timestamp};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Watermark-based reorder buffer over items carrying a timestamp.
#[derive(Debug)]
pub struct BoundedReorderBuffer<T> {
    bound_ms: u64,
    heap: BinaryHeap<Reverse<(Timestamp, u64, HeapItem<T>)>>,
    max_seen: Timestamp,
    tie: u64,
}

/// Wrapper so T doesn't need Ord; comparison never reaches the payload
/// because the `tie` counter is unique.
#[derive(Debug)]
struct HeapItem<T>(T);

impl<T> PartialEq for HeapItem<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for HeapItem<T> {}
impl<T> PartialOrd for HeapItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapItem<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> BoundedReorderBuffer<T> {
    /// A buffer absorbing at most `bound_ms` of disorder.
    pub fn new(bound_ms: u64) -> Self {
        BoundedReorderBuffer {
            bound_ms,
            heap: BinaryHeap::new(),
            max_seen: Timestamp::EPOCH,
            tie: 0,
        }
    }

    /// Number of items currently buffered.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Push an item; returns every item whose release the new watermark
    /// allows, in timestamp order. Release is inclusive of the watermark:
    /// an item timestamped exactly `max_seen - bound` has fully elapsed
    /// the disorder bound, so it is released rather than held for the next
    /// watermark advance. (An equal-timestamp straggler arriving later is
    /// still emitted — output stays non-strictly sorted.)
    pub fn push(&mut self, ts: Timestamp, item: T) -> Vec<(Timestamp, T)> {
        let mut out = Vec::new();
        self.push_into(ts, item, &mut out);
        out
    }

    /// Allocation-free [`BoundedReorderBuffer::push`]: releases are
    /// appended to a caller-owned buffer, so the per-line release vector
    /// can be recycled by a streaming caller. `out` is not cleared.
    pub fn push_into(&mut self, ts: Timestamp, item: T, out: &mut Vec<(Timestamp, T)>) {
        self.max_seen = self.max_seen.max(ts);
        self.heap.push(Reverse((ts, self.tie, HeapItem(item))));
        self.tie += 1;
        let watermark =
            Timestamp::from_millis(self.max_seen.as_millis().saturating_sub(self.bound_ms));
        while let Some(Reverse((t, _, _))) = self.heap.peek() {
            if *t > watermark {
                break;
            }
            let Reverse((t, _, HeapItem(v))) = self.heap.pop().expect("peeked");
            out.push((t, v));
        }
    }

    /// Drain everything left (end of stream), in timestamp order.
    pub fn flush(&mut self) -> Vec<(Timestamp, T)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(Reverse((t, _, HeapItem(v)))) = self.heap.pop() {
            out.push((t, v));
        }
        out
    }

    /// The watermark anchor: the highest timestamp pushed so far.
    pub fn max_seen(&self) -> Timestamp {
        self.max_seen
    }

    /// Drop buffered items failing the predicate — the purge path when a
    /// cluster source is revoked mid-stream. The watermark anchor is
    /// untouched: revocation must not un-release anything.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        let items = std::mem::take(&mut self.heap).into_vec();
        self.heap = items
            .into_iter()
            .filter(|Reverse((_, _, HeapItem(v)))| keep(v))
            .collect();
    }

    /// Rebuild a buffer from a [`BoundedReorderBuffer::snapshot`]: items
    /// are re-inserted (in the given order, which preserves arrival
    /// tie-breaks) without triggering any release, and the watermark
    /// anchor is restored so the first post-restore push behaves exactly
    /// as it would have in the original instance.
    pub fn restore(bound_ms: u64, items: Vec<(Timestamp, T)>, max_seen: Timestamp) -> Self {
        let mut b = Self::new(bound_ms);
        b.max_seen = max_seen;
        for (t, v) in items {
            b.heap.push(Reverse((t, b.tie, HeapItem(v))));
            b.tie += 1;
        }
        b
    }
}

impl<T: Clone> BoundedReorderBuffer<T> {
    /// Non-destructive snapshot of the buffered items in release order
    /// (timestamp, then arrival) — the durable checkpoint's view of
    /// in-flight records. Pair with [`BoundedReorderBuffer::max_seen`].
    pub fn snapshot(&self) -> Vec<(Timestamp, T)> {
        let mut items: Vec<(Timestamp, u64, T)> = self
            .heap
            .iter()
            .map(|Reverse((t, tie, HeapItem(v)))| (*t, *tie, v.clone()))
            .collect();
        items.sort_by_key(|&(t, tie, _)| (t, tie));
        items.into_iter().map(|(t, _, v)| (t, v)).collect()
    }
}

/// Multiply-xor hasher for the dedup key set. The keys are fixed-width
/// `(SourceId, u64)` pairs from trusted transport metadata, not
/// attacker-chosen strings, so SipHash's flooding resistance buys nothing
/// on this per-line probe.
#[derive(Debug, Default, Clone)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type KeyBuild = std::hash::BuildHasherDefault<KeyHasher>;

/// Sliding-window duplicate suppression by `(source, seq)`.
#[derive(Debug)]
pub struct DedupFilter {
    window: usize,
    seen: HashSet<(SourceId, u64), KeyBuild>,
    order: VecDeque<(SourceId, u64)>,
}

impl DedupFilter {
    /// Remembers the last `window` keys.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        DedupFilter {
            window,
            seen: HashSet::default(),
            order: VecDeque::new(),
        }
    }

    /// The remembered keys in insertion order — the durable checkpoint's
    /// view of the dedup window.
    pub fn keys(&self) -> impl Iterator<Item = (SourceId, u64)> + '_ {
        self.order.iter().copied()
    }

    /// The configured window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Rebuild a filter from [`DedupFilter::keys`] output (in the same
    /// order, so eviction resumes identically).
    pub fn restore(window: usize, keys: impl IntoIterator<Item = (SourceId, u64)>) -> Self {
        let mut d = Self::new(window);
        for (source, seq) in keys {
            d.admit(source, seq);
        }
        d
    }

    /// Returns `true` the first time a key is seen (keep the item),
    /// `false` for duplicates within the window.
    pub fn admit(&mut self, source: SourceId, seq: u64) -> bool {
        let key = (source, seq);
        if !self.seen.insert(key) {
            return false;
        }
        self.order.push_back(key);
        if self.order.len() > self.window {
            let evicted = self.order.pop_front().expect("non-empty");
            self.seen.remove(&evicted);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(buffer: &mut BoundedReorderBuffer<u32>, items: &[(u64, u32)]) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        for &(ts, v) in items {
            out.extend(
                buffer
                    .push(Timestamp::from_millis(ts), v)
                    .into_iter()
                    .map(|(t, v)| (t.as_millis(), v)),
            );
        }
        out.extend(buffer.flush().into_iter().map(|(t, v)| (t.as_millis(), v)));
        out
    }

    #[test]
    fn restores_order_within_bound() {
        let mut b = BoundedReorderBuffer::new(100);
        let scrambled = [
            (50u64, 1u32),
            (10, 0),
            (120, 3),
            (80, 2),
            (300, 5),
            (250, 4),
        ];
        let out = drain_all(&mut b, &scrambled);
        let times: Vec<u64> = out.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10, 50, 80, 120, 250, 300]);
        assert_eq!(
            out.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn releases_lazily_by_watermark() {
        let mut b = BoundedReorderBuffer::new(100);
        assert!(b.push(Timestamp::from_millis(1_000), 'a').is_empty());
        assert!(
            b.push(Timestamp::from_millis(1_050), 'b').is_empty(),
            "within bound: hold"
        );
        let released = b.push(Timestamp::from_millis(1_200), 'c');
        // watermark = 1100: releases 1000 and 1050.
        assert_eq!(released.len(), 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn equal_timestamps_preserve_arrival_order() {
        let mut b = BoundedReorderBuffer::new(10);
        b.push(Timestamp::from_millis(5), "first");
        b.push(Timestamp::from_millis(5), "second");
        let out = b.flush();
        assert_eq!(out[0].1, "first");
        assert_eq!(out[1].1, "second");
    }

    #[test]
    fn zero_bound_is_passthrough_in_order() {
        // With a zero disorder bound, an item is at the watermark the
        // moment it arrives: release is immediate.
        let mut b = BoundedReorderBuffer::new(0);
        let out = b.push(Timestamp::from_millis(10), 1);
        assert_eq!(out.len(), 1, "zero bound releases immediately");
        let out = b.push(Timestamp::from_millis(11), 2);
        assert_eq!(out.len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn releases_item_exactly_at_watermark() {
        // Regression: an item timestamped exactly `max_seen - bound` used
        // to be held until the *next* watermark advance even though the
        // bound had fully elapsed.
        let mut b = BoundedReorderBuffer::new(100);
        assert!(b.push(Timestamp::from_millis(1_000), 'a').is_empty());
        let released = b.push(Timestamp::from_millis(1_100), 'b');
        // watermark = 1000: 'a' has elapsed the full bound — release it.
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0.as_millis(), 1_000);
        assert_eq!(b.len(), 1, "'b' itself is above the watermark");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Fill two buffers identically, snapshot/restore one, and check
        // the pair stays line-for-line identical on a continuation that
        // exercises held items, watermark releases, and ties.
        let feed = [(1_000u64, 'a'), (1_050, 'b'), (1_020, 'c'), (1_050, 'd')];
        let mut original = BoundedReorderBuffer::new(100);
        let mut shadow = BoundedReorderBuffer::new(100);
        for &(ts, v) in &feed {
            original.push(Timestamp::from_millis(ts), v);
            shadow.push(Timestamp::from_millis(ts), v);
        }
        let items = original.snapshot();
        assert_eq!(items.len(), original.len());
        let mut restored = BoundedReorderBuffer::restore(100, items, original.max_seen());
        assert_eq!(restored.len(), shadow.len());
        assert_eq!(restored.max_seen(), shadow.max_seen());
        for &(ts, v) in &[(1_120u64, 'e'), (1_050, 'f'), (1_400, 'g')] {
            assert_eq!(
                restored.push(Timestamp::from_millis(ts), v),
                shadow.push(Timestamp::from_millis(ts), v),
                "divergence at ts {ts}"
            );
        }
        assert_eq!(restored.flush(), shadow.flush());
    }

    #[test]
    fn dedup_restore_preserves_window_and_order() {
        let mut original = DedupFilter::new(3);
        for seq in [1u64, 2, 3, 4] {
            original.admit(SourceId(0), seq);
        }
        let keys: Vec<_> = original.keys().collect();
        assert_eq!(keys.len(), 3, "window caps remembered keys");
        let mut restored = DedupFilter::restore(original.window(), keys);
        // Same memory: 2..4 are duplicates, evicted 1 admits again, and
        // eviction order continues from the restored state.
        assert!(restored.admit(SourceId(0), 1));
        assert!(!restored.admit(SourceId(0), 4));
        assert!(!original.admit(SourceId(0), 4), "original agrees");
    }

    #[test]
    fn dedup_suppresses_duplicates() {
        let mut d = DedupFilter::new(100);
        assert!(d.admit(SourceId(0), 1));
        assert!(!d.admit(SourceId(0), 1));
        assert!(d.admit(SourceId(1), 1), "same seq, different source");
        assert!(d.admit(SourceId(0), 2));
    }

    #[test]
    fn dedup_window_evicts_old_keys() {
        let mut d = DedupFilter::new(2);
        assert!(d.admit(SourceId(0), 1));
        assert!(d.admit(SourceId(0), 2));
        assert!(d.admit(SourceId(0), 3)); // evicts key 1
        assert!(d.admit(SourceId(0), 1), "evicted key admitted again");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any input whose disorder is bounded by `bound`, the output
        /// is perfectly sorted and complete.
        #[test]
        fn sorts_any_bounded_disorder(base in proptest::collection::vec(0u64..10_000, 1..200),
                                      bound in 1u64..500) {
            // Build a bounded-disorder arrival sequence: sort, then jitter
            // each timestamp's *arrival position* within the bound.
            let mut emitted: Vec<u64> = base.clone();
            emitted.sort_unstable();
            let mut arrivals: Vec<(u64, u64)> = emitted
                .iter()
                .enumerate()
                .map(|(i, &t)| (t + (i as u64 * 7919) % bound, t))
                .collect();
            arrivals.sort_by_key(|(arrival, _)| *arrival);

            let mut buffer = BoundedReorderBuffer::new(bound);
            let mut out = Vec::new();
            for (_, emitted_ts) in &arrivals {
                out.extend(buffer.push(Timestamp::from_millis(*emitted_ts), ()));
            }
            out.extend(buffer.flush());
            prop_assert_eq!(out.len(), base.len(), "items lost or duplicated");
            for w in out.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "output out of order");
            }
        }

        /// Dedup + reorder as a noisy-transport front end: arrivals that
        /// are duplicated, displaced by up to *exactly* the bound, and
        /// replayed in a burst (transport reconnect) come out exactly-once
        /// and sorted. This is the Section I noise model end to end.
        #[test]
        fn exactly_once_in_order_under_transport_noise(
            n in 2usize..120,
            bound in 1u64..100,
            dup_every in 2usize..8,
            replay_len in 1usize..16,
        ) {
            // Ground truth: one event per seq, 1 ms apart. Arrival key
            // displaces each event by (seq*7919) mod (bound+1) — the
            // modulus is inclusive of `bound`, so some events land on the
            // exact edge of what the buffer guarantees to absorb.
            let mut arrivals: Vec<(u64, u64)> = (0..n as u64)
                .map(|seq| (seq + (seq * 7919) % (bound + 1), seq))
                .collect();
            // Transport duplication of every dup_every-th event...
            let dups: Vec<(u64, u64)> = arrivals
                .iter()
                .filter(|(_, seq)| *seq as usize % dup_every == 0)
                .copied()
                .collect();
            arrivals.extend(dups);
            // ...plus a reconnect that replays the most recent burst.
            let replay: Vec<(u64, u64)> =
                arrivals[arrivals.len().saturating_sub(replay_len)..].to_vec();
            arrivals.extend(replay);
            arrivals.sort_by_key(|&(arrival, seq)| (arrival, seq));

            let mut dedup = DedupFilter::new(n);
            let mut buffer = BoundedReorderBuffer::new(bound);
            let mut out: Vec<u64> = Vec::new();
            for &(_, seq) in &arrivals {
                if !dedup.admit(SourceId(0), seq) {
                    continue;
                }
                out.extend(
                    buffer
                        .push(Timestamp::from_millis(seq), seq)
                        .into_iter()
                        .map(|(t, _)| t.as_millis()),
                );
            }
            out.extend(buffer.flush().into_iter().map(|(t, _)| t.as_millis()));
            prop_assert_eq!(out.len(), n, "each event exactly once");
            for w in out.windows(2) {
                prop_assert!(w[0] <= w[1], "output out of order");
            }
        }

        /// Exact-boundary displacement: every event arrives displaced by
        /// *exactly* the bound (the worst case the buffer guarantees to
        /// absorb), and release at the watermark edge must still produce
        /// complete, sorted output.
        #[test]
        fn sorts_exact_boundary_displacement(
            n in 2usize..150,
            bound in 1u64..200,
        ) {
            // Events emitted 1 ms apart; each odd event arrives exactly
            // `bound` late, interleaving maximal disorder at the edge.
            let mut arrivals: Vec<(u64, u64)> = (0..n as u64)
                .map(|seq| {
                    let displacement = if seq % 2 == 1 { bound } else { 0 };
                    (seq + displacement, seq)
                })
                .collect();
            arrivals.sort_by_key(|&(arrival, seq)| (arrival, seq));

            let mut buffer = BoundedReorderBuffer::new(bound);
            let mut out: Vec<u64> = Vec::new();
            for &(_, seq) in &arrivals {
                out.extend(
                    buffer
                        .push(Timestamp::from_millis(seq), seq)
                        .into_iter()
                        .map(|(t, _)| t.as_millis()),
                );
            }
            out.extend(buffer.flush().into_iter().map(|(t, _)| t.as_millis()));
            prop_assert_eq!(out.len(), n, "items lost or duplicated");
            for w in out.windows(2) {
                prop_assert!(w[0] <= w[1], "output out of order at the boundary");
            }
        }

        /// DedupFilter with a large-enough window is an exact first-seen
        /// filter, whatever the key stream looks like.
        #[test]
        fn dedup_matches_first_seen_semantics(
            keys in proptest::collection::vec((0u16..4, 0u64..50), 1..300),
        ) {
            let mut dedup = DedupFilter::new(10_000);
            let mut seen = std::collections::HashSet::new();
            for (src, seq) in keys {
                let fresh = seen.insert((src, seq));
                prop_assert_eq!(dedup.admit(SourceId(src), seq), fresh);
            }
        }
    }
}
