//! Pipeline observability counters.
//!
//! Cheap, shareable atomics — stages on different threads bump them
//! without coordination; the monitoring loop reads a consistent-enough
//! snapshot.
//!
//! ## Counter semantics
//!
//! Ingestion and parsing:
//! - `lines_ingested` — raw lines accepted into the pipeline.
//! - `lines_parsed` — lines that produced a parse outcome.
//! - `header_errors` — lines whose header failed to parse.
//! - `duplicates_dropped` — lines suppressed by the dedup filter.
//! - `templates_discovered` — new templates minted by the parser.
//! - `anomalies_reported` — anomaly reports emitted downstream.
//!
//! Fault tolerance (see [`crate::supervisor`]):
//! - `worker_restarts` — shard workers respawned after a crash; each
//!   restart warm-starts from the shard's last template snapshot.
//! - `lines_quarantined` — lines moved to the dead-letter queue, either
//!   after exhausting parse retries (poison lines) or because they were
//!   in flight when a worker crashed, or shed there by the
//!   `DeadLetter` overload policy.
//! - `lines_shed` — lines dropped at `submit()` by the `ShedToCatchAll`
//!   overload policy and accounted to the reserved catch-all template.
//! - `retries_attempted` — individual parse retry attempts (a line that
//!   succeeds on its second try contributes 1).
//!
//! Batched fast path (see [`crate::service`] and the Drain match cache):
//! - `batches_submitted` — batches accepted by `submit_batch` (a single
//!   `submit` counts as a batch of one).
//! - `cache_hits` / `cache_misses` — per-shard Drain match-cache outcomes,
//!   summed across shards. Hit rate = hits / (hits + misses).
//!
//! Durability (see [`crate::durable`]):
//! - `checkpoints_written` — durable pipeline checkpoints committed to the
//!   state directory.
//! - `journal_bytes` — bytes appended to the write-ahead ingest journal.
//! - `recovery_replayed_lines` — journal lines replayed into the pipeline
//!   during crash recovery (0 after a graceful drain).
//!
//! Anomaly delivery (see [`crate::sinks`]):
//! - `reports_accepted` — reports durably appended to a delivery buffer
//!   (the point of no loss: accepted reports survive SIGKILL).
//! - `reports_delivered` — reports acknowledged by a sink.
//! - `delivery_retries` — failed delivery attempts that will be retried
//!   with backoff.
//! - `delivery_failures` — reports diverted to the spill file after a
//!   fatal (non-retryable) sink error.
//! - `reports_spilled` — reports written to a local spill file, either on
//!   fatal errors or when a circuit breaker stayed open past its grace
//!   deadline (degraded but never dropped).
//! - `breaker_opened` / `breaker_half_open` — circuit-breaker transitions
//!   into Open (sink quarantined) and HalfOpen (probe allowed).
//! - `spill_bytes_dropped` / `dlq_bytes_dropped` — bytes deleted when the
//!   spill file or dead-letter queue rotated past its retained-generation
//!   cap.
//!
//! Network sources (see [`crate::sources`]):
//! - `sources_connections` / `sources_disconnects` — TCP connections
//!   accepted / closed by the syslog and HTTP ingest listeners (active
//!   connections = the difference).
//! - `sources_lines` — lines accepted into the ingest queue across every
//!   network source.
//! - `sources_lines_shed` — lines dropped at the source boundary by a full
//!   queue (Shed policy, UDP under any policy).
//! - `sources_dead_lettered` — lines diverted to the dead-letter log by
//!   the `DeadLetter` overload policy at the source boundary.
//! - `sources_frame_errors` — framing failures: octet-count desync,
//!   oversized lines, frames torn by a mid-frame disconnect.
//! - `sources_paused` — times a TCP connection or file tail paused reads
//!   because the ingest queue was full (Block policy backpressure).
//! - `sources_http_rejected` — HTTP ingest requests refused with
//!   413/429/408.
//! - `sources_udp_truncated` — UDP datagrams that filled the receive
//!   buffer exactly (probable kernel truncation).
//!
//! Live ops surface (see [`crate::ops`]):
//! - `config_reloads_applied` — hot config snapshots accepted and swapped
//!   in (SIGHUP file re-reads and `POST /config` updates).
//! - `config_reload_rejected` — reload attempts refused with the previous
//!   snapshot left in place (unknown key, unparseable value, unreadable
//!   config file).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters of one pipeline run.
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    pub lines_ingested: AtomicU64,
    pub lines_parsed: AtomicU64,
    pub header_errors: AtomicU64,
    pub duplicates_dropped: AtomicU64,
    pub templates_discovered: AtomicU64,
    pub anomalies_reported: AtomicU64,
    pub worker_restarts: AtomicU64,
    pub lines_quarantined: AtomicU64,
    pub lines_shed: AtomicU64,
    pub retries_attempted: AtomicU64,
    pub batches_submitted: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub checkpoints_written: AtomicU64,
    pub journal_bytes: AtomicU64,
    pub recovery_replayed_lines: AtomicU64,
    pub reports_accepted: AtomicU64,
    pub reports_delivered: AtomicU64,
    pub delivery_retries: AtomicU64,
    pub delivery_failures: AtomicU64,
    pub reports_spilled: AtomicU64,
    pub breaker_opened: AtomicU64,
    pub breaker_half_open: AtomicU64,
    pub spill_bytes_dropped: AtomicU64,
    pub dlq_bytes_dropped: AtomicU64,
    pub sources_connections: AtomicU64,
    pub sources_disconnects: AtomicU64,
    pub sources_lines: AtomicU64,
    pub sources_lines_shed: AtomicU64,
    pub sources_dead_lettered: AtomicU64,
    pub sources_frame_errors: AtomicU64,
    pub sources_paused: AtomicU64,
    pub sources_http_rejected: AtomicU64,
    pub sources_udp_truncated: AtomicU64,
    pub config_reloads_applied: AtomicU64,
    pub config_reload_rejected: AtomicU64,
}

impl PipelineMetrics {
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// `(name, value)` for every counter, in declaration order. The
    /// stable vocabulary used by [`crate::observe::MetricsSnapshot`]
    /// renderings.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lines_ingested", Self::get(&self.lines_ingested)),
            ("lines_parsed", Self::get(&self.lines_parsed)),
            ("header_errors", Self::get(&self.header_errors)),
            ("duplicates_dropped", Self::get(&self.duplicates_dropped)),
            (
                "templates_discovered",
                Self::get(&self.templates_discovered),
            ),
            ("anomalies_reported", Self::get(&self.anomalies_reported)),
            ("worker_restarts", Self::get(&self.worker_restarts)),
            ("lines_quarantined", Self::get(&self.lines_quarantined)),
            ("lines_shed", Self::get(&self.lines_shed)),
            ("retries_attempted", Self::get(&self.retries_attempted)),
            ("batches_submitted", Self::get(&self.batches_submitted)),
            ("cache_hits", Self::get(&self.cache_hits)),
            ("cache_misses", Self::get(&self.cache_misses)),
            ("checkpoints_written", Self::get(&self.checkpoints_written)),
            ("journal_bytes", Self::get(&self.journal_bytes)),
            (
                "recovery_replayed_lines",
                Self::get(&self.recovery_replayed_lines),
            ),
            ("reports_accepted", Self::get(&self.reports_accepted)),
            ("reports_delivered", Self::get(&self.reports_delivered)),
            ("delivery_retries", Self::get(&self.delivery_retries)),
            ("delivery_failures", Self::get(&self.delivery_failures)),
            ("reports_spilled", Self::get(&self.reports_spilled)),
            ("breaker_opened", Self::get(&self.breaker_opened)),
            ("breaker_half_open", Self::get(&self.breaker_half_open)),
            ("spill_bytes_dropped", Self::get(&self.spill_bytes_dropped)),
            ("dlq_bytes_dropped", Self::get(&self.dlq_bytes_dropped)),
            ("sources_connections", Self::get(&self.sources_connections)),
            ("sources_disconnects", Self::get(&self.sources_disconnects)),
            ("sources_lines", Self::get(&self.sources_lines)),
            ("sources_lines_shed", Self::get(&self.sources_lines_shed)),
            (
                "sources_dead_lettered",
                Self::get(&self.sources_dead_lettered),
            ),
            (
                "sources_frame_errors",
                Self::get(&self.sources_frame_errors),
            ),
            ("sources_paused", Self::get(&self.sources_paused)),
            (
                "sources_http_rejected",
                Self::get(&self.sources_http_rejected),
            ),
            (
                "sources_udp_truncated",
                Self::get(&self.sources_udp_truncated),
            ),
            (
                "config_reloads_applied",
                Self::get(&self.config_reloads_applied),
            ),
            (
                "config_reload_rejected",
                Self::get(&self.config_reload_rejected),
            ),
        ]
    }

    /// Typed counters-only snapshot (no stage histograms or shard gauges —
    /// use [`crate::observe::MetricsRegistry::snapshot`] for those). Its
    /// `Display` impl keeps the old one-line human-readable form.
    pub fn snapshot(&self) -> crate::observe::MetricsSnapshot {
        crate::observe::MetricsSnapshot {
            counters: self.counter_values(),
            stages: Vec::new(),
            batch_sizes: crate::observe::SizeSnapshot::default(),
            shards: Vec::new(),
            rates: crate::observe::RateSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = PipelineMetrics::shared();
        PipelineMetrics::incr(&m.lines_ingested);
        PipelineMetrics::add(&m.lines_ingested, 4);
        assert_eq!(PipelineMetrics::get(&m.lines_ingested), 5);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = PipelineMetrics::shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        PipelineMetrics::incr(&m.lines_parsed);
                    }
                });
            }
        });
        assert_eq!(PipelineMetrics::get(&m.lines_parsed), 4_000);
    }

    #[test]
    fn snapshot_mentions_every_counter() {
        let m = PipelineMetrics::default();
        let snap = m.snapshot();
        let s = snap.to_string();
        for field in [
            "lines_ingested",
            "lines_parsed",
            "header_errors",
            "duplicates_dropped",
            "templates_discovered",
            "anomalies_reported",
            "worker_restarts",
            "lines_quarantined",
            "lines_shed",
            "retries_attempted",
            "batches_submitted",
            "cache_hits",
            "cache_misses",
            "checkpoints_written",
            "journal_bytes",
            "recovery_replayed_lines",
            "reports_accepted",
            "reports_delivered",
            "delivery_retries",
            "delivery_failures",
            "reports_spilled",
            "breaker_opened",
            "breaker_half_open",
            "spill_bytes_dropped",
            "dlq_bytes_dropped",
            "sources_connections",
            "sources_disconnects",
            "sources_lines",
            "sources_lines_shed",
            "sources_dead_lettered",
            "sources_frame_errors",
            "sources_paused",
            "sources_http_rejected",
            "sources_udp_truncated",
            "config_reloads_applied",
            "config_reload_rejected",
        ] {
            assert!(s.contains(field), "{field} missing from {s}");
            assert!(
                snap.counter(field).is_some(),
                "{field} missing from typed snapshot"
            );
        }
        assert_eq!(snap.counters.len(), 36);
    }

    #[test]
    fn snapshot_reports_fault_tolerance_counters() {
        let m = PipelineMetrics::default();
        PipelineMetrics::incr(&m.worker_restarts);
        PipelineMetrics::add(&m.lines_quarantined, 3);
        PipelineMetrics::add(&m.lines_shed, 7);
        PipelineMetrics::add(&m.retries_attempted, 11);
        let snap = m.snapshot();
        assert_eq!(snap.counter("worker_restarts"), Some(1));
        assert_eq!(snap.counter("lines_quarantined"), Some(3));
        assert_eq!(snap.counter("lines_shed"), Some(7));
        assert_eq!(snap.counter("retries_attempted"), Some(11));
        let s = snap.to_string();
        for field in ["worker_restarts=1", "lines_quarantined=3", "lines_shed=7"] {
            assert!(s.contains(field), "{field} missing from {s}");
        }
    }
}
