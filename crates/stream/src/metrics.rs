//! Pipeline observability counters.
//!
//! Cheap, shareable atomics — stages on different threads bump them
//! without coordination; the monitoring loop reads a consistent-enough
//! snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters of one pipeline run.
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    pub lines_ingested: AtomicU64,
    pub lines_parsed: AtomicU64,
    pub header_errors: AtomicU64,
    pub duplicates_dropped: AtomicU64,
    pub templates_discovered: AtomicU64,
    pub anomalies_reported: AtomicU64,
}

impl PipelineMetrics {
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// One-line human-readable snapshot.
    pub fn snapshot(&self) -> String {
        format!(
            "ingested={} parsed={} header_errors={} dups_dropped={} templates={} anomalies={}",
            Self::get(&self.lines_ingested),
            Self::get(&self.lines_parsed),
            Self::get(&self.header_errors),
            Self::get(&self.duplicates_dropped),
            Self::get(&self.templates_discovered),
            Self::get(&self.anomalies_reported),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = PipelineMetrics::shared();
        PipelineMetrics::incr(&m.lines_ingested);
        PipelineMetrics::add(&m.lines_ingested, 4);
        assert_eq!(PipelineMetrics::get(&m.lines_ingested), 5);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let m = PipelineMetrics::shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1_000 {
                        PipelineMetrics::incr(&m.lines_parsed);
                    }
                });
            }
        });
        assert_eq!(PipelineMetrics::get(&m.lines_parsed), 4_000);
    }

    #[test]
    fn snapshot_mentions_every_counter() {
        let m = PipelineMetrics::default();
        let s = m.snapshot();
        for field in ["ingested", "parsed", "header_errors", "dups_dropped", "templates", "anomalies"] {
            assert!(s.contains(field), "{field} missing from {s}");
        }
    }
}
