//! A minimal readiness-based event loop shared by every network endpoint in
//! the stream layer: the syslog/HTTP ingest sources and the
//! [`MetricsExporter`](crate::export::MetricsExporter).
//!
//! One thread owns an epoll instance plus a registration table of
//! [`Handler`]s. Each handler wraps one non-blocking fd (a listener, an
//! accepted connection, a UDP socket) or no fd at all (timer-only handlers,
//! used by the file tailer). The loop dispatches readiness to handlers,
//! re-arms interest after every callback, and fires a coarse periodic tick so
//! handlers can enforce idle timeouts and deadlines without per-connection
//! timers.
//!
//! The design goal is the smallest loop that removes head-of-line blocking:
//! no wakers, no futures, level-triggered epoll only. On non-Linux platforms
//! a timed sweep poller keeps everything compiling and functional (handlers
//! already tolerate spurious readiness because epoll is level-triggered).

pub mod sys;

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(unix)]
pub type Fd = std::os::unix::io::RawFd;
#[cfg(not(unix))]
pub type Fd = i64;

/// Cross-platform fd extraction for loop registration. On non-unix targets
/// the sweep poller never inspects the fd, so a dummy value suffices.
pub trait AsLoopFd {
    fn loop_fd(&self) -> Fd;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> AsLoopFd for T {
    fn loop_fd(&self) -> Fd {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> AsLoopFd for T {
    fn loop_fd(&self) -> Fd {
        0
    }
}

/// Readiness interest for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub read: bool,
    pub write: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// What the loop should do with a handler after a callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Keep the registration; interest is re-queried via [`Handler::interest`].
    Keep,
    /// Deregister and drop the handler (dropping closes its socket).
    Close,
}

/// Passed into handler callbacks; lets a handler register new fds (a
/// listener registering an accepted connection) without aliasing the loop's
/// registration table mid-dispatch.
pub struct LoopCtx<'a> {
    adds: &'a mut Vec<Registration>,
    pub now: Instant,
}

impl LoopCtx<'_> {
    /// Register a new fd-backed handler; it joins the loop after the current
    /// dispatch round.
    pub fn register(&mut self, fd: Fd, handler: Box<dyn Handler>) {
        self.adds.push(Registration {
            fd: Some(fd),
            handler,
        });
    }

    /// Register a handler with no fd; it only receives `tick` callbacks.
    pub fn register_timer(&mut self, handler: Box<dyn Handler>) {
        self.adds.push(Registration { fd: None, handler });
    }
}

/// One endpoint on the loop. Handlers own their socket: the fd passed at
/// registration must stay open for as long as the handler is registered
/// (the loop deregisters the fd *before* dropping the handler).
pub trait Handler: Send {
    /// The fd is ready. Level-triggered: do as much non-blocking work as
    /// possible, then return. `readable`/`writable` may both be set.
    fn ready(&mut self, readable: bool, writable: bool, ctx: &mut LoopCtx<'_>) -> Next;

    /// Periodic callback (roughly every [`EventLoop::TICK`]); enforce idle
    /// timeouts and retry paused work here.
    fn tick(&mut self, _now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        Next::Keep
    }

    /// Current interest, re-queried after every callback to re-arm epoll.
    fn interest(&self) -> Interest {
        Interest::READ
    }
}

struct Registration {
    fd: Option<Fd>,
    handler: Box<dyn Handler>,
}

struct Entry {
    fd: Option<Fd>,
    handler: Box<dyn Handler>,
    armed: Interest,
}

/// Platform poller: epoll on Linux, timed sweep elsewhere.
enum Poller {
    #[cfg(target_os = "linux")]
    Epoll(sys::Epoll),
    /// Fallback: report every registered fd as ready at each timeout expiry.
    /// Correct (handlers tolerate spurious readiness) but O(n) per sweep.
    Sweep(HashMap<u64, Interest>),
}

impl Poller {
    fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            return Ok(Poller::Epoll(sys::Epoll::new()?));
        }
        #[allow(unreachable_code)]
        Ok(Poller::Sweep(HashMap::new()))
    }

    fn events_for(interest: Interest) -> u32 {
        #[cfg(target_os = "linux")]
        {
            let mut ev = sys::EPOLLRDHUP;
            if interest.read {
                ev |= sys::EPOLLIN;
            }
            if interest.write {
                ev |= sys::EPOLLOUT;
            }
            return ev;
        }
        #[allow(unreachable_code)]
        {
            let _ = interest;
            0
        }
    }

    fn add(&mut self, fd: Fd, interest: Interest, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.add(fd, Self::events_for(interest), token),
            Poller::Sweep(map) => {
                let _ = fd;
                map.insert(token, interest);
                Ok(())
            }
        }
    }

    fn modify(&mut self, fd: Fd, interest: Interest, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.modify(fd, Self::events_for(interest), token),
            Poller::Sweep(map) => {
                let _ = fd;
                map.insert(token, interest);
                Ok(())
            }
        }
    }

    fn delete(&mut self, fd: Fd, token: u64) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.delete(fd),
            Poller::Sweep(map) => {
                let _ = fd;
                map.remove(&token);
                Ok(())
            }
        }
    }

    /// Collect `(token, readable, writable)` triples.
    fn wait(&mut self, out: &mut Vec<(u64, bool, bool)>, timeout: Duration) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => {
                let mut raw = Vec::new();
                let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
                ep.wait(&mut raw, ms)?;
                for (token, events) in raw {
                    let err = events & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    // Surface errors/hangups as readability so handlers see
                    // the EOF/error from their next read().
                    let readable = events & sys::EPOLLIN != 0 || err;
                    let writable = events & sys::EPOLLOUT != 0 || err;
                    out.push((token, readable, writable));
                }
                Ok(())
            }
            Poller::Sweep(map) => {
                std::thread::sleep(timeout.min(Duration::from_millis(5)));
                for (&token, &interest) in map.iter() {
                    if interest.read || interest.write {
                        out.push((token, interest.read, interest.write));
                    }
                }
                Ok(())
            }
        }
    }
}

/// The event loop. Build it, register the initial handlers, then hand it to
/// a thread via [`EventLoop::run`].
pub struct EventLoop {
    poller: Poller,
    entries: HashMap<u64, Entry>,
    next_token: u64,
}

impl EventLoop {
    /// Tick cadence: idle-timeout resolution and the upper bound on how long
    /// a stop request can go unnoticed.
    pub const TICK: Duration = Duration::from_millis(50);

    pub fn new() -> io::Result<EventLoop> {
        Ok(EventLoop {
            poller: Poller::new()?,
            entries: HashMap::new(),
            next_token: 1,
        })
    }

    /// Register an fd-backed handler. The fd must already be non-blocking.
    pub fn register(&mut self, fd: Fd, handler: Box<dyn Handler>) -> io::Result<u64> {
        let token = self.next_token;
        self.next_token += 1;
        let interest = handler.interest();
        self.poller.add(fd, interest, token)?;
        self.entries.insert(
            token,
            Entry {
                fd: Some(fd),
                handler,
                armed: interest,
            },
        );
        Ok(token)
    }

    /// Register a timer-only handler (no fd; only `tick` fires).
    pub fn register_timer(&mut self, handler: Box<dyn Handler>) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.entries.insert(
            token,
            Entry {
                fd: None,
                handler,
                armed: Interest::NONE,
            },
        );
        token
    }

    fn apply(&mut self, token: u64, verdict: Next, closes: &mut Vec<u64>) {
        match verdict {
            Next::Close => closes.push(token),
            Next::Keep => {
                if let Some(entry) = self.entries.get_mut(&token) {
                    let want = entry.handler.interest();
                    if want != entry.armed {
                        if let Some(fd) = entry.fd {
                            // A failed re-arm (fd gone bad) drops the conn.
                            if self.poller.modify(fd, want, token).is_err() {
                                closes.push(token);
                                return;
                            }
                        }
                        entry.armed = want;
                    }
                }
            }
        }
    }

    fn close_all(&mut self, closes: &mut Vec<u64>) {
        for token in closes.drain(..) {
            if let Some(entry) = self.entries.remove(&token) {
                if let Some(fd) = entry.fd {
                    let _ = self.poller.delete(fd, token);
                }
                // Dropping the handler closes its socket.
            }
        }
    }

    /// Run until `stop` is set. Consumes the loop; registered handlers are
    /// dropped (closing their sockets) on the way out.
    pub fn run(mut self, stop: Arc<AtomicBool>) {
        let mut ready = Vec::new();
        let mut adds: Vec<Registration> = Vec::new();
        let mut closes: Vec<u64> = Vec::new();
        let mut last_tick = Instant::now();

        while !stop.load(Ordering::SeqCst) {
            ready.clear();
            let until_tick = Self::TICK.saturating_sub(last_tick.elapsed());
            if self
                .poller
                .wait(&mut ready, until_tick.max(Duration::from_millis(1)))
                .is_err()
            {
                break;
            }

            for &(token, readable, writable) in ready.iter() {
                let verdict = match self.entries.get_mut(&token) {
                    Some(entry) => {
                        let mut ctx = LoopCtx {
                            adds: &mut adds,
                            now: Instant::now(),
                        };
                        entry.handler.ready(readable, writable, &mut ctx)
                    }
                    None => continue,
                };
                self.apply(token, verdict, &mut closes);
            }

            if last_tick.elapsed() >= Self::TICK {
                last_tick = Instant::now();
                let tokens: Vec<u64> = self.entries.keys().copied().collect();
                for token in tokens {
                    let verdict = match self.entries.get_mut(&token) {
                        Some(entry) => {
                            let mut ctx = LoopCtx {
                                adds: &mut adds,
                                now: last_tick,
                            };
                            entry.handler.tick(last_tick, &mut ctx)
                        }
                        None => continue,
                    };
                    self.apply(token, verdict, &mut closes);
                }
            }

            self.close_all(&mut closes);
            for reg in adds.drain(..) {
                match reg.fd {
                    Some(fd) => {
                        let _ = self.register(fd, reg.handler);
                    }
                    None => {
                        self.register_timer(reg.handler);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    /// Echo server: listener handler accepts and registers per-conn handlers.
    struct EchoListener {
        listener: TcpListener,
        accepted: Arc<AtomicUsize>,
    }

    impl Handler for EchoListener {
        fn ready(&mut self, _r: bool, _w: bool, ctx: &mut LoopCtx<'_>) -> Next {
            loop {
                match self.listener.accept() {
                    Ok((conn, _)) => {
                        conn.set_nonblocking(true).unwrap();
                        self.accepted.fetch_add(1, Ordering::SeqCst);
                        let fd = conn.loop_fd();
                        ctx.register(
                            fd,
                            Box::new(EchoConn {
                                conn,
                                out: Vec::new(),
                            }),
                        );
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Next::Keep,
                    Err(_) => return Next::Keep,
                }
            }
        }
    }

    struct EchoConn {
        conn: TcpStream,
        out: Vec<u8>,
    }

    impl Handler for EchoConn {
        fn ready(&mut self, readable: bool, writable: bool, _ctx: &mut LoopCtx<'_>) -> Next {
            if readable {
                let mut buf = [0u8; 4096];
                loop {
                    match self.conn.read(&mut buf) {
                        Ok(0) => return Next::Close,
                        Ok(n) => self.out.extend_from_slice(&buf[..n]),
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => return Next::Close,
                    }
                }
            }
            if (writable || !self.out.is_empty()) && !self.out.is_empty() {
                match self.conn.write(&self.out) {
                    Ok(n) => {
                        self.out.drain(..n);
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => return Next::Close,
                }
            }
            Next::Keep
        }

        fn interest(&self) -> Interest {
            Interest {
                read: true,
                write: !self.out.is_empty(),
            }
        }
    }

    struct TickCounter {
        ticks: Arc<AtomicUsize>,
    }

    impl Handler for TickCounter {
        fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
            Next::Keep
        }
        fn tick(&mut self, _now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
            self.ticks.fetch_add(1, Ordering::SeqCst);
            Next::Keep
        }
        fn interest(&self) -> Interest {
            Interest::NONE
        }
    }

    fn spawn_loop(
        build: impl FnOnce(&mut EventLoop),
    ) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let mut el = EventLoop::new().unwrap();
        build(&mut el);
        let stop = Arc::new(AtomicBool::new(false));
        let s = stop.clone();
        let h = std::thread::spawn(move || el.run(s));
        (stop, h)
    }

    #[test]
    fn echo_round_trip_and_concurrent_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let accepted = Arc::new(AtomicUsize::new(0));
        let acc = accepted.clone();
        let (stop, h) = spawn_loop(move |el| {
            el.register(
                listener.loop_fd(),
                Box::new(EchoListener {
                    listener,
                    accepted: acc,
                }),
            )
            .unwrap();
        });

        // A stalled client must not block other clients (head-of-line test
        // at the loop level).
        let _stalled = TcpStream::connect(addr).unwrap();

        let mut clients: Vec<TcpStream> =
            (0..4).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for (i, c) in clients.iter_mut().enumerate() {
            c.write_all(format!("hello-{i}").as_bytes()).unwrap();
        }
        for (i, c) in clients.iter_mut().enumerate() {
            c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let want = format!("hello-{i}");
            let mut got = vec![0u8; want.len()];
            c.read_exact(&mut got).unwrap();
            assert_eq!(got, want.as_bytes());
        }
        assert!(accepted.load(Ordering::SeqCst) >= 5);

        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
    }

    #[test]
    fn timer_handlers_tick_without_an_fd() {
        let ticks = Arc::new(AtomicUsize::new(0));
        let t = ticks.clone();
        let (stop, h) = spawn_loop(move |el| {
            el.register_timer(Box::new(TickCounter { ticks: t }));
        });
        let deadline = Instant::now() + Duration::from_secs(2);
        while ticks.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
        assert!(
            ticks.load(Ordering::SeqCst) >= 2,
            "timer handler never ticked"
        );
    }

    /// Handlers registered mid-flight (via ctx) and closed handlers drop
    /// their sockets promptly.
    #[test]
    fn close_drops_the_connection() {
        struct CloseOnRead {
            conn: TcpStream,
            log: Arc<Mutex<Vec<u8>>>,
        }
        impl Handler for CloseOnRead {
            fn ready(&mut self, _r: bool, _w: bool, _ctx: &mut LoopCtx<'_>) -> Next {
                let mut buf = [0u8; 64];
                match self.conn.read(&mut buf) {
                    Ok(n) if n > 0 => {
                        self.log.lock().unwrap().extend_from_slice(&buf[..n]);
                        Next::Close
                    }
                    _ => Next::Close,
                }
            }
        }
        struct Acceptor {
            listener: TcpListener,
            log: Arc<Mutex<Vec<u8>>>,
        }
        impl Handler for Acceptor {
            fn ready(&mut self, _r: bool, _w: bool, ctx: &mut LoopCtx<'_>) -> Next {
                while let Ok((conn, _)) = self.listener.accept() {
                    conn.set_nonblocking(true).unwrap();
                    let fd = conn.loop_fd();
                    ctx.register(
                        fd,
                        Box::new(CloseOnRead {
                            conn,
                            log: self.log.clone(),
                        }),
                    );
                }
                Next::Keep
            }
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l2 = log.clone();
        let (stop, h) = spawn_loop(move |el| {
            el.register(listener.loop_fd(), Box::new(Acceptor { listener, log: l2 }))
                .unwrap();
        });

        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"bye").unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut sink = Vec::new();
        // Server closes after reading: read() observes EOF.
        let _ = c.read_to_end(&mut sink);
        assert_eq!(log.lock().unwrap().as_slice(), b"bye");

        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
    }
}
