//! Raw `epoll(7)` FFI, in the same spirit as the `signal(2)` shim in
//! `durable::signal` and the `SO_REUSEADDR` shim in `export`: we link the
//! three syscall wrappers straight out of libc instead of pulling in a
//! dependency for a handful of constants.
//!
//! Only the Linux ABI is bound here; `net::poll` falls back to a timed
//! sweep poller on other platforms.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

pub const EPOLL_CLOEXEC: i32 = 0o2000000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`. The kernel packs this on x86-64 (12 bytes) and uses
/// natural alignment everywhere else — mirror that or `epoll_wait` corrupts
/// the buffer.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Owned epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Self> {
        // Safety: epoll_create1 has no pointer arguments.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        // Safety: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, evp) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for readiness; appends `(token, events)` pairs
    /// to `out`. Returns the number of ready fds. EINTR counts as zero ready.
    pub fn wait(&self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<usize> {
        let mut buf = [EpollEvent { events: 0, data: 0 }; 64];
        // Safety: `buf` is a valid writable array of `maxevents` entries.
        let n = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in buf.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let (events, data) = (ev.events, ev.data);
            out.push((data, events));
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // Safety: fd came from epoll_create1 and is closed exactly once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn epoll_reports_readable_listener() {
        let ep = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut ready = Vec::new();
        assert_eq!(
            ep.wait(&mut ready, 0).unwrap(),
            0,
            "no pending connection yet"
        );

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.write_all(b"x").unwrap();

        let mut ready = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while ready.is_empty() && std::time::Instant::now() < deadline {
            ep.wait(&mut ready, 100).unwrap();
        }
        assert_eq!(ready.len(), 1);
        let (token, events) = ready[0];
        assert_eq!(token, 7);
        assert_ne!(events & EPOLLIN, 0);

        ep.delete(listener.as_raw_fd()).unwrap();
        let mut ready = Vec::new();
        ep.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty(), "deleted fd must not report");
    }
}
