//! Pipeline observability: stage latency histograms, per-shard gauges,
//! and typed metric snapshots.
//!
//! The paper frames MoniLog as an *automated monitoring* system, and its
//! planned experiments (§V) hinge on the parser being "the most efficient
//! existing parsing solution" — a claim that is unfalsifiable without
//! first-class latency instrumentation. This module provides it:
//!
//! - [`LatencyHistogram`] — a lock-free log-linear histogram with fixed
//!   bucket boundaries. Stages on any thread record durations with a few
//!   relaxed atomic adds; readers estimate p50/p95/p99 from the buckets
//!   and read the exact max.
//! - [`Stage`] — the instrumented pipeline stages (ingest, merge/dedup,
//!   parse, window assembly, detect, classify).
//! - [`MetricsRegistry`] — one histogram per stage plus per-shard gauges
//!   (queue depth, templates, restarts) on top of the
//!   [`PipelineMetrics`] counters.
//! - [`MetricsSnapshot`] — a typed, serializable point-in-time view that
//!   renders to Prometheus text format and JSON (see [`crate::export`]
//!   for the HTTP endpoint).
//!
//! ## Bucket scheme
//!
//! Durations are recorded in nanoseconds into log-linear buckets: each
//! power-of-two octave from 2^10 ns (≈1 µs) to 2^33 ns (≈8.6 s) is split
//! into 4 linear sub-buckets, bracketed by an underflow bucket (< 1.024 µs)
//! and an overflow bucket. Bucket boundaries are fixed at compile time, so
//! histograms from different runs and different shards are directly
//! mergeable and the relative quantile error is bounded by the sub-bucket
//! width (≤ 25%, plus exact max).

use crate::metrics::PipelineMetrics;
use monilog_model::TraceId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// First instrumented octave: values below `2^MIN_EXP` ns share the
/// underflow bucket.
const MIN_EXP: u32 = 10;
/// Last instrumented octave: values at or above `2^(MAX_EXP + 1)` ns share
/// the overflow bucket.
const MAX_EXP: u32 = 33;
/// Linear sub-buckets per octave (2^SUB_BITS).
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Underflow + (octaves × sub-buckets) + overflow.
pub const N_BUCKETS: usize = 2 + (MAX_EXP - MIN_EXP + 1) as usize * SUBS;

/// An instrumented pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Raw-line admission: dedup check and header parse.
    Ingest,
    /// Stream merging: reorder-buffer push and release.
    MergeDedup,
    /// Time a line (or batch) sat in a shard queue before its worker
    /// picked it up. Split out of the parse timer: queue wait measures
    /// provisioning/backpressure, not the parser, and folding it into one
    /// number misreported parse p99 by orders of magnitude under load.
    ParseQueueWait,
    /// Template parsing (payload extraction + Drain), execution only.
    Parse,
    /// Window assembly (session/tumbling bookkeeping per released event).
    WindowAssembly,
    /// Detector predict/score per closed window.
    Detect,
    /// Anomaly classification per report.
    Classify,
    /// Durable checkpoint commit: state export + atomic write + fsync.
    Checkpoint,
    /// Sink delivery attempt: one batched `deliver` call to an external
    /// sink (network round-trip included; retries time each attempt).
    Deliver,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::Ingest,
        Stage::MergeDedup,
        Stage::ParseQueueWait,
        Stage::Parse,
        Stage::WindowAssembly,
        Stage::Detect,
        Stage::Classify,
        Stage::Checkpoint,
        Stage::Deliver,
    ];

    /// Stable metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::MergeDedup => "merge_dedup",
            Stage::ParseQueueWait => "parse_queue_wait",
            Stage::Parse => "parse_exec",
            Stage::WindowAssembly => "window",
            Stage::Detect => "detect",
            Stage::Classify => "classify",
            Stage::Checkpoint => "checkpoint",
            Stage::Deliver => "deliver",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Ingest => 0,
            Stage::MergeDedup => 1,
            Stage::ParseQueueWait => 2,
            Stage::Parse => 3,
            Stage::WindowAssembly => 4,
            Stage::Detect => 5,
            Stage::Classify => 6,
            Stage::Checkpoint => 7,
            Stage::Deliver => 8,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Index of the log-linear bucket holding `ns`.
fn bucket_index(ns: u64) -> usize {
    if ns < (1 << MIN_EXP) {
        return 0;
    }
    let exp = 63 - ns.leading_zeros();
    if exp > MAX_EXP {
        return N_BUCKETS - 1;
    }
    let sub = ((ns >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBS + sub
}

/// Exclusive upper bound (ns) of bucket `i`; `u64::MAX` for the overflow
/// bucket.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        return 1 << MIN_EXP;
    }
    if i >= N_BUCKETS - 1 {
        return u64::MAX;
    }
    let exp = MIN_EXP + ((i - 1) / SUBS) as u32;
    let sub = ((i - 1) % SUBS) as u64;
    (SUBS as u64 + sub + 1) << (exp - SUB_BITS)
}

/// Lock-free latency histogram with fixed log-linear buckets.
///
/// Recording is a handful of relaxed atomic RMWs — safe to call from every
/// pipeline thread on every line. Snapshots are consistent-enough reads
/// (buckets may trail the count by in-flight records), which is the same
/// contract as [`PipelineMetrics`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    /// Largest duration recorded with a trace id — the p99 *exemplar*:
    /// a tail latency an operator can resolve to a full span tree via
    /// `GET /trace/{id}` instead of staring at an anonymous percentile.
    exemplar_ns: AtomicU64,
    exemplar_trace: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            exemplar_ns: AtomicU64::new(0),
            exemplar_trace: AtomicU64::new(0),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record the time elapsed since `start`.
    pub fn record_since(&self, start: Instant) {
        self.record(start.elapsed());
    }

    /// Record one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.record_ns_n(ns, 1);
    }

    /// Record one duration, attaching the trace id as a tail exemplar
    /// when the line was sampled. The exemplar kept is the largest traced
    /// duration seen — a best-effort pairing (the trace id may briefly
    /// disagree with the duration under write races), matching the
    /// relaxed-read contract of the rest of the histogram.
    pub fn record_ns_traced(&self, ns: u64, trace: Option<TraceId>) {
        self.record_ns(ns);
        if let Some(t) = trace {
            let prev = self.exemplar_ns.fetch_max(ns, Ordering::Relaxed);
            if ns >= prev {
                self.exemplar_trace.store(t.0, Ordering::Relaxed);
            }
        }
    }

    /// Record the time since `start`, attaching a trace exemplar if
    /// sampled.
    pub fn record_since_traced(&self, start: Instant, trace: Option<TraceId>) {
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.record_ns_traced(ns, trace);
    }

    /// Record the same duration `n` times in O(1) — how a batched worker
    /// attributes one measured queue wait to every line in the batch
    /// without `n` bucket RMWs.
    pub fn record_ns_n(&self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(ns)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(ns.saturating_mul(n), Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot with quantile estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 { estimate_quantile(&buckets, count, max_ns, q) };
        let mut cumulative = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                cumulative.push((bucket_bound(i), cum));
            }
        }
        let exemplar_trace = self.exemplar_trace.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns,
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            buckets: cumulative,
            exemplar: (exemplar_trace != 0).then(|| Exemplar {
                trace_id: exemplar_trace,
                ns: self.exemplar_ns.load(Ordering::Relaxed),
            }),
        }
    }
}

/// Quantile estimate from bucket counts: find the bucket holding the
/// target rank and interpolate linearly inside it, clamped to the exact
/// observed max.
fn estimate_quantile(buckets: &[u64], count: u64, max_ns: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        if cum + n >= rank {
            let lower = if i == 0 { 0 } else { bucket_bound(i - 1) };
            let upper = bucket_bound(i).min(max_ns.max(lower));
            let frac = (rank - cum) as f64 / n as f64;
            // Saturating math and a final clamp: in the top octave and the
            // overflow bucket `upper - lower` spans most of the u64 range,
            // so the float round-trip can overshoot — and a snapshot race
            // (bucket counts read before a concurrent record updates
            // max_ns) can leave `lower > max_ns`. Either way the estimate
            // must never exceed the exact observed max.
            let est = lower.saturating_add(((upper - lower) as f64 * frac) as u64);
            return est.min(max_ns);
        }
        cum += n;
    }
    max_ns
}

/// A tail-latency exemplar: the largest traced duration a histogram has
/// seen, resolvable to a span tree via `GET /trace/{trace_id}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    pub trace_id: u64,
    pub ns: u64,
}

/// Point-in-time view of one [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    /// Exact maximum recorded value.
    pub max_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// `(exclusive upper bound ns, cumulative count)` for every non-empty
    /// bucket, in increasing bound order — Prometheus-ready.
    pub buckets: Vec<(u64, u64)>,
    /// Largest traced sample (`None` until a sampled line lands here).
    pub exemplar: Option<Exemplar>,
}

/// Power-of-two buckets for the batch-size histogram: `2^0 .. 2^16`
/// inclusive bounds plus an overflow bucket.
pub const N_SIZE_BUCKETS: usize = 18;

/// Lock-free histogram of discrete sizes (lines per submitted batch) in
/// power-of-two buckets. Bucket `i` counts observations with
/// `size <= 2^i` (above the previous bound); sizes beyond `2^16` share
/// the overflow bucket. Same relaxed-atomic recording contract as
/// [`LatencyHistogram`].
#[derive(Debug, Default)]
pub struct SizeHistogram {
    buckets: [AtomicU64; N_SIZE_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Inclusive upper bound of size bucket `i`; `u64::MAX` for overflow.
fn size_bucket_bound(i: usize) -> u64 {
    if i >= N_SIZE_BUCKETS - 1 {
        u64::MAX
    } else {
        1 << i
    }
}

impl SizeHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed size.
    pub fn record(&self, size: u64) {
        let idx = if size <= 1 {
            0
        } else {
            // ceil(log2(size)), clamped into the overflow bucket.
            let log = (64 - (size - 1).leading_zeros()) as usize;
            log.min(N_SIZE_BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(size, Ordering::Relaxed);
        self.max.fetch_max(size, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> SizeSnapshot {
        let mut cumulative = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                cumulative.push((size_bucket_bound(i), cum));
            }
        }
        SizeSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: cumulative,
        }
    }
}

/// Point-in-time view of one [`SizeHistogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SizeSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact maximum recorded size.
    pub max: u64,
    /// `(inclusive upper bound, cumulative count)` per non-empty bucket,
    /// increasing bound order; `u64::MAX` bound is the overflow bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl SizeSnapshot {
    /// Mean observed size (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per-shard gauges of a sharded parse deployment.
#[derive(Debug, Default)]
pub struct ShardGauges {
    /// Items waiting in the shard's input queue (sampled by the worker).
    pub queue_depth: AtomicU64,
    /// Templates in the shard's store.
    pub templates: AtomicU64,
    /// Times this shard's worker was respawned.
    pub restarts: AtomicU64,
}

impl ShardGauges {
    /// Set a gauge to an absolute value.
    pub fn set(gauge: &AtomicU64, value: u64) {
        gauge.store(value, Ordering::Relaxed);
    }
}

/// Interval throughput gauges derived from two consecutive snapshots.
///
/// `/metrics` counters are cumulative; an operator eyeballing the endpoint
/// (or the one-line `Display` summary) wants *rates*. Each registry
/// snapshot taken at least [`MIN_RATE_INTERVAL`] after the previous one
/// closes an interval and publishes `Δcount / Δt` — the exporter's refresh
/// tick is what drives this in a live deployment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RateSnapshot {
    /// Length of the closed interval in seconds (0.0 until two spaced
    /// snapshots have been taken).
    pub interval_secs: f64,
    /// Raw lines ingested per second over the last interval.
    pub lines_per_second: f64,
    /// `(stage name, observations per second)` over the last interval, in
    /// pipeline order (empty until the first interval closes).
    pub stages: Vec<(&'static str, f64)>,
}

/// Snapshots closer together than this reuse the previously computed
/// rates instead of publishing a noisy estimate over a near-zero window.
const MIN_RATE_INTERVAL: Duration = Duration::from_millis(100);

/// Counter values at the start of the current rate interval, plus the
/// last closed interval's rates.
#[derive(Debug)]
struct RateWindow {
    prev_at: Option<Instant>,
    prev_lines: u64,
    prev_stage_counts: [u64; Stage::ALL.len()],
    last: RateSnapshot,
}

impl RateWindow {
    fn new() -> Self {
        RateWindow {
            prev_at: None,
            prev_lines: 0,
            prev_stage_counts: [0; Stage::ALL.len()],
            last: RateSnapshot::default(),
        }
    }
}

/// The observability root of one pipeline run: counters, per-stage latency
/// histograms, and per-shard gauges. Shareable across every pipeline
/// thread; all recording is lock-free (the rate window takes a Mutex, but
/// only snapshots touch it).
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Arc<PipelineMetrics>,
    stages: [LatencyHistogram; Stage::ALL.len()],
    /// Lines per submitted batch across the batched ingestion path.
    batch_sizes: SizeHistogram,
    shards: Vec<ShardGauges>,
    rates: Mutex<RateWindow>,
}

impl MetricsRegistry {
    /// A registry with no shard gauges (sequential deployments).
    pub fn shared() -> Arc<Self> {
        Self::shared_with_shards(0)
    }

    /// A registry tracking `n_shards` shard gauges (sharded services).
    pub fn shared_with_shards(n_shards: usize) -> Arc<Self> {
        Arc::new(MetricsRegistry {
            counters: PipelineMetrics::shared(),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            batch_sizes: SizeHistogram::new(),
            shards: (0..n_shards).map(|_| ShardGauges::default()).collect(),
            rates: Mutex::new(RateWindow::new()),
        })
    }

    /// The shared pipeline counters.
    pub fn counters(&self) -> &Arc<PipelineMetrics> {
        &self.counters
    }

    /// The latency histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }

    /// Record `start.elapsed()` into a stage histogram.
    pub fn record(&self, stage: Stage, start: Instant) {
        self.stage(stage).record_since(start);
    }

    /// Record `start.elapsed()` into a stage histogram, attaching a trace
    /// exemplar when the line was sampled.
    pub fn record_traced(&self, stage: Stage, start: Instant, trace: Option<TraceId>) {
        self.stage(stage).record_since_traced(start, trace);
    }

    /// Record `end - start` into a stage histogram — the chained-clock
    /// variant of [`MetricsRegistry::record_traced`]: adjacent stages
    /// share one `Instant::now` per boundary instead of paying two clock
    /// reads per stage on the per-line hot path.
    pub fn record_between_traced(
        &self,
        stage: Stage,
        start: Instant,
        end: Instant,
        trace: Option<TraceId>,
    ) {
        let ns = end
            .saturating_duration_since(start)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.stage(stage).record_ns_traced(ns, trace);
    }

    /// Time a closure into a stage histogram.
    pub fn time<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.stage(stage).record_since(start);
        out
    }

    /// The batch-size histogram of the ingestion path.
    pub fn batch_sizes(&self) -> &SizeHistogram {
        &self.batch_sizes
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The gauges of shard `i`.
    pub fn shard(&self, i: usize) -> &ShardGauges {
        &self.shards[i]
    }

    /// Advance the rate window and return the freshest interval rates.
    /// Intervals shorter than [`MIN_RATE_INTERVAL`] keep the previously
    /// closed interval's rates rather than divide by a near-zero Δt.
    fn tick_rates(&self) -> RateSnapshot {
        let lines = PipelineMetrics::get(&self.counters.lines_ingested);
        let stage_counts: [u64; Stage::ALL.len()] = std::array::from_fn(|i| self.stages[i].count());
        let now = Instant::now();
        let mut w = self.rates.lock().unwrap();
        match w.prev_at {
            None => {
                w.prev_at = Some(now);
                w.prev_lines = lines;
                w.prev_stage_counts = stage_counts;
            }
            Some(prev) => {
                let elapsed = now.saturating_duration_since(prev);
                if elapsed >= MIN_RATE_INTERVAL {
                    let secs = elapsed.as_secs_f64();
                    w.last = RateSnapshot {
                        interval_secs: secs,
                        lines_per_second: lines.saturating_sub(w.prev_lines) as f64 / secs,
                        stages: Stage::ALL
                            .iter()
                            .enumerate()
                            .map(|(i, s)| {
                                let d = stage_counts[i].saturating_sub(w.prev_stage_counts[i]);
                                (s.name(), d as f64 / secs)
                            })
                            .collect(),
                    };
                    w.prev_at = Some(now);
                    w.prev_lines = lines;
                    w.prev_stage_counts = stage_counts;
                }
            }
        }
        w.last.clone()
    }

    /// Typed point-in-time snapshot of everything the registry tracks.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rates: self.tick_rates(),
            counters: self.counters.counter_values(),
            stages: Stage::ALL
                .iter()
                .map(|s| StageSnapshot {
                    stage: s.name(),
                    latency: self.stage(*s).snapshot(),
                })
                .collect(),
            batch_sizes: self.batch_sizes.snapshot(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(shard, g)| ShardSnapshot {
                    shard,
                    queue_depth: g.queue_depth.load(Ordering::Relaxed),
                    templates: g.templates.load(Ordering::Relaxed),
                    restarts: g.restarts.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// One stage's latency distribution inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    pub stage: &'static str,
    pub latency: HistogramSnapshot,
}

/// One shard's gauges inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    pub shard: usize,
    pub queue_depth: u64,
    pub templates: u64,
    pub restarts: u64,
}

/// Typed, serializable snapshot of a pipeline's metrics: every counter,
/// every stage latency histogram, every shard gauge. Renders to
/// Prometheus text format ([`MetricsSnapshot::to_prometheus`]), JSON
/// ([`MetricsSnapshot::to_json`]), and a one-line human summary
/// (`Display`).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every pipeline counter.
    pub counters: Vec<(&'static str, u64)>,
    /// Latency distribution per stage, in pipeline order.
    pub stages: Vec<StageSnapshot>,
    /// Distribution of lines per submitted batch (empty when nothing
    /// went through the batched ingestion path).
    pub batch_sizes: SizeSnapshot,
    /// Gauges per shard (empty for sequential deployments).
    pub shards: Vec<ShardSnapshot>,
    /// Interval throughput rates (zero until two spaced snapshots close
    /// an interval — the exporter's refresh tick does this live).
    pub rates: RateSnapshot,
}

fn seconds(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Format a float the way Prometheus expects (no exponent surprises, no
/// trailing leftover zeros beyond precision).
fn fmt_seconds(ns: u64) -> String {
    let mut s = format!("{:.9}", seconds(ns));
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

impl MetricsSnapshot {
    /// Render in Prometheus text exposition format. Counters become
    /// `monilog_<name>_total`, stage histograms become
    /// `monilog_stage_latency_seconds{stage="..."}` with cumulative `le`
    /// buckets, shard gauges become `monilog_shard_*{shard="..."}`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!(
                "# TYPE monilog_{name}_total counter\nmonilog_{name}_total {value}\n"
            ));
        }
        out.push_str("# TYPE monilog_stage_latency_seconds histogram\n");
        for s in &self.stages {
            let stage = s.stage;
            for (bound, cum) in &s.latency.buckets {
                let le = if *bound == u64::MAX {
                    "+Inf".to_string()
                } else {
                    fmt_seconds(*bound)
                };
                out.push_str(&format!(
                    "monilog_stage_latency_seconds_bucket{{stage=\"{stage}\",le=\"{le}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "monilog_stage_latency_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                s.latency.count
            ));
            out.push_str(&format!(
                "monilog_stage_latency_seconds_sum{{stage=\"{stage}\"}} {}\n",
                fmt_seconds(s.latency.sum_ns)
            ));
            out.push_str(&format!(
                "monilog_stage_latency_seconds_count{{stage=\"{stage}\"}} {}\n",
                s.latency.count
            ));
            for (q, v) in [
                ("p50", s.latency.p50_ns),
                ("p95", s.latency.p95_ns),
                ("p99", s.latency.p99_ns),
                ("max", s.latency.max_ns),
            ] {
                out.push_str(&format!(
                    "monilog_stage_latency_{q}_seconds{{stage=\"{stage}\"}} {}\n",
                    fmt_seconds(v)
                ));
            }
            if let Some(e) = s.latency.exemplar {
                out.push_str(&format!(
                    "monilog_stage_latency_exemplar_trace_id{{stage=\"{stage}\"}} {}\n\
                     monilog_stage_latency_exemplar_seconds{{stage=\"{stage}\"}} {}\n",
                    e.trace_id,
                    fmt_seconds(e.ns)
                ));
            }
        }
        if self.batch_sizes.count > 0 {
            out.push_str("# TYPE monilog_batch_size_lines histogram\n");
            for (bound, cum) in &self.batch_sizes.buckets {
                let le = if *bound == u64::MAX {
                    "+Inf".to_string()
                } else {
                    bound.to_string()
                };
                out.push_str(&format!(
                    "monilog_batch_size_lines_bucket{{le=\"{le}\"}} {cum}\n"
                ));
            }
            out.push_str(&format!(
                "monilog_batch_size_lines_bucket{{le=\"+Inf\"}} {}\n",
                self.batch_sizes.count
            ));
            out.push_str(&format!(
                "monilog_batch_size_lines_sum {}\n",
                self.batch_sizes.sum
            ));
            out.push_str(&format!(
                "monilog_batch_size_lines_count {}\n",
                self.batch_sizes.count
            ));
            out.push_str(&format!(
                "monilog_batch_size_lines_max {}\n",
                self.batch_sizes.max
            ));
        }
        if !self.shards.is_empty() {
            out.push_str("# TYPE monilog_shard_queue_depth gauge\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "monilog_shard_queue_depth{{shard=\"{}\"}} {}\n",
                    s.shard, s.queue_depth
                ));
            }
            out.push_str("# TYPE monilog_shard_templates gauge\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "monilog_shard_templates{{shard=\"{}\"}} {}\n",
                    s.shard, s.templates
                ));
            }
            out.push_str("# TYPE monilog_shard_restarts_total counter\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "monilog_shard_restarts_total{{shard=\"{}\"}} {}\n",
                    s.shard, s.restarts
                ));
            }
        }
        if self.rates.interval_secs > 0.0 {
            out.push_str(&format!(
                "# TYPE monilog_lines_per_second gauge\nmonilog_lines_per_second {:.3}\n",
                self.rates.lines_per_second
            ));
            out.push_str("# TYPE monilog_stage_throughput_per_second gauge\n");
            for (stage, rate) in &self.rates.stages {
                out.push_str(&format!(
                    "monilog_stage_throughput_per_second{{stage=\"{stage}\"}} {rate:.3}\n"
                ));
            }
        }
        out
    }

    /// Render as a JSON object:
    /// `{"counters":{...},"stages":{...},"shards":[...]}`. Hand-rolled —
    /// the vendored serde shim has no format layer (see vendor/README.md).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push_str("},\"stages\":{");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &s.latency;
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"buckets\":[",
                s.stage, h.count, h.sum_ns, h.max_ns, h.p50_ns, h.p95_ns, h.p99_ns
            ));
            for (j, (bound, cum)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                // u64::MAX is the overflow bucket; emit null for its bound
                // so JSON consumers don't choke on 2^64.
                if *bound == u64::MAX {
                    out.push_str(&format!("[null,{cum}]"));
                } else {
                    out.push_str(&format!("[{bound},{cum}]"));
                }
            }
            match h.exemplar {
                Some(e) => out.push_str(&format!(
                    "],\"exemplar\":{{\"trace_id\":{},\"ns\":{}}}}}",
                    e.trace_id, e.ns
                )),
                None => out.push_str("],\"exemplar\":null}"),
            }
        }
        let b = &self.batch_sizes;
        out.push_str(&format!(
            "}},\"batch_sizes\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
            b.count, b.sum, b.max
        ));
        for (j, (bound, cum)) in b.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            if *bound == u64::MAX {
                out.push_str(&format!("[null,{cum}]"));
            } else {
                out.push_str(&format!("[{bound},{cum}]"));
            }
        }
        out.push_str("]},\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"queue_depth\":{},\"templates\":{},\"restarts\":{}}}",
                s.shard, s.queue_depth, s.templates, s.restarts
            ));
        }
        out.push_str(&format!(
            "],\"rates\":{{\"interval_secs\":{:.3},\"lines_per_second\":{:.3},\"stages\":{{",
            self.rates.interval_secs, self.rates.lines_per_second
        ));
        for (i, (stage, rate)) in self.rates.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{stage}\":{rate:.3}"));
        }
        out.push_str("}}}");
        out
    }

    /// Value of one counter by name (`None` if absent).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// The snapshot of one stage by name (`None` if absent).
    pub fn stage(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| &s.latency)
    }
}

impl fmt::Display for MetricsSnapshot {
    /// One-line human-readable summary: every counter, then per-stage
    /// latency quantiles for stages that recorded anything.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{name}={value}")?;
        }
        for s in &self.stages {
            if s.latency.count == 0 {
                continue;
            }
            write!(
                f,
                " {}[p50={}us p95={}us p99={}us max={}us]",
                s.stage,
                s.latency.p50_ns / 1_000,
                s.latency.p95_ns / 1_000,
                s.latency.p99_ns / 1_000,
                s.latency.max_ns / 1_000,
            )?;
        }
        if self.batch_sizes.count > 0 {
            write!(
                f,
                " batches[n={} mean={:.1} max={}]",
                self.batch_sizes.count,
                self.batch_sizes.mean(),
                self.batch_sizes.max
            )?;
        }
        for s in &self.shards {
            write!(
                f,
                " shard{}[q={} templates={} restarts={}]",
                s.shard, s.queue_depth, s.templates, s.restarts
            )?;
        }
        if self.rates.interval_secs > 0.0 {
            write!(f, " rates[lines/s={:.1}", self.rates.lines_per_second)?;
            for (stage, rate) in &self.rates.stages {
                if *rate > 0.0 {
                    write!(f, " {stage}/s={rate:.1}")?;
                }
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_monotone_and_roundtrip() {
        // Boundaries strictly increase.
        for i in 1..N_BUCKETS - 1 {
            assert!(
                bucket_bound(i) > bucket_bound(i - 1),
                "bound({i}) = {} !> bound({}) = {}",
                bucket_bound(i),
                i - 1,
                bucket_bound(i - 1)
            );
        }
        assert_eq!(bucket_bound(N_BUCKETS - 1), u64::MAX);
        // Every value lands in the bucket whose bounds bracket it.
        for ns in [
            0,
            1,
            1023,
            1024,
            1025,
            4096,
            5000,
            1_000_000,
            999_999_999,
            u64::MAX,
        ] {
            let i = bucket_index(ns);
            // The overflow bucket's bound stands in for +Inf, so its
            // check is inclusive.
            if i < N_BUCKETS - 1 {
                assert!(ns < bucket_bound(i), "ns {ns} >= upper bound of bucket {i}");
            }
            if i > 0 {
                assert!(
                    ns >= bucket_bound(i - 1),
                    "ns {ns} < lower bound of bucket {i}"
                );
            }
        }
        // Exhaustive over the instrumented range (sampled by octave).
        for exp in MIN_EXP..=MAX_EXP {
            for offset in [0u64, 1, (1 << exp) / 3, (1 << exp) - 1] {
                let ns = (1u64 << exp) + offset;
                let i = bucket_index(ns);
                assert!(ns < bucket_bound(i));
                assert!(ns >= bucket_bound(i - 1));
            }
        }
    }

    #[test]
    fn quantiles_estimate_known_distribution() {
        let h = LatencyHistogram::new();
        // 1..=1000 µs uniformly: p50 ≈ 500 µs, p95 ≈ 950 µs, p99 ≈ 990 µs.
        for us in 1..=1000u64 {
            h.record_ns(us * 1_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_ns, 1_000_000);
        let within = |est: u64, truth: u64| {
            let err = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(
                err < 0.25,
                "estimate {est} vs truth {truth}: {:.0}% off",
                err * 100.0
            );
        };
        within(s.p50_ns, 500_000);
        within(s.p95_ns, 950_000);
        within(s.p99_ns, 990_000);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.max_ns);
    }

    /// Regression for the top-octave interpolation bug: samples saturating
    /// the final (~17 s) bucket and the overflow bucket must report
    /// `p99_ns <= max_ns` exactly. The old code overflowed u64 (debug
    /// panic) interpolating inside the overflow bucket and could overshoot
    /// the observed max in the top octave.
    #[test]
    fn top_octave_quantiles_never_exceed_max() {
        // Saturate the last instrumented bucket (values just below 2^34).
        let h = LatencyHistogram::new();
        let top = (1u64 << 34) - 1; // ≈ 17.18 s
        for i in 0..1000u64 {
            h.record_ns(top - i); // all land in the final octave bucket
        }
        let s = h.snapshot();
        assert_eq!(s.max_ns, top);
        assert!(
            s.p99_ns <= s.max_ns,
            "p99 {} exceeds max {}",
            s.p99_ns,
            s.max_ns
        );
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);

        // A single overflow-bucket sample: interpolation across the
        // [2^34, u64::MAX) range must neither panic nor overshoot.
        let h = LatencyHistogram::new();
        h.record_ns(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.max_ns, u64::MAX);
        assert!(s.p99_ns <= s.max_ns);

        // Mixed: mostly-normal traffic with a 20 s straggler.
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_ns(1_000_000);
        }
        h.record_ns(20_000_000_000);
        let s = h.snapshot();
        assert!(s.p99_ns <= s.max_ns, "p99 {} > max {}", s.p99_ns, s.max_ns);
        assert_eq!(s.max_ns, 20_000_000_000);
    }

    #[test]
    fn exemplars_track_the_largest_traced_sample() {
        let h = LatencyHistogram::new();
        h.record_ns(50_000); // untraced tail — never an exemplar
        assert_eq!(h.snapshot().exemplar, None);
        h.record_ns_traced(2_000, Some(TraceId(5)));
        h.record_ns_traced(9_000, Some(TraceId(9)));
        h.record_ns_traced(3_000, Some(TraceId(7))); // smaller, ignored
        h.record_ns_traced(4_000, None); // unsampled, ignored
        let s = h.snapshot();
        assert_eq!(
            s.exemplar,
            Some(Exemplar {
                trace_id: 9,
                ns: 9_000
            })
        );
        assert_eq!(s.count, 5, "traced records still count normally");
    }

    #[test]
    fn exemplars_surface_in_renderings() {
        let r = MetricsRegistry::shared();
        let start = Instant::now();
        r.record_traced(Stage::Detect, start, Some(TraceId(33)));
        let s = r.snapshot();
        let e = s.stage("detect").unwrap().exemplar.expect("exemplar set");
        assert_eq!(e.trace_id, 33);
        let prom = s.to_prometheus();
        assert!(
            prom.contains("monilog_stage_latency_exemplar_trace_id{stage=\"detect\"} 33"),
            "{prom}"
        );
        let json = s.to_json();
        assert!(json.contains("\"exemplar\":{\"trace_id\":33,"), "{json}");
        // Stages without a traced sample render a null exemplar.
        assert!(json.contains("\"exemplar\":null"), "{json}");
    }

    #[test]
    fn quantiles_of_empty_and_single() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.p50_ns, s.p99_ns, s.max_ns), (0, 0, 0, 0));
        h.record_ns(5_000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.p50_ns <= 5_120, "single value stays in its bucket");
        assert_eq!(s.max_ns, 5_000);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(LatencyHistogram::new());
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record_ns(1_000 + (t * PER_THREAD + i) % 100_000);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD);
        let bucket_total: u64 = s.buckets.last().map(|(_, cum)| *cum).unwrap_or(0);
        assert_eq!(
            bucket_total,
            THREADS * PER_THREAD,
            "no bucket lost a record"
        );
        // Recorded values are 1_000 + x for x in 0..THREADS*PER_THREAD,
        // all below the 100_000 modulus — the max is exact.
        assert_eq!(s.max_ns, 1_000 + (THREADS * PER_THREAD - 1));
    }

    #[test]
    fn registry_snapshot_covers_stages_and_shards() {
        let r = MetricsRegistry::shared_with_shards(2);
        r.time(Stage::Parse, || std::hint::black_box(7 * 6));
        r.stage(Stage::Detect).record(Duration::from_micros(250));
        ShardGauges::set(&r.shard(1).queue_depth, 17);
        ShardGauges::set(&r.shard(1).templates, 4);
        let s = r.snapshot();
        assert_eq!(s.stages.len(), Stage::ALL.len());
        assert_eq!(s.stage("parse_exec").unwrap().count, 1);
        assert_eq!(s.stage("detect").unwrap().count, 1);
        assert_eq!(s.shards.len(), 2);
        assert_eq!(s.shards[1].queue_depth, 17);
        assert_eq!(s.shards[1].templates, 4);
    }

    /// Mirror of `snapshot_mentions_every_counter` for the typed snapshot:
    /// every counter and every stage histogram appears in both renderings.
    #[test]
    fn renderings_mention_every_counter_and_stage() {
        let r = MetricsRegistry::shared_with_shards(1);
        PipelineMetrics::incr(&r.counters().lines_ingested);
        r.stage(Stage::Ingest).record(Duration::from_micros(3));
        let s = r.snapshot();
        let prom = s.to_prometheus();
        let json = s.to_json();
        // The PR 3 batching/caching counters must be part of the stable
        // vocabulary, not just whatever happens to be in `counters`.
        for name in ["batches_submitted", "cache_hits", "cache_misses"] {
            assert!(
                s.counters.iter().any(|(n, _)| *n == name),
                "{name} missing from snapshot counters"
            );
        }
        for (name, _) in &s.counters {
            assert!(
                prom.contains(&format!("monilog_{name}_total")),
                "{name} missing from prometheus: {prom}"
            );
            assert!(
                json.contains(&format!("\"{name}\":")),
                "{name} missing from json: {json}"
            );
        }
        for stage in Stage::ALL {
            assert!(
                prom.contains(&format!(
                    "monilog_stage_latency_seconds_count{{stage=\"{stage}\"}}"
                )),
                "{stage} missing from prometheus"
            );
            assert!(
                json.contains(&format!("\"{stage}\":{{\"count\":")),
                "{stage} missing from json: {json}"
            );
        }
        assert!(prom.contains("monilog_shard_queue_depth{shard=\"0\"}"));
        assert!(json.contains("\"shards\":[{\"shard\":0,"));
        // Histogram invariants in the prometheus text: +Inf bucket present
        // and equal to the count.
        assert!(prom.contains("le=\"+Inf\"} 1"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let h = LatencyHistogram::new();
        for us in [2u64, 2, 40, 900] {
            h.record_ns(us * 1_000);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for (_, cum) in &s.buckets {
            assert!(*cum > prev, "cumulative counts must increase");
            prev = *cum;
        }
        assert_eq!(prev, 4);
    }

    #[test]
    fn display_is_one_line_and_complete() {
        let r = MetricsRegistry::shared();
        PipelineMetrics::add(&r.counters().lines_parsed, 5);
        PipelineMetrics::add(&r.counters().batches_submitted, 2);
        PipelineMetrics::add(&r.counters().cache_hits, 40);
        PipelineMetrics::add(&r.counters().cache_misses, 3);
        r.stage(Stage::Parse).record(Duration::from_micros(10));
        let line = r.snapshot().to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("lines_parsed=5"), "{line}");
        assert!(line.contains("batches_submitted=2"), "{line}");
        assert!(line.contains("cache_hits=40"), "{line}");
        assert!(line.contains("cache_misses=3"), "{line}");
        assert!(line.contains("parse_exec[p50="), "{line}");
    }

    #[test]
    fn size_histogram_buckets_and_stats() {
        let h = SizeHistogram::new();
        for n in [1u64, 1, 2, 3, 64, 100_000] {
            h.record(n);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 1 + 2 + 3 + 64 + 100_000);
        assert_eq!(s.max, 100_000);
        // 1,1 → bound 1; 2 → bound 2; 3 → bound 4; 64 → bound 64;
        // 100_000 > 2^16 → overflow.
        assert_eq!(
            s.buckets,
            vec![(1, 2), (2, 3), (4, 4), (64, 5), (u64::MAX, 6)]
        );
        assert!((s.mean() - s.sum as f64 / 6.0).abs() < 1e-9);
        assert_eq!(SizeSnapshot::default().mean(), 0.0);
    }

    #[test]
    fn batch_sizes_flow_into_snapshot_and_renderings() {
        let r = MetricsRegistry::shared();
        r.batch_sizes().record(32);
        r.batch_sizes().record(7);
        let s = r.snapshot();
        assert_eq!(s.batch_sizes.count, 2);
        assert_eq!(s.batch_sizes.sum, 39);
        let prom = s.to_prometheus();
        assert!(prom.contains("monilog_batch_size_lines_count 2"), "{prom}");
        assert!(
            prom.contains("monilog_batch_size_lines_bucket{le=\"32\"} 2"),
            "{prom}"
        );
        let json = s.to_json();
        assert!(json.contains("\"batch_sizes\":{\"count\":2"), "{json}");
        assert!(s.to_string().contains("batches[n=2 mean=19.5 max=32]"));
        // Empty histograms stay out of the prometheus text but keep the
        // JSON shape stable.
        let empty = MetricsRegistry::shared().snapshot();
        assert!(!empty.to_prometheus().contains("monilog_batch_size"));
        assert!(empty.to_json().contains("\"batch_sizes\":{\"count\":0"));
    }

    #[test]
    fn bulk_recording_matches_repeated_single_records() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..5 {
            a.record_ns(3_000);
        }
        b.record_ns_n(3_000, 5);
        b.record_ns_n(9_999, 0); // no-op
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn interval_rates_close_over_spaced_snapshots() {
        let r = MetricsRegistry::shared();
        // First snapshot opens the window: no rates yet.
        let s0 = r.snapshot();
        assert_eq!(s0.rates.interval_secs, 0.0);
        assert!(!s0.to_prometheus().contains("monilog_lines_per_second"));
        PipelineMetrics::add(&r.counters().lines_ingested, 500);
        r.stage(Stage::Parse).record_ns_n(2_000, 500);
        std::thread::sleep(MIN_RATE_INTERVAL + Duration::from_millis(20));
        let s1 = r.snapshot();
        assert!(s1.rates.interval_secs > 0.0, "interval closed");
        assert!(
            s1.rates.lines_per_second > 0.0,
            "lines/s positive: {:?}",
            s1.rates
        );
        let parse_rate = s1
            .rates
            .stages
            .iter()
            .find(|(n, _)| *n == "parse_exec")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(parse_rate > 0.0, "stage throughput positive");
        let prom = s1.to_prometheus();
        assert!(prom.contains("monilog_lines_per_second "), "{prom}");
        assert!(
            prom.contains("monilog_stage_throughput_per_second{stage=\"parse_exec\"}"),
            "{prom}"
        );
        let json = s1.to_json();
        assert!(json.contains("\"rates\":{\"interval_secs\":"), "{json}");
        assert!(json.contains("\"lines_per_second\":"), "{json}");
        let line = s1.to_string();
        assert!(line.contains("rates[lines/s="), "{line}");
        assert!(line.contains("parse_exec/s="), "{line}");
        // A snapshot taken immediately after reuses the closed interval
        // instead of publishing a noisy near-zero-Δt estimate.
        let s2 = r.snapshot();
        assert_eq!(s2.rates, s1.rates);
    }

    #[test]
    fn fmt_seconds_is_prometheus_safe() {
        assert_eq!(fmt_seconds(1_000_000_000), "1.0");
        assert_eq!(fmt_seconds(1_024), "0.000001024");
        assert_eq!(fmt_seconds(0), "0.0");
        assert_eq!(fmt_seconds(500_000_000), "0.5");
    }
}
