//! The live operations surface: queryable report store, `/status` health
//! rollup, and hot config reload.
//!
//! MoniLog's end goal is an operator loop — the system surfaces ranked
//! anomalies so administrators can evaluate and act (Section V). Before
//! this module the only way to see what the monitor decided was tailing
//! `anomalies.jsonl` on the box, and the only way to change its behavior
//! was a restart that drops the warm parser state. Three pieces close
//! that gap, all served from the same epoll event loop as `/metrics`
//! (see [`crate::export`]):
//!
//! - [`ReportStore`] — a bounded in-memory ring of recent
//!   [`AnomalyReport`]s, fed at the emit point and backfilled from
//!   `anomalies.jsonl` on restart, behind `GET /reports` (filter by
//!   `since`/`severity`/`template`/`source`, paginate with `limit`) and
//!   `GET /reports/{id}` (joins the report's provenance to its sampled
//!   trace spans).
//! - [`StatusBoard`] + [`render_status`] — one JSON document scoring the
//!   whole pipeline (`ok | degraded | critical` with machine-readable
//!   reasons): per-stage p99 vs. a latency budget, shard health, breaker
//!   states, WAL/checkpoint lag, queue depth, cache hit rates.
//! - [`ReloadableConfig`] — a versioned atomic-swap snapshot of the
//!   allowlisted runtime knobs, driven by `POST /config` and SIGHUP
//!   (see [`crate::durable::signal`]), audit-logged to the state dir,
//!   and consulted by the ingest loop each batch — zero restart, zero
//!   dropped lines.
//!
//! ## Why only these keys reload
//!
//! The allowlist ([`RELOADABLE_KEYS`]) is exactly the set of knobs whose
//! consumers re-read them per batch or per operation: overload policy
//! (checked at the source boundary per line), trace sampling (relaxed
//! atomic read per line), severity routing (consulted per emitted
//! report), ingest batching (re-read per `recv_batch` call), and the
//! sink retry cap (read per backoff computation). Everything else —
//! listener addresses, shard counts, state directory, journal layout —
//! is structural: changing it means re-binding sockets or re-sharding
//! state, which is a restart, not a reload.

use crate::config::OverloadPolicy;
use crate::metrics::PipelineMetrics;
use crate::observe::MetricsSnapshot;
use crate::supervisor::ShardHealth;
use crate::trace::Tracer;
use monilog_model::trace::json_string;
use monilog_model::{AnomalyReport, Criticality, TraceId};
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default bound on the in-memory report ring.
pub const DEFAULT_REPORT_CAPACITY: usize = 1024;
/// Default `limit` for `GET /reports` when the query does not set one.
pub const DEFAULT_REPORT_LIMIT: usize = 100;
/// Hard cap on `limit` (a query asking for more is a 400).
pub const MAX_REPORT_LIMIT: usize = 1000;
/// Default per-stage p99 latency budget for the `/status` rollup, in
/// milliseconds. Generous on purpose: checkpoint fsyncs and sink
/// round-trips are instrumented stages too.
pub const DEFAULT_LATENCY_BUDGET_MS: u64 = 250;

/// Parse a CLI-style criticality name (`low` | `moderate` | `high`).
pub fn parse_criticality(s: &str) -> Result<Criticality, String> {
    match s {
        "low" => Ok(Criticality::Low),
        "moderate" => Ok(Criticality::Moderate),
        "high" => Ok(Criticality::High),
        other => Err(format!(
            "unknown criticality {other:?} (expected low|moderate|high)"
        )),
    }
}

// ---------------------------------------------------------------------------
// Report store
// ---------------------------------------------------------------------------

/// One report as the store keeps it: the raw JSON line (exactly what
/// `anomalies.jsonl` holds) plus the indexed fields queries filter on.
///
/// `severity` is a *live-classification* attribute: it is known when the
/// report flows through the emit path but is not part of the durable
/// JSON record, so reports backfilled after a restart carry `None` and
/// only match queries without a severity filter.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredReport {
    pub id: u64,
    pub severity: Option<Criticality>,
    /// Distinct template ids (events ∪ provenance), ascending.
    pub template_ids: Vec<u64>,
    /// Distinct contributing source ids, ascending.
    pub source_ids: Vec<u64>,
    /// Provenance trace ids, resolvable to spans while they remain in
    /// the flight recorder.
    pub trace_ids: Vec<u64>,
    /// The full report JSON, byte-identical to the `anomalies.jsonl` line.
    pub json: String,
}

impl StoredReport {
    /// Index a live report at the emit point, where classification has
    /// already assigned a criticality.
    pub fn from_report(report: &AnomalyReport, severity: Criticality) -> StoredReport {
        let mut template_ids: Vec<u64> =
            report.events.iter().map(|e| e.template.0 as u64).collect();
        template_ids.extend(report.provenance.template_ids.iter().map(|&t| t as u64));
        template_ids.sort_unstable();
        template_ids.dedup();
        StoredReport {
            id: report.id,
            severity: Some(severity),
            template_ids,
            source_ids: report.sources().iter().map(|s| s.0 as u64).collect(),
            trace_ids: report.provenance.trace_ids.iter().map(|t| t.0).collect(),
            json: report.to_json(),
        }
    }

    /// Re-index one `anomalies.jsonl` line on restart. A string scan over
    /// the exact key layout [`AnomalyReport::to_json`] emits — key
    /// patterns are quoted, and quotes inside JSON string values are
    /// escaped, so a pattern like `"events":[` cannot match inside one.
    pub fn from_json_line(line: &str) -> Option<StoredReport> {
        let line = line.trim();
        if !line.starts_with('{') {
            return None;
        }
        let id = num_after(line, "{\"id\":")?;
        let events_start = line.find("\"events\":[")?;
        let prov_start = line.find("\"provenance\":{")?;
        let events = line.get(events_start..prov_start)?;
        let mut template_ids = nums_after_each(events, "\"template\":");
        let mut source_ids = nums_after_each(events, "\"source\":");
        let prov = &line[prov_start..];
        template_ids.extend(nums_in_array(prov, "\"template_ids\":["));
        template_ids.sort_unstable();
        template_ids.dedup();
        source_ids.sort_unstable();
        source_ids.dedup();
        Some(StoredReport {
            id,
            severity: None,
            template_ids,
            source_ids,
            trace_ids: nums_in_array(prov, "\"trace_ids\":["),
            json: line.to_string(),
        })
    }

    fn matches(&self, q: &ReportsQuery) -> bool {
        if let Some(since) = q.since {
            if self.id <= since {
                return false;
            }
        }
        if let Some(sev) = q.severity {
            if self.severity != Some(sev) {
                return false;
            }
        }
        if let Some(t) = q.template {
            if !self.template_ids.contains(&t) {
                return false;
            }
        }
        if let Some(s) = q.source {
            if !self.source_ids.contains(&s) {
                return false;
            }
        }
        true
    }
}

/// Parse the decimal number directly after the first occurrence of `key`.
fn num_after(s: &str, key: &str) -> Option<u64> {
    let at = s.find(key)? + key.len();
    let digits: String = s[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Every decimal number directly following any occurrence of `key`.
fn nums_after_each(s: &str, key: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(at) = rest.find(key) {
        rest = &rest[at + key.len()..];
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(n) = digits.parse() {
            out.push(n);
        }
    }
    out
}

/// The comma-separated numbers of the JSON array opened by `key` (which
/// must end in `[`).
fn nums_in_array(s: &str, key: &str) -> Vec<u64> {
    let Some(at) = s.find(key) else {
        return Vec::new();
    };
    let rest = &s[at + key.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|n| n.trim().parse().ok())
        .collect()
}

/// A parsed `GET /reports` query. Results are returned in ascending id
/// order; clients paginate by passing the last id they saw as `since`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportsQuery {
    /// Only reports with `id > since`.
    pub since: Option<u64>,
    /// Only reports whose live classification matched exactly (backfilled
    /// reports have no severity and never match a severity filter).
    pub severity: Option<Criticality>,
    /// Only reports that involve this template id.
    pub template: Option<u64>,
    /// Only reports with events from this source id.
    pub source: Option<u64>,
    /// At most this many reports (1..=[`MAX_REPORT_LIMIT`]).
    pub limit: usize,
}

impl Default for ReportsQuery {
    fn default() -> Self {
        ReportsQuery {
            since: None,
            severity: None,
            template: None,
            source: None,
            limit: DEFAULT_REPORT_LIMIT,
        }
    }
}

impl ReportsQuery {
    /// Parse the query-string part of `GET /reports?...`. Unknown keys,
    /// duplicate keys, and unparseable values are errors (a 400, not a
    /// silently-empty result set).
    pub fn parse(qs: &str) -> Result<ReportsQuery, String> {
        let mut q = ReportsQuery::default();
        let mut seen = [false; 5];
        let mut take = |slot: usize, key: &str| -> Result<(), String> {
            if seen[slot] {
                return Err(format!("duplicate key {key:?}"));
            }
            seen[slot] = true;
            Ok(())
        };
        for part in qs.split('&') {
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in {part:?}"))?;
            match k {
                "since" => {
                    take(0, k)?;
                    q.since = Some(v.parse().map_err(|_| format!("bad since {v:?}"))?);
                }
                "severity" => {
                    take(1, k)?;
                    q.severity = Some(parse_criticality(v)?);
                }
                "template" => {
                    take(2, k)?;
                    q.template = Some(v.parse().map_err(|_| format!("bad template {v:?}"))?);
                }
                "source" => {
                    take(3, k)?;
                    q.source = Some(v.parse().map_err(|_| format!("bad source {v:?}"))?);
                }
                "limit" => {
                    take(4, k)?;
                    let n: usize = v.parse().map_err(|_| format!("bad limit {v:?}"))?;
                    if n == 0 || n > MAX_REPORT_LIMIT {
                        return Err(format!("limit must be 1..={MAX_REPORT_LIMIT}"));
                    }
                    q.limit = n;
                }
                other => return Err(format!("unknown query key {other:?}")),
            }
        }
        Ok(q)
    }

    /// Canonical query-string rendering; `parse` round-trips it.
    pub fn to_query_string(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = self.since {
            parts.push(format!("since={s}"));
        }
        if let Some(s) = self.severity {
            parts.push(format!("severity={s}"));
        }
        if let Some(t) = self.template {
            parts.push(format!("template={t}"));
        }
        if let Some(s) = self.source {
            parts.push(format!("source={s}"));
        }
        parts.push(format!("limit={}", self.limit));
        parts.join("&")
    }
}

/// Bounded, indexed ring of the most recent reports. Report ids are
/// assigned densely by the detection stage, so the ring is always in
/// ascending id order and `record` can drop replayed duplicates with one
/// comparison against the newest stored id.
#[derive(Debug)]
pub struct ReportStore {
    capacity: usize,
    ring: Mutex<VecDeque<Arc<StoredReport>>>,
}

impl ReportStore {
    pub fn shared(capacity: usize) -> Arc<Self> {
        Arc::new(ReportStore {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        })
    }

    /// Insert one report. Returns false (and stores nothing) when the id
    /// is not newer than the newest stored report — which is exactly what
    /// a journal replay of an already-emitted report looks like.
    pub fn record(&self, report: StoredReport) -> bool {
        let mut ring = self.ring.lock().unwrap();
        if let Some(newest) = ring.back() {
            if report.id <= newest.id {
                return false;
            }
        }
        ring.push_back(Arc::new(report));
        while ring.len() > self.capacity {
            ring.pop_front();
        }
        true
    }

    /// Re-populate from the durable record (`anomalies.jsonl`) on
    /// restart. A missing file is an empty store, not an error. Returns
    /// how many reports were loaded.
    pub fn backfill_from_file(&self, path: &Path) -> std::io::Result<usize> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut n = 0;
        for line in text.lines() {
            if let Some(r) = StoredReport::from_json_line(line) {
                if self.record(r) {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// All matching reports in ascending id order: the total match count
    /// and the first `limit` matches.
    pub fn query(&self, q: &ReportsQuery) -> (usize, Vec<Arc<StoredReport>>) {
        let ring = self.ring.lock().unwrap();
        let mut total = 0;
        let mut out = Vec::new();
        for r in ring.iter() {
            if r.matches(q) {
                total += 1;
                if out.len() < q.limit {
                    out.push(Arc::clone(r));
                }
            }
        }
        (total, out)
    }

    /// Look up one report by id (binary search — the ring is id-sorted).
    pub fn get(&self, id: u64) -> Option<Arc<StoredReport>> {
        let ring = self.ring.lock().unwrap();
        let at = ring.binary_search_by_key(&id, |r| r.id).ok()?;
        Some(Arc::clone(&ring[at]))
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Id of the newest stored report (0 when empty).
    pub fn newest_id(&self) -> u64 {
        self.ring.lock().unwrap().back().map_or(0, |r| r.id)
    }
}

fn severity_json(s: Option<Criticality>) -> String {
    match s {
        Some(c) => format!("\"{c}\""),
        None => "null".to_string(),
    }
}

/// The `GET /reports` response body.
pub fn reports_json(total: usize, items: &[Arc<StoredReport>]) -> String {
    let mut out = format!(
        "{{\"total\":{total},\"count\":{},\"reports\":[",
        items.len()
    );
    for (i, r) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"severity\":{},\"report\":{}}}",
            severity_json(r.severity),
            r.json
        ));
    }
    out.push_str("]}");
    out
}

/// The `GET /reports/{id}` response body: the report plus every sampled
/// span its provenance trace ids still resolve to — one HTTP call answers
/// "what fired, from which template, through which stages, and why".
pub fn report_detail_json(r: &StoredReport, tracer: Option<&Tracer>) -> String {
    let mut spans = Vec::new();
    if let Some(t) = tracer {
        for &id in &r.trace_ids {
            for span in t.spans_for(TraceId(id)) {
                spans.push(span.to_json());
            }
        }
    }
    format!(
        "{{\"severity\":{},\"report\":{},\"spans\":[{}]}}",
        severity_json(r.severity),
        r.json,
        spans.join(",")
    )
}

// ---------------------------------------------------------------------------
// Status rollup
// ---------------------------------------------------------------------------

/// Overall pipeline health, worst reason wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusLevel {
    Ok,
    Degraded,
    Critical,
}

impl StatusLevel {
    pub fn name(self) -> &'static str {
        match self {
            StatusLevel::Ok => "ok",
            StatusLevel::Degraded => "degraded",
            StatusLevel::Critical => "critical",
        }
    }
}

/// Health facts only the monitor loop can see — published into the
/// [`StatusBoard`] each batch so the exporter thread renders `/status`
/// without reaching into the pipeline, supervisor, or delivery worker.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatusInputs {
    pub shards_total: usize,
    pub shards_alive: usize,
    pub shards_stalled: usize,
    /// Any shard in crash-loop degradation (supervisor gave up respawning
    /// at full capability).
    pub crash_looping: bool,
    /// Lines waiting in the ingest queue.
    pub ingest_queue_depth: u64,
    /// `(route name, breaker state name)` per delivery route.
    pub breakers: Vec<(String, String)>,
    /// Bytes buffered on disk awaiting delivery.
    pub delivery_pending_bytes: u64,
    /// True while reports are being diverted to spill files.
    pub delivery_spilling: bool,
    pub checkpoint_generation: u64,
    /// Milliseconds since the last committed checkpoint.
    pub checkpoint_age_ms: u64,
    /// Journal bytes appended since the last checkpoint (replay cost of a
    /// crash right now).
    pub wal_lag_bytes: u64,
    /// Cluster router link (`--join` monitors only): `(state, reason)`
    /// from the link supervisor's snapshot. A lost link *degrades* the
    /// monitor — local sources keep flowing — so it reports through the
    /// degraded tier, never as a 503.
    pub router_link: Option<(String, String)>,
}

impl StatusInputs {
    /// Fold a `SupervisedParseService::shard_status()` view into the
    /// shard fields.
    pub fn apply_shard_status(&mut self, shards: &[ShardHealth]) {
        self.shards_total = shards.len();
        self.shards_alive = shards.iter().filter(|h| h.alive).count();
        self.shards_stalled = shards.iter().filter(|h| h.stalled).count();
        self.crash_looping = shards.iter().any(|h| h.degraded);
    }
}

/// Mailbox between the monitor loop (publisher) and the exporter thread
/// (reader): the freshest [`StatusInputs`] plus the latency budget.
#[derive(Debug)]
pub struct StatusBoard {
    inputs: Mutex<StatusInputs>,
    budget_ms: u64,
}

impl StatusBoard {
    pub fn shared(budget_ms: u64) -> Arc<Self> {
        Arc::new(StatusBoard {
            inputs: Mutex::new(StatusInputs::default()),
            budget_ms: budget_ms.max(1),
        })
    }

    pub fn publish(&self, inputs: StatusInputs) {
        *self.inputs.lock().unwrap() = inputs;
    }

    pub fn inputs(&self) -> StatusInputs {
        self.inputs.lock().unwrap().clone()
    }

    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }
}

/// Reasons the service should *not* receive traffic — the `GET /readyz`
/// predicate, and the critical tier of [`render_status`]. Empty means
/// ready.
pub fn readiness_reasons(inputs: &StatusInputs) -> Vec<String> {
    let mut reasons = Vec::new();
    if inputs.crash_looping {
        reasons.push("crash-loop degradation: a shard exhausted its respawn budget".to_string());
    }
    if inputs.shards_total > 0 && inputs.shards_stalled == inputs.shards_total {
        reasons.push(format!("all {} shards stalled", inputs.shards_total));
    }
    if inputs.delivery_spilling {
        reasons.push("delivery layer is spilling reports to disk".to_string());
    }
    reasons
}

/// Conditions that degrade the service without making it unready — the
/// degraded tier of [`render_status`], also reported (with a 200) by
/// `GET /readyz` so probes distinguish "healthy" from "limping".
pub fn degraded_reasons(inputs: &StatusInputs) -> Vec<String> {
    let mut reasons = Vec::new();
    if inputs.shards_stalled > 0 && inputs.shards_stalled < inputs.shards_total {
        reasons.push(format!(
            "{}/{} shards stalled",
            inputs.shards_stalled, inputs.shards_total
        ));
    }
    for (route, state) in &inputs.breakers {
        if state != "closed" {
            reasons.push(format!("breaker {route} {state}"));
        }
    }
    if let Some((state, reason)) = &inputs.router_link {
        if state != "connected" {
            // e.g. `router link degraded: router-link-lost` — the monitor
            // keeps serving local sources while the link supervisor
            // reconnects, so this never gates readiness.
            reasons.push(format!("router link {state}: {reason}"));
        }
    }
    reasons
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Reduce a metrics snapshot plus the monitor-published inputs to one
/// `ok | degraded | critical` JSON document with machine-readable
/// reasons. `config_version` is the current [`ReloadableConfig`] version
/// so fleet tooling can confirm a reload landed.
pub fn render_status(
    snap: &MetricsSnapshot,
    inputs: &StatusInputs,
    budget_ms: u64,
    config_version: u64,
) -> (StatusLevel, String) {
    let critical = readiness_reasons(inputs);
    let mut degraded = degraded_reasons(inputs);
    let budget_ns = budget_ms.saturating_mul(1_000_000);
    let mut stages = String::new();
    for (i, s) in snap.stages.iter().enumerate() {
        let over = s.latency.count > 0 && s.latency.p99_ns > budget_ns;
        if over {
            degraded.push(format!(
                "stage {} p99 {:.3}ms over budget {budget_ms}ms",
                s.stage,
                ms(s.latency.p99_ns)
            ));
        }
        if i > 0 {
            stages.push(',');
        }
        stages.push_str(&format!(
            "\"{}\":{{\"count\":{},\"p99_ms\":{:.3},\"max_ms\":{:.3},\"over_budget\":{over}}}",
            s.stage,
            s.latency.count,
            ms(s.latency.p99_ns),
            ms(s.latency.max_ns)
        ));
    }
    let mut breakers = String::new();
    for (i, (route, state)) in inputs.breakers.iter().enumerate() {
        if i > 0 {
            breakers.push(',');
        }
        breakers.push_str(&format!("{}:{}", json_string(route), json_string(state)));
    }
    let cluster = match &inputs.router_link {
        Some((state, reason)) => format!(
            "{{\"router_link\":{},\"reason\":{}}}",
            json_string(state),
            json_string(reason)
        ),
        None => "null".to_string(),
    };
    let level = if !critical.is_empty() {
        StatusLevel::Critical
    } else if !degraded.is_empty() {
        StatusLevel::Degraded
    } else {
        StatusLevel::Ok
    };
    let mut reasons: Vec<String> = critical;
    reasons.extend(degraded);
    let reasons_json: Vec<String> = reasons.iter().map(|r| json_string(r)).collect();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let hits = counter("cache_hits");
    let misses = counter("cache_misses");
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let ingested = counter("lines_ingested");
    let dups = counter("duplicates_dropped");
    let dedup_rate = if ingested + dups > 0 {
        dups as f64 / (ingested + dups) as f64
    } else {
        0.0
    };
    let json = format!(
        "{{\"status\":\"{}\",\"reasons\":[{}],\"config_version\":{config_version},\
         \"latency_budget_ms\":{budget_ms},\"stages\":{{{stages}}},\
         \"shards\":{{\"total\":{},\"alive\":{},\"stalled\":{},\"crash_looping\":{}}},\
         \"queue\":{{\"depth\":{}}},\
         \"delivery\":{{\"pending_bytes\":{},\"spilling\":{},\"breakers\":{{{breakers}}}}},\
         \"cluster\":{cluster},\
         \"durability\":{{\"checkpoint_generation\":{},\"checkpoint_age_ms\":{},\
         \"wal_lag_bytes\":{}}},\
         \"cache\":{{\"hits\":{hits},\"misses\":{misses},\"hit_rate\":{hit_rate:.4}}},\
         \"dedup\":{{\"dropped\":{dups},\"drop_rate\":{dedup_rate:.4}}},\
         \"rates\":{{\"interval_secs\":{:.3},\"lines_per_second\":{:.3}}}}}",
        level.name(),
        reasons_json.join(","),
        inputs.shards_total,
        inputs.shards_alive,
        inputs.shards_stalled,
        inputs.crash_looping,
        inputs.ingest_queue_depth,
        inputs.delivery_pending_bytes,
        inputs.delivery_spilling,
        inputs.checkpoint_generation,
        inputs.checkpoint_age_ms,
        inputs.wal_lag_bytes,
        snap.rates.interval_secs,
        snap.rates.lines_per_second,
    );
    (level, json)
}

// ---------------------------------------------------------------------------
// Hot config reload
// ---------------------------------------------------------------------------

/// The runtime keys an operator may change without a restart. Names
/// mirror the CLI flags they tune.
pub const RELOADABLE_KEYS: [&str; 7] = [
    "on-overload",
    "trace-sample-rate",
    "page-at",
    "route-critical",
    "batch-lines",
    "batch-deadline-ms",
    "sink-retry-max-ms",
];

/// One immutable configuration generation. The ingest loop fetches the
/// current snapshot each batch ([`ReloadableConfig::current`]) and pushes
/// any changes into the live components; readers never see a torn or
/// partially-applied update.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSnapshot {
    /// Monotonic generation; 0 is the boot snapshot built from the CLI.
    pub version: u64,
    pub on_overload: OverloadPolicy,
    /// Trace one line in N (0 disables span sampling).
    pub trace_sample_rate: u32,
    /// Criticality at or above which reports are paged.
    pub page_at: Criticality,
    /// Which sink gets the Page class (`http` | `tcp` | `file`), `None`
    /// for the default file route.
    pub route_critical: Option<String>,
    /// Max lines drained from the ingest queue per batch.
    pub batch_lines: usize,
    /// Deadline for one ingest batch to fill, in milliseconds.
    pub batch_deadline_ms: u64,
    /// Cap on sink retry backoff, in milliseconds.
    pub sink_retry_max_ms: u64,
}

impl Default for ConfigSnapshot {
    fn default() -> Self {
        ConfigSnapshot {
            version: 0,
            on_overload: OverloadPolicy::Block,
            trace_sample_rate: crate::trace::DEFAULT_SAMPLE_RATE,
            page_at: Criticality::High,
            route_critical: None,
            batch_lines: 512,
            batch_deadline_ms: 50,
            sink_retry_max_ms: 5_000,
        }
    }
}

fn apply_key(snap: &mut ConfigSnapshot, key: &str, value: &str) -> Result<(), String> {
    match key {
        "on-overload" => snap.on_overload = OverloadPolicy::parse(value)?,
        "trace-sample-rate" => {
            snap.trace_sample_rate = value
                .parse()
                .map_err(|_| format!("bad trace-sample-rate {value:?}"))?;
        }
        "page-at" => snap.page_at = parse_criticality(value)?,
        "route-critical" => {
            snap.route_critical = match value {
                "none" => None,
                "http" | "tcp" | "file" => Some(value.to_string()),
                other => {
                    return Err(format!(
                        "unknown route-critical {other:?} (expected http|tcp|file|none)"
                    ))
                }
            };
        }
        "batch-lines" => {
            let n: usize = value
                .parse()
                .map_err(|_| format!("bad batch-lines {value:?}"))?;
            if n == 0 {
                return Err("batch-lines must be positive".to_string());
            }
            snap.batch_lines = n;
        }
        "batch-deadline-ms" => {
            snap.batch_deadline_ms = value
                .parse()
                .map_err(|_| format!("bad batch-deadline-ms {value:?}"))?;
        }
        "sink-retry-max-ms" => {
            snap.sink_retry_max_ms = value
                .parse()
                .map_err(|_| format!("bad sink-retry-max-ms {value:?}"))?;
        }
        other => return Err(format!("key {other:?} is not reloadable")),
    }
    Ok(())
}

/// Split a `POST /config` body or config-file text into key/value pairs.
/// Accepts `&`- and newline-separated `key=value` entries; blank entries
/// and `#` comment lines are skipped; whitespace around keys and values
/// is trimmed (so `key = value` config files read naturally).
pub fn parse_config_pairs(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    for part in text.split(['&', '\n']) {
        let part = part.trim();
        if part.is_empty() || part.starts_with('#') {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("missing '=' in {part:?}"))?;
        pairs.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok(pairs)
}

/// Versioned atomic-swap runtime configuration with an allowlisted key
/// set, an audit trail in the state dir, and reject-don't-crash
/// semantics: an invalid update (unknown key, bad value, unreadable
/// file) leaves the previous snapshot in place and bumps
/// `config_reload_rejected`.
#[derive(Debug)]
pub struct ReloadableConfig {
    current: Mutex<Arc<ConfigSnapshot>>,
    audit_path: Option<PathBuf>,
    counters: Arc<PipelineMetrics>,
}

impl ReloadableConfig {
    /// Wrap the boot snapshot (version forced to 0). `audit_path` is the
    /// append-only reload journal, conventionally
    /// `<state-dir>/config-audit.log`.
    pub fn shared(
        mut initial: ConfigSnapshot,
        audit_path: Option<PathBuf>,
        counters: Arc<PipelineMetrics>,
    ) -> Arc<Self> {
        initial.version = 0;
        Arc::new(ReloadableConfig {
            current: Mutex::new(Arc::new(initial)),
            audit_path,
            counters,
        })
    }

    /// The current snapshot — an `Arc` clone, safe to read at batch
    /// granularity on the hot path.
    pub fn current(&self) -> Arc<ConfigSnapshot> {
        Arc::clone(&self.current.lock().unwrap())
    }

    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Apply a set of key/value updates as one new snapshot —
    /// all-or-nothing: any invalid key or value rejects the whole update
    /// and keeps the previous snapshot. `origin` tags the audit record
    /// (`post`, `sighup:<path>`).
    pub fn apply_pairs(
        &self,
        pairs: &[(String, String)],
        origin: &str,
    ) -> Result<Arc<ConfigSnapshot>, String> {
        let staged = (|| {
            if pairs.is_empty() {
                return Err("no config keys in update".to_string());
            }
            let mut staged = (*self.current()).clone();
            for (k, v) in pairs {
                apply_key(&mut staged, k, v)?;
            }
            Ok(staged)
        })();
        let mut staged = match staged {
            Ok(s) => s,
            Err(e) => {
                PipelineMetrics::incr(&self.counters.config_reload_rejected);
                return Err(e);
            }
        };
        // Swap under the lock so concurrent updates serialize and the
        // version stays monotonic.
        let mut cur = self.current.lock().unwrap();
        staged.version = cur.version + 1;
        let staged = Arc::new(staged);
        *cur = Arc::clone(&staged);
        drop(cur);
        PipelineMetrics::incr(&self.counters.config_reloads_applied);
        self.audit(&staged, origin, pairs);
        Ok(staged)
    }

    /// Re-read a config file (the SIGHUP path). The whole file must parse
    /// and validate, or the previous snapshot stays.
    pub fn apply_file(&self, path: &Path) -> Result<Arc<ConfigSnapshot>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                PipelineMetrics::incr(&self.counters.config_reload_rejected);
                return Err(format!("reading {}: {e}", path.display()));
            }
        };
        let pairs = match parse_config_pairs(&text) {
            Ok(p) => p,
            Err(e) => {
                PipelineMetrics::incr(&self.counters.config_reload_rejected);
                return Err(e);
            }
        };
        self.apply_pairs(&pairs, &format!("sighup:{}", path.display()))
    }

    /// Append one audit record. Best-effort: the reload has already been
    /// applied; a failing audit write must not take the pipeline down.
    fn audit(&self, snap: &ConfigSnapshot, origin: &str, pairs: &[(String, String)]) {
        let Some(path) = &self.audit_path else {
            return;
        };
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let changes: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
            .collect();
        let line = format!(
            "{{\"version\":{},\"unix_ms\":{unix_ms},\"origin\":{},\"changes\":{{{}}}}}\n",
            snap.version,
            json_string(origin),
            changes.join(",")
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// The `POST /config` / `GET /config` response body.
    pub fn to_json(&self) -> String {
        let c = self.current();
        format!(
            "{{\"version\":{},\"on-overload\":\"{}\",\"trace-sample-rate\":{},\
             \"page-at\":\"{}\",\"route-critical\":{},\"batch-lines\":{},\
             \"batch-deadline-ms\":{},\"sink-retry-max-ms\":{}}}",
            c.version,
            c.on_overload.name(),
            c.trace_sample_rate,
            c.page_at,
            match &c.route_critical {
                Some(r) => json_string(r),
                None => "null".to_string(),
            },
            c.batch_lines,
            c.batch_deadline_ms,
            c.sink_retry_max_ms
        )
    }
}

/// Everything the exporter needs to serve the ops routes, bundled so the
/// HTTP layer takes one optional handle.
#[derive(Debug, Clone)]
pub struct OpsState {
    pub reports: Arc<ReportStore>,
    pub status: Arc<StatusBoard>,
    pub reload: Arc<ReloadableConfig>,
}

impl OpsState {
    pub fn new(
        reports: Arc<ReportStore>,
        status: Arc<StatusBoard>,
        reload: Arc<ReloadableConfig>,
    ) -> OpsState {
        OpsState {
            reports,
            status,
            reload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_model::{
        AnomalyKind, EventId, LogEvent, Provenance, ScoreComponent, Severity, SourceId, TemplateId,
        Timestamp,
    };

    fn report(id: u64, sources: &[u16], templates: &[u32], traces: &[u64]) -> AnomalyReport {
        let events: Vec<LogEvent> = sources
            .iter()
            .zip(templates.iter().cycle())
            .enumerate()
            .map(|(i, (&s, &t))| {
                LogEvent::new(
                    EventId(id * 100 + i as u64),
                    Timestamp::from_millis(1_000 + i as u64),
                    SourceId(s),
                    Severity::Info,
                    TemplateId(t),
                    vec![],
                    None,
                )
                .with_trace(traces.first().map(|&t| TraceId(t)))
            })
            .collect();
        AnomalyReport {
            id,
            kind: AnomalyKind::Sequential,
            score: 0.9,
            detector: "deeplog".to_string(),
            events,
            explanation: "expected \"L2\" next".to_string(),
            provenance: Provenance {
                trace_ids: traces.iter().map(|&t| TraceId(t)).collect(),
                template_ids: templates.to_vec(),
                window: Some((Timestamp::from_millis(1_000), Timestamp::from_millis(2_000))),
                score_components: vec![ScoreComponent::new("score", 0.9)],
            },
        }
    }

    fn stored(id: u64, severity: Criticality) -> StoredReport {
        StoredReport::from_report(&report(id, &[1, 2], &[7, 8], &[id * 10]), severity)
    }

    #[test]
    fn stored_report_roundtrips_through_the_jsonl_line() {
        let r = report(42, &[3, 5], &[11, 12], &[99]);
        let live = StoredReport::from_report(&r, Criticality::High);
        assert_eq!(live.id, 42);
        assert_eq!(live.severity, Some(Criticality::High));
        assert_eq!(live.source_ids, vec![3, 5]);
        assert_eq!(live.trace_ids, vec![99]);
        assert!(live.template_ids.contains(&11) && live.template_ids.contains(&12));

        let back = StoredReport::from_json_line(&r.to_json()).expect("parses");
        assert_eq!(back.id, live.id);
        assert_eq!(back.severity, None, "severity is a live attribute");
        assert_eq!(back.source_ids, live.source_ids);
        assert_eq!(back.template_ids, live.template_ids);
        assert_eq!(back.trace_ids, live.trace_ids);
        assert_eq!(back.json, live.json);

        assert_eq!(StoredReport::from_json_line("not json"), None);
        assert_eq!(StoredReport::from_json_line(""), None);
    }

    #[test]
    fn store_bounds_dedupes_and_queries() {
        let store = ReportStore::shared(4);
        for id in 1..=6u64 {
            let sev = if id % 2 == 0 {
                Criticality::High
            } else {
                Criticality::Low
            };
            assert!(store.record(stored(id, sev)));
        }
        // Bounded: only the 4 newest stay.
        assert_eq!(store.len(), 4);
        assert_eq!(store.get(1), None, "evicted");
        assert!(store.get(5).is_some());
        // Replayed ids are rejected.
        assert!(!store.record(stored(6, Criticality::Low)));
        assert!(!store.record(stored(3, Criticality::Low)));
        assert_eq!(store.newest_id(), 6);

        let all = ReportsQuery::default();
        let (total, items) = store.query(&all);
        assert_eq!(total, 4);
        let ids: Vec<u64> = items.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![3, 4, 5, 6], "ascending id order");

        // severity filter is exact-match.
        let mut q = ReportsQuery::default();
        q.severity = Some(Criticality::High);
        let (total, items) = store.query(&q);
        assert_eq!(total, 2);
        assert!(items.iter().all(|r| r.severity == Some(Criticality::High)));

        // since + limit paginate.
        let mut q = ReportsQuery::default();
        q.since = Some(3);
        q.limit = 2;
        let (total, items) = store.query(&q);
        assert_eq!(total, 3, "total counts beyond the page");
        let ids: Vec<u64> = items.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![4, 5]);

        // template / source filters.
        let mut q = ReportsQuery::default();
        q.template = Some(7);
        assert_eq!(store.query(&q).0, 4);
        q.template = Some(999);
        assert_eq!(store.query(&q).0, 0);
        let mut q = ReportsQuery::default();
        q.source = Some(2);
        assert_eq!(store.query(&q).0, 4);
        q.source = Some(42);
        assert_eq!(store.query(&q).0, 0);
    }

    #[test]
    fn backfill_restores_reports_from_the_durable_record() {
        let dir = std::env::temp_dir().join(format!("monilog-ops-backfill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("anomalies.jsonl");
        let mut text = String::new();
        for id in 1..=3u64 {
            text.push_str(&report(id, &[1], &[5], &[]).to_json());
            text.push('\n');
        }
        text.push_str("garbage line\n");
        std::fs::write(&path, text).unwrap();
        let store = ReportStore::shared(16);
        assert_eq!(store.backfill_from_file(&path).unwrap(), 3);
        assert_eq!(store.len(), 3);
        assert_eq!(store.get(2).unwrap().severity, None);
        // Missing file is an empty store.
        let empty = ReportStore::shared(16);
        assert_eq!(
            empty.backfill_from_file(&dir.join("nope.jsonl")).unwrap(),
            0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_strings_parse_and_render_canonically() {
        assert_eq!(ReportsQuery::parse("").unwrap(), ReportsQuery::default());
        let q = ReportsQuery::parse("since=5&severity=high&template=3&source=2&limit=10").unwrap();
        assert_eq!(q.since, Some(5));
        assert_eq!(q.severity, Some(Criticality::High));
        assert_eq!(q.template, Some(3));
        assert_eq!(q.source, Some(2));
        assert_eq!(q.limit, 10);
        assert_eq!(
            q.to_query_string(),
            "since=5&severity=high&template=3&source=2&limit=10"
        );
        for bad in [
            "nope=1",
            "since=x",
            "severity=urgent",
            "limit=0",
            "limit=100000",
            "since",
            "since=1&since=2",
        ] {
            assert!(ReportsQuery::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn reports_json_embeds_raw_report_lines() {
        let store = ReportStore::shared(8);
        store.record(stored(1, Criticality::High));
        let (total, items) = store.query(&ReportsQuery::default());
        let json = reports_json(total, &items);
        assert!(json.starts_with("{\"total\":1,\"count\":1,\"reports\":["));
        assert!(json.contains("\"severity\":\"high\""), "{json}");
        assert!(json.contains("\"report\":{\"id\":1,"), "{json}");
        let detail = report_detail_json(&items[0], None);
        assert!(detail.contains("\"spans\":[]"), "{detail}");
    }

    #[test]
    fn status_rollup_scores_ok_degraded_critical() {
        let registry = crate::observe::MetricsRegistry::shared();
        let snap = registry.snapshot();
        let healthy = StatusInputs {
            shards_total: 2,
            shards_alive: 2,
            breakers: vec![("webhook".to_string(), "closed".to_string())],
            ..StatusInputs::default()
        };
        let (level, json) = render_status(&snap, &healthy, 250, 7);
        assert_eq!(level, StatusLevel::Ok);
        assert!(json.contains("\"status\":\"ok\""), "{json}");
        assert!(json.contains("\"reasons\":[]"), "{json}");
        assert!(json.contains("\"config_version\":7"), "{json}");
        assert!(json.contains("\"webhook\":\"closed\""), "{json}");

        // An open breaker degrades.
        let mut degraded = healthy.clone();
        degraded.breakers[0].1 = "open".to_string();
        let (level, json) = render_status(&snap, &degraded, 250, 7);
        assert_eq!(level, StatusLevel::Degraded);
        assert!(json.contains("breaker webhook open"), "{json}");

        // A stage p99 over budget degrades, with the stage named.
        registry
            .stage(crate::observe::Stage::Parse)
            .record_ns(10_000_000); // 10ms
        let slow = registry.snapshot();
        let (level, json) = render_status(&slow, &healthy, 1, 7);
        assert_eq!(level, StatusLevel::Degraded);
        assert!(json.contains("stage parse_exec p99"), "{json}");
        assert!(json.contains("\"over_budget\":true"), "{json}");

        // Critical conditions are the readiness reasons.
        for bad in [
            StatusInputs {
                crash_looping: true,
                ..healthy.clone()
            },
            StatusInputs {
                shards_total: 2,
                shards_alive: 0,
                shards_stalled: 2,
                ..healthy.clone()
            },
            StatusInputs {
                delivery_spilling: true,
                ..healthy.clone()
            },
        ] {
            assert!(!readiness_reasons(&bad).is_empty());
            let (level, json) = render_status(&snap, &bad, 250, 7);
            assert_eq!(level, StatusLevel::Critical, "{json}");
        }
        // One stalled shard of two is degraded, not critical.
        let partial = StatusInputs {
            shards_total: 2,
            shards_alive: 2,
            shards_stalled: 1,
            ..healthy.clone()
        };
        assert!(readiness_reasons(&partial).is_empty());
        let (level, _) = render_status(&snap, &partial, 250, 7);
        assert_eq!(level, StatusLevel::Degraded);
    }

    #[test]
    fn reload_applies_versions_and_audits() {
        let dir = std::env::temp_dir().join(format!("monilog-ops-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let audit = dir.join("config-audit.log");
        let counters = PipelineMetrics::shared();
        let reload = ReloadableConfig::shared(
            ConfigSnapshot::default(),
            Some(audit.clone()),
            Arc::clone(&counters),
        );
        assert_eq!(reload.version(), 0);
        let pairs = parse_config_pairs("on-overload=shed&trace-sample-rate=64").unwrap();
        let snap = reload.apply_pairs(&pairs, "post").unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.on_overload, OverloadPolicy::ShedToCatchAll);
        assert_eq!(snap.trace_sample_rate, 64);
        assert_eq!(reload.current().on_overload, OverloadPolicy::ShedToCatchAll);
        assert_eq!(PipelineMetrics::get(&counters.config_reloads_applied), 1);

        // All-or-nothing: one bad key rejects the whole update.
        let pairs = parse_config_pairs("page-at=moderate&metrics-addr=1.2.3.4:9").unwrap();
        assert!(reload.apply_pairs(&pairs, "post").is_err());
        assert_eq!(reload.version(), 1);
        assert_eq!(reload.current().page_at, Criticality::High);
        assert_eq!(PipelineMetrics::get(&counters.config_reload_rejected), 1);

        let audit_text = std::fs::read_to_string(&audit).unwrap();
        assert!(audit_text.contains("\"version\":1"), "{audit_text}");
        assert!(
            audit_text.contains("\"on-overload\":\"shed\""),
            "{audit_text}"
        );
        assert!(!audit_text.contains("metrics-addr"), "rejects not audited");

        let json = reload.to_json();
        assert!(json.contains("\"version\":1"), "{json}");
        assert!(json.contains("\"on-overload\":\"shed\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sighup_file_reload_is_all_or_nothing() {
        let dir = std::env::temp_dir().join(format!("monilog-ops-sighup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let counters = PipelineMetrics::shared();
        let reload =
            ReloadableConfig::shared(ConfigSnapshot::default(), None, Arc::clone(&counters));

        // Invalid file: old snapshot kept, rejected counter bumped.
        let bad = dir.join("bad.conf");
        std::fs::write(&bad, "on-overload = shed\nstate-dir = /tmp/nope\n").unwrap();
        let before = reload.current();
        assert!(reload.apply_file(&bad).is_err());
        assert_eq!(reload.current(), before, "snapshot unchanged");
        assert_eq!(PipelineMetrics::get(&counters.config_reload_rejected), 1);
        // Unreadable file rejects too.
        assert!(reload.apply_file(&dir.join("missing.conf")).is_err());
        assert_eq!(PipelineMetrics::get(&counters.config_reload_rejected), 2);
        assert_eq!(PipelineMetrics::get(&counters.config_reloads_applied), 0);

        // Valid file (comments, blank lines, spaced `key = value`).
        let good = dir.join("good.conf");
        std::fs::write(
            &good,
            "# live overrides\n\non-overload = dead-letter\nbatch-lines = 256\n",
        )
        .unwrap();
        let snap = reload.apply_file(&good).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.on_overload, OverloadPolicy::DeadLetter);
        assert_eq!(snap.batch_lines, 256);
        assert_eq!(PipelineMetrics::get(&counters.config_reloads_applied), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reloadable_key_list_matches_the_apply_table() {
        let counters = PipelineMetrics::shared();
        let reload = ReloadableConfig::shared(ConfigSnapshot::default(), None, counters);
        for key in RELOADABLE_KEYS {
            let value = match key {
                "on-overload" => "block",
                "page-at" => "high",
                "route-critical" => "none",
                _ => "1",
            };
            let pairs = vec![(key.to_string(), value.to_string())];
            assert!(
                reload.apply_pairs(&pairs, "test").is_ok(),
                "{key} should be reloadable"
            );
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn criticality() -> impl Strategy<Value = Criticality> {
            prop_oneof![
                Just(Criticality::Low),
                Just(Criticality::Moderate),
                Just(Criticality::High),
            ]
        }

        fn opt_u64(max: u64) -> impl Strategy<Value = Option<u64>> {
            prop_oneof![Just(None), (0..max).prop_map(Some)]
        }

        proptest! {
            /// Any well-formed query round-trips through its canonical
            /// query string.
            #[test]
            fn query_string_roundtrips(
                since in opt_u64(u64::MAX),
                severity in prop_oneof![Just(None), criticality().prop_map(Some)],
                template in opt_u64(1_000_000),
                source in opt_u64(100_000),
                limit in 1usize..=MAX_REPORT_LIMIT,
            ) {
                let q = ReportsQuery { since, severity, template, source, limit };
                let qs = q.to_query_string();
                let back = ReportsQuery::parse(&qs).unwrap();
                prop_assert_eq!(back, q);
            }
        }
    }
}
