//! Deterministic hash partitioning.
//!
//! Distributable components need a stable answer to "which worker owns this
//! item": same key → same partition, across processes and runs. We use the
//! FNV-1a/splitmix composition rather than `DefaultHasher` because the
//! standard hasher's output is not guaranteed stable across Rust versions,
//! and partition assignments may be persisted.
//!
//! [`HashPartitioner`] is the *stateless* primitive: pure modulo placement,
//! right for keys that are already high-cardinality and well spread
//! (session ids, block ids). Log-*message* routing is a different problem —
//! template keys are few and heavily skewed, so the parse path uses the
//! stateful, load-aware [`BalancedRouter`] (re-exported here) with
//! rendezvous placement and hot-key splitting instead of naive modulo.

pub use monilog_parse::{BalancedRouter, BalancedRouterConfig};
use serde::{Deserialize, Serialize};

/// Routes hashable byte keys to one of `n` partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashPartitioner {
    n: usize,
}

impl HashPartitioner {
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one partition");
        HashPartitioner { n }
    }

    pub fn partitions(&self) -> usize {
        self.n
    }

    /// Partition of a byte key.
    pub fn partition(&self, key: &[u8]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        // splitmix finalizer for avalanche on short keys.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % self.n as u64) as usize
    }

    /// Partition of a string key.
    pub fn partition_str(&self, key: &str) -> usize {
        self.partition(key.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_in_range() {
        let p = HashPartitioner::new(8);
        for key in ["a", "source-12", "blk_99", ""] {
            let first = p.partition_str(key);
            assert!(first < 8);
            assert_eq!(first, p.partition_str(key), "unstable for {key:?}");
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let p = HashPartitioner::new(1);
        assert_eq!(p.partition_str("anything"), 0);
    }

    #[test]
    fn spreads_keys_reasonably() {
        let p = HashPartitioner::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4_000 {
            counts[p.partition_str(&format!("session-{i}"))] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(c),
                "partition {i} got {c} of 4000 keys"
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least one partition")]
    fn zero_partitions_rejected() {
        HashPartitioner::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Determinism and range over arbitrary keys and sizes.
        #[test]
        fn partition_in_range(key in proptest::collection::vec(any::<u8>(), 0..64),
                              n in 1usize..32) {
            let p = HashPartitioner::new(n);
            let part = p.partition(&key);
            prop_assert!(part < n);
            prop_assert_eq!(part, p.partition(&key));
        }
    }
}
