//! Parallel pipeline stages.
//!
//! Two building blocks:
//! - [`parallel_map`] — fan work out over N worker threads via crossbeam
//!   channels, preserving input order in the output. The generic "stage"
//!   primitive of the MoniLog pipeline.
//! - [`ParallelShardedDrain`] — the deployment shape of the paper's
//!   planned distributed parser: one Drain tree per worker thread, routed
//!   by the load-balanced sticky router. Experiment D1 compares its
//!   throughput scaling and parsing agreement against the sequential
//!   [`monilog_parse::ShardedDrain`].

use crate::observe::{MetricsRegistry, ShardGauges, Stage};
use crossbeam::channel;
use monilog_parse::{BalancedRouter, Drain, DrainConfig, OnlineParser, ParseOutcome};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Apply `f` to every item on `workers` threads, returning results in
/// input order. Item routing is round-robin; use this for stateless
/// stages.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let n = items.len();
    let (in_tx, in_rx) = channel::unbounded::<(usize, T)>();
    let (out_tx, out_rx) = channel::unbounded::<(usize, R)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let in_rx = in_rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((idx, item)) = in_rx.recv() {
                    let _ = out_tx.send((idx, f(&item)));
                }
            });
        }
        drop(in_rx);
        drop(out_tx);
        for pair in items.into_iter().enumerate() {
            in_tx.send(pair).expect("workers alive");
        }
        drop(in_tx);

        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (idx, r) in out_rx {
            out[idx] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    })
}

/// Multi-threaded sharded Drain: each worker owns one shard tree; messages
/// are routed by a persistent [`BalancedRouter`] — deterministic in the
/// input sequence, so the parse results are identical to the sequential
/// sharded parser fed the same lines in the same order (same tree sees
/// the same messages in the same relative order).
#[derive(Debug)]
pub struct ParallelShardedDrain {
    pub n_shards: usize,
    pub drain: DrainConfig,
    /// Routing state persists across batches so sticky keys and split
    /// decisions survive; the lock is batch-granular, not per-line.
    router: Mutex<BalancedRouter>,
    /// Optional observability: workers record per-message parse latency
    /// into the [`Stage::Parse`] histogram and leave per-shard template
    /// counts in the gauges after each batch.
    registry: Option<Arc<MetricsRegistry>>,
}

impl ParallelShardedDrain {
    pub fn new(n_shards: usize, drain: DrainConfig) -> Result<Self, crate::config::ConfigError> {
        if n_shards == 0 {
            return Err(crate::config::ConfigError::ZeroShards);
        }
        Ok(ParallelShardedDrain {
            n_shards,
            drain,
            router: Mutex::new(BalancedRouter::new(n_shards)),
            registry: None,
        })
    }

    /// Record parse latency and shard gauges into `registry` (must track
    /// at least `n_shards` shard gauge sets).
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        assert!(
            registry.n_shards() >= self.n_shards,
            "registry tracks fewer shards than the parser"
        );
        self.registry = Some(registry);
        self
    }

    /// Parse a batch in parallel. Returns per-message outcomes (input
    /// order) with template ids offset per shard (`shard * stride +
    /// local`), plus the number of templates each shard discovered.
    pub fn parse_batch(&self, messages: &[&str]) -> (Vec<ParseOutcome>, Vec<usize>) {
        const STRIDE: u32 = 1 << 20;
        let n_shards = self.n_shards;
        // Route messages to shards, remembering original positions.
        let mut per_shard: Vec<Vec<(usize, &str)>> = vec![Vec::new(); n_shards];
        {
            let mut router = self.router.lock();
            for (i, m) in messages.iter().enumerate() {
                per_shard[router.route(m)].push((i, m));
            }
        }

        let drain_config = self.drain;
        let registry = self.registry.as_ref();
        let results: Vec<(Vec<(usize, ParseOutcome)>, usize)> = thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .enumerate()
                .map(|(shard_idx, batch)| {
                    scope.spawn(move || {
                        let mut parser = Drain::new(drain_config);
                        let outcomes: Vec<(usize, ParseOutcome)> = batch
                            .into_iter()
                            .map(|(orig, m)| {
                                let start = Instant::now();
                                let mut out = parser.parse(m);
                                if let Some(reg) = registry {
                                    reg.record(Stage::Parse, start);
                                }
                                out.template = monilog_model::TemplateId(
                                    shard_idx as u32 * STRIDE + out.template.0,
                                );
                                (orig, out)
                            })
                            .collect();
                        if let Some(reg) = registry {
                            ShardGauges::set(
                                &reg.shard(shard_idx).templates,
                                parser.store().len() as u64,
                            );
                        }
                        (outcomes, parser.store().len())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

        let mut out: Vec<Option<ParseOutcome>> = (0..messages.len()).map(|_| None).collect();
        let mut shard_templates = Vec::with_capacity(n_shards);
        for (outcomes, n_templates) in results {
            shard_templates.push(n_templates);
            for (orig, o) in outcomes {
                out[orig] = Some(o);
            }
        }
        (
            out.into_iter()
                .map(|o| o.expect("every message parsed"))
                .collect(),
            shard_templates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_loggen::corpus;
    use monilog_parse::ShardedDrainConfig;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = parallel_map(items.clone(), 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_worker() {
        let out = parallel_map(vec!["a", "bb", "ccc"], 1, |s| s.len());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn parallel_map_empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 3, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_sharded_drain_matches_sequential_grouping() {
        let corpus = corpus::cloud_mixed(15, 3);
        let messages: Vec<&str> = corpus.messages().collect();

        let parallel = ParallelShardedDrain::new(4, DrainConfig::default()).expect("valid config");
        let (par_out, shard_templates) = parallel.parse_batch(&messages);

        let mut sequential = monilog_parse::ShardedDrain::new(ShardedDrainConfig {
            n_shards: 4,
            drain: DrainConfig::default(),
        });
        let seq_out: Vec<ParseOutcome> = messages.iter().map(|m| sequential.parse(m)).collect();

        // Same grouping: message pairs agree on same-template membership.
        // (Global ids differ by construction, so compare the partitions.)
        let mut par_groups = std::collections::HashMap::new();
        let mut seq_groups = std::collections::HashMap::new();
        for (i, (p, s)) in par_out.iter().zip(&seq_out).enumerate() {
            par_groups
                .entry(p.template)
                .or_insert_with(Vec::new)
                .push(i);
            seq_groups
                .entry(s.template)
                .or_insert_with(Vec::new)
                .push(i);
        }
        let mut par_partition: Vec<Vec<usize>> = par_groups.into_values().collect();
        let mut seq_partition: Vec<Vec<usize>> = seq_groups.into_values().collect();
        par_partition.sort();
        seq_partition.sort();
        assert_eq!(par_partition, seq_partition);
        assert_eq!(
            shard_templates.iter().sum::<usize>(),
            sequential.store().len()
        );
        // Variables identical line by line.
        for (p, s) in par_out.iter().zip(&seq_out) {
            assert_eq!(p.variables, s.variables);
        }
    }

    #[test]
    fn batch_parser_records_into_registry() {
        let corpus = corpus::hdfs_like(25, 9);
        let messages: Vec<&str> = corpus.messages().collect();
        let registry = crate::observe::MetricsRegistry::shared_with_shards(2);
        let parallel = ParallelShardedDrain::new(2, DrainConfig::default())
            .expect("valid config")
            .with_registry(Arc::clone(&registry));
        let (out, shard_templates) = parallel.parse_batch(&messages);
        assert_eq!(out.len(), messages.len());
        let snap = registry.snapshot();
        assert_eq!(
            snap.stage("parse_exec").expect("parse stage").count,
            messages.len() as u64
        );
        for (i, n) in shard_templates.iter().enumerate() {
            assert_eq!(snap.shards[i].templates, *n as u64);
        }
    }

    #[test]
    fn shard_count_one_matches_plain_drain() {
        let corpus = corpus::hdfs_like(40, 5);
        let messages: Vec<&str> = corpus.messages().collect();
        let parallel = ParallelShardedDrain::new(1, DrainConfig::default()).expect("valid config");
        let (par_out, _) = parallel.parse_batch(&messages);
        let mut plain = Drain::new(DrainConfig::default());
        for (m, p) in messages.iter().zip(&par_out) {
            let o = plain.parse(m);
            assert_eq!(o.variables, p.variables);
        }
    }
}
