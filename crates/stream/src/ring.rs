//! Single-producer / single-consumer rings for router→shard transport.
//!
//! The sharded service's router is the *only* producer for each shard's
//! input queue, and the shard worker is its *only* consumer — an MPMC
//! channel pays for generality (CAS loops, shared hot cachelines) that
//! topology never uses. [`spsc`] builds the minimal correct alternative: a
//! fixed-capacity ring with one atomic cursor per side, plus a **batched
//! doorbell** — the producer publishes entries by bumping its cursor and
//! only wakes ("rings") a parked consumer once per push, so a flush of a
//! 64-line batch costs one wakeup, not 64.
//!
//! Blocking semantics mirror the bounded channels they replace, because
//! the service's backpressure contract depends on them: `push` blocks while
//! the ring is full, `pop` blocks while it is empty, and each side wakes
//! the other through its doorbell. Dropping either endpoint closes the
//! ring: `push` then fails (handing the value back), `pop` drains what
//! remains and returns `None`.
//!
//! Parking uses `park_timeout` as a backstop so a doorbell racing a
//! park can only delay a wakeup, never lose it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::Duration;

/// Pad the cursors to distinct cachelines so producer and consumer don't
/// false-share.
#[repr(align(64))]
struct Padded<T>(T);

/// One side's parking doorbell: the parked thread registers itself, the
/// peer rings it after publishing.
struct Doorbell {
    parked: AtomicBool,
    thread: parking_lot::Mutex<Option<Thread>>,
}

impl Doorbell {
    fn new() -> Doorbell {
        Doorbell {
            parked: AtomicBool::new(false),
            thread: parking_lot::Mutex::new(None),
        }
    }

    /// Ring: wake the registered thread if it declared itself parked.
    fn ring(&self) {
        if self.parked.swap(false, Ordering::AcqRel) {
            if let Some(t) = self.thread.lock().as_ref() {
                t.unpark();
            }
        }
    }

    /// Park the current thread until rung (or the timeout backstop).
    fn park(&self) {
        *self.thread.lock() = Some(std::thread::current());
        self.parked.store(true, Ordering::Release);
        std::thread::park_timeout(Duration::from_micros(200));
        self.parked.store(false, Ordering::Release);
    }
}

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Caller-requested capacity (≤ slot count): bounds occupancy exactly
    /// so a ring of capacity 3 behaves like a bounded(3) channel.
    cap: usize,
    /// Next slot the producer writes (only the producer stores it).
    tail: Padded<AtomicUsize>,
    /// Next slot the consumer reads (only the consumer stores it).
    head: Padded<AtomicUsize>,
    closed: AtomicBool,
    /// Rung by the producer after publishing.
    consumer_bell: Doorbell,
    /// Rung by the consumer after freeing a slot.
    producer_bell: Doorbell,
}

// SAFETY: slots are only touched by the producer between `tail` publication
// points and by the consumer between `head` publication points; the
// Release/Acquire pairs on those cursors order the accesses.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            // SAFETY: entries in [head, tail) were written and never read.
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// Why a push failed; the value comes back intact either way.
pub enum PushError<T> {
    /// Ring at capacity (non-blocking push only).
    Full(T),
    /// Consumer endpoint dropped — nobody will ever pop again.
    Closed(T),
}

/// Producing endpoint. `!Clone`: single producer by construction.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// Consuming endpoint. `!Clone`: single consumer by construction.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Build a ring holding up to `capacity` entries (rounded up to a power of
/// two internally; capacity semantics are exact).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let slots = capacity.next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..slots)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: slots - 1,
        cap: capacity,
        tail: Padded(AtomicUsize::new(0)),
        head: Padded(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        consumer_bell: Doorbell::new(),
        producer_bell: Doorbell::new(),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Entries currently queued.
    pub fn len(&self) -> usize {
        let i = &self.inner;
        i.tail.0.load(Ordering::Acquire) - i.head.0.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push with doorbell.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let i = &self.inner;
        if i.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed(value));
        }
        let tail = i.tail.0.load(Ordering::Relaxed);
        let head = i.head.0.load(Ordering::Acquire);
        if tail - head >= i.cap {
            return Err(PushError::Full(value));
        }
        // SAFETY: slot `tail` is unoccupied (checked above) and only the
        // single producer writes slots.
        unsafe { (*i.buf[tail & i.mask].get()).write(value) };
        i.tail.0.store(tail + 1, Ordering::Release);
        i.consumer_bell.ring();
        Ok(())
    }

    /// Blocking push: spins briefly, then parks until the consumer frees a
    /// slot. Fails only when the consumer is gone.
    pub fn push(&self, mut value: T) -> Result<(), T> {
        let mut spins = 0u32;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => value = v,
            }
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                self.inner.producer_bell.park();
            }
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.consumer_bell.ring();
    }
}

impl<T> Consumer<T> {
    /// Entries currently queued.
    pub fn len(&self) -> usize {
        let i = &self.inner;
        i.tail.0.load(Ordering::Acquire) - i.head.0.load(Ordering::Acquire)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking pop with doorbell.
    pub fn try_pop(&self) -> Option<T> {
        let i = &self.inner;
        let head = i.head.0.load(Ordering::Relaxed);
        let tail = i.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head` was published by the producer's Release store
        // of `tail` (Acquire-loaded above) and not yet consumed.
        let value = unsafe { (*i.buf[head & i.mask].get()).assume_init_read() };
        i.head.0.store(head + 1, Ordering::Release);
        i.producer_bell.ring();
        Some(value)
    }

    /// Blocking pop: spins briefly, then parks until the producer rings.
    /// `None` once the ring is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            if self.inner.closed.load(Ordering::Acquire) {
                // Closed: one final race-free check for a straggler entry.
                return self.try_pop();
            }
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                self.inner.consumer_bell.park();
            }
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.producer_bell.ring();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (tx, rx) = spsc::<u32>(4);
        for v in 0..4 {
            assert!(tx.try_push(v).is_ok());
        }
        assert!(matches!(tx.try_push(9), Err(PushError::Full(9))));
        assert_eq!(rx.len(), 4);
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn blocking_round_trip_across_threads() {
        let (tx, rx) = spsc::<u64>(8);
        let n = 10_000u64;
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(v) = rx.pop() {
                sum += v;
            }
            sum
        });
        for v in 0..n {
            tx.push(v).expect("consumer alive");
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), n * (n - 1) / 2);
    }

    #[test]
    fn push_fails_after_consumer_drops() {
        let (tx, rx) = spsc::<u8>(2);
        drop(rx);
        assert!(tx.push(1).is_err());
        assert!(matches!(tx.try_push(2), Err(PushError::Closed(2))));
    }

    #[test]
    fn pop_drains_after_producer_drops() {
        let (tx, rx) = spsc::<u8>(4);
        tx.try_push(1).ok();
        tx.try_push(2).ok();
        drop(tx);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn drops_unconsumed_entries() {
        // Droppable payloads left in the ring must be freed by Inner::drop
        // (run under the workspace's leak-sensitive CI sanitizers).
        let (tx, rx) = spsc::<String>(4);
        tx.try_push("a".to_string()).ok();
        tx.try_push("b".to_string()).ok();
        drop(tx);
        drop(rx);
    }

    #[test]
    fn non_power_of_two_capacity_is_exact() {
        // Slot count rounds up to 4, but occupancy is bounded at the
        // requested 3 — ring capacity must match bounded-channel capacity
        // or batching would weaken the backpressure contract.
        let (tx, rx) = spsc::<u8>(3);
        assert!(tx.try_push(1).is_ok());
        assert!(tx.try_push(2).is_ok());
        assert!(tx.try_push(3).is_ok());
        assert!(matches!(tx.try_push(4), Err(PushError::Full(4))));
        assert_eq!(rx.try_pop(), Some(1));
        assert!(tx.try_push(4).is_ok());
    }
}
