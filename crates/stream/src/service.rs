//! Long-lived sharded parsing service.
//!
//! [`crate::pipeline::ParallelShardedDrain`] is batch-shaped: it spawns
//! workers per call. A deployment ("MoniLog input is a log stream fueled
//! by various log sources", Section II) needs *standing* workers consuming
//! from queues with **backpressure** — when parsing falls behind, the
//! ingestion side must block rather than buffer unboundedly.
//!
//! [`ShardedParseService`] spawns one router thread plus one Drain worker
//! per shard, all connected by bounded crossbeam channels:
//!
//! ```text
//!  submit() ─▶ [input q] ─▶ router ─▶ [shard q]×N ─▶ workers ─▶ [output q] ─▶ recv()
//! ```
//!
//! Every queue is bounded by `capacity`, so a stalled consumer propagates
//! back to `submit()` blocking — the backpressure contract. Output order
//! is arrival order *per shard* but unordered across shards; callers that
//! need global order reorder by the submitted sequence number (e.g. via
//! [`crate::merge::BoundedReorderBuffer`]).

use crate::observe::{MetricsRegistry, ShardGauges, Stage};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use monilog_parse::{Drain, DrainConfig, OnlineParser, ParseOutcome, ShardedDrain};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// An item flowing through the service: caller-chosen sequence tag + line.
type Item = (u64, String);

/// A parsed item: the tag plus the shard-local outcome, with the shard
/// index so callers can interpret template ids (`shard * STRIDE + local`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedItem {
    pub seq: u64,
    pub shard: usize,
    pub outcome: ParseOutcome,
}

/// Stride separating each shard's template-id space in [`ParsedItem`].
pub const SHARD_ID_STRIDE: u32 = 1 << 20;

/// Handle to a running sharded parse service.
#[derive(Debug)]
pub struct ShardedParseService {
    input: Option<Sender<Item>>,
    output: Receiver<ParsedItem>,
    router: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<usize>>,
    registry: Arc<MetricsRegistry>,
}

impl ShardedParseService {
    /// Spawn the service: `n_shards` Drain workers, all queues bounded by
    /// `capacity` items. Creates a fresh [`MetricsRegistry`] with one
    /// gauge set per shard; use [`Self::spawn_with_registry`] to share one.
    pub fn spawn(
        n_shards: usize,
        drain: DrainConfig,
        capacity: usize,
    ) -> Result<Self, crate::config::ConfigError> {
        Self::spawn_with_registry(
            n_shards,
            drain,
            capacity,
            MetricsRegistry::shared_with_shards(n_shards),
        )
    }

    /// Spawn the service recording into `registry`: workers record parse
    /// latency into the [`Stage::Parse`] histogram and keep their shard's
    /// queue-depth and template gauges current (the registry must track at
    /// least `n_shards` shard gauge sets).
    pub fn spawn_with_registry(
        n_shards: usize,
        drain: DrainConfig,
        capacity: usize,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, crate::config::ConfigError> {
        if n_shards == 0 {
            return Err(crate::config::ConfigError::ZeroShards);
        }
        if capacity == 0 {
            return Err(crate::config::ConfigError::ZeroCapacity);
        }
        if registry.n_shards() < n_shards {
            return Err(crate::config::ConfigError::ZeroShards);
        }
        let (input_tx, input_rx) = bounded::<Item>(capacity);
        let (output_tx, output_rx) = bounded::<ParsedItem>(capacity);

        let mut shard_txs = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let (tx, rx) = bounded::<Item>(capacity);
            shard_txs.push(tx);
            let out = output_tx.clone();
            let reg = Arc::clone(&registry);
            workers.push(std::thread::spawn(move || {
                let mut parser = Drain::new(drain);
                while let Ok((seq, line)) = rx.recv() {
                    let start = Instant::now();
                    let mut outcome = parser.parse(&line);
                    reg.record(Stage::Parse, start);
                    outcome.template = monilog_model::TemplateId(
                        shard as u32 * SHARD_ID_STRIDE + outcome.template.0,
                    );
                    let gauges = reg.shard(shard);
                    ShardGauges::set(&gauges.queue_depth, rx.len() as u64);
                    ShardGauges::set(&gauges.templates, parser.store().len() as u64);
                    if out
                        .send(ParsedItem {
                            seq,
                            shard,
                            outcome,
                        })
                        .is_err()
                    {
                        break; // consumer went away: stop quietly
                    }
                }
                ShardGauges::set(&reg.shard(shard).queue_depth, 0);
                parser.store().len()
            }));
        }
        drop(output_tx);

        let router = std::thread::spawn(move || {
            while let Ok((seq, line)) = input_rx.recv() {
                let shard = ShardedDrain::route_static(&line, n_shards);
                if shard_txs[shard].send((seq, line)).is_err() {
                    break;
                }
            }
            // input closed: dropping shard_txs lets workers drain and exit.
        });

        Ok(ShardedParseService {
            input: Some(input_tx),
            output: output_rx,
            router: Some(router),
            workers,
            registry,
        })
    }

    /// The observability registry the workers record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Submit a line; **blocks** when the pipeline is saturated (this is
    /// the backpressure contract). Errors only after [`Self::close`].
    pub fn submit(&self, seq: u64, line: String) -> Result<(), String> {
        match &self.input {
            Some(tx) => tx.send((seq, line)).map_err(|e| e.to_string()),
            None => Err("service input already closed".to_string()),
        }
    }

    /// Non-blocking submit: `Err(line)` when the pipeline is saturated —
    /// what a collector uses to shed or spill instead of stalling.
    pub fn try_submit(&self, seq: u64, line: String) -> Result<(), String> {
        match &self.input {
            Some(tx) => match tx.try_send((seq, line)) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err("pipeline saturated".to_string()),
                Err(TrySendError::Disconnected(_)) => Err("service stopped".to_string()),
            },
            None => Err("service input already closed".to_string()),
        }
    }

    /// Receive the next parsed item; `None` once the service is closed and
    /// drained.
    pub fn recv(&self) -> Option<ParsedItem> {
        self.output.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<ParsedItem> {
        self.output.try_recv().ok()
    }

    /// Close the input: workers drain their queues and exit. Call before
    /// the final `recv()` drain.
    pub fn close(&mut self) {
        self.input = None;
    }

    /// Close, drain remaining outputs, join all threads; returns the
    /// drained items and each shard's discovered-template count.
    pub fn shutdown(mut self) -> (Vec<ParsedItem>, Vec<usize>) {
        self.close();
        let mut rest = Vec::new();
        while let Some(item) = self.recv() {
            rest.push(item);
        }
        if let Some(router) = self.router.take() {
            router.join().expect("router thread panicked");
        }
        let counts = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("worker thread panicked"))
            .collect();
        (rest, counts)
    }
}

impl Drop for ShardedParseService {
    fn drop(&mut self) {
        self.input = None;
        // Drain until the output channel disconnects, not merely until it
        // is momentarily empty: items still queued upstream (input queue,
        // router in-flight, shard queues) keep refilling the bounded
        // output queue, and a worker blocked on a full output queue would
        // deadlock the joins below. Disconnect happens exactly when the
        // router and every worker have flushed and exited.
        while self.output.recv().is_ok() {}
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_loggen::corpus;
    use std::collections::HashMap;

    #[test]
    fn round_trip_is_complete_and_tagged() {
        let corpus = corpus::hdfs_like(50, 61);
        let mut service =
            ShardedParseService::spawn(4, DrainConfig::default(), 64).expect("valid config");
        let n = corpus.logs.len();
        // Producer thread feeds while we consume (bounded queues would
        // deadlock a single-threaded feed-everything-then-read pattern —
        // by design).
        let mut received = Vec::new();
        std::thread::scope(|s| {
            let svc = &service;
            s.spawn(move || {
                for (i, log) in corpus.logs.iter().enumerate() {
                    svc.submit(i as u64, log.record.message.clone())
                        .expect("accepts");
                }
            });
            while received.len() < n {
                if let Some(item) = svc_recv(svc) {
                    received.push(item);
                }
            }
        });
        service.close();
        let (rest, counts) = service.shutdown();
        assert!(rest.is_empty());
        let mut seqs: Vec<u64> = received.iter().map(|p| p.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (0..n as u64).collect::<Vec<_>>(),
            "every line exactly once"
        );
        assert!(
            counts.iter().sum::<usize>() >= 7,
            "templates discovered across shards"
        );
    }

    fn svc_recv(svc: &ShardedParseService) -> Option<ParsedItem> {
        svc.recv()
    }

    #[test]
    fn grouping_matches_batch_parallel_sharding() {
        let corpus = corpus::cloud_mixed(10, 63);
        let messages: Vec<&str> = corpus.messages().collect();

        let mut service =
            ShardedParseService::spawn(4, DrainConfig::default(), 32).expect("valid config");
        let mut by_seq: HashMap<u64, u32> = HashMap::new();
        std::thread::scope(|s| {
            let svc = &service;
            let msgs = &messages;
            s.spawn(move || {
                for (i, m) in msgs.iter().enumerate() {
                    svc.submit(i as u64, m.to_string()).expect("accepts");
                }
            });
            while by_seq.len() < messages.len() {
                if let Some(item) = svc.recv() {
                    by_seq.insert(item.seq, item.outcome.template.0);
                }
            }
        });
        let (_, _) = {
            service.close();
            service.shutdown()
        };

        let batch = crate::pipeline::ParallelShardedDrain::new(4, DrainConfig::default())
            .expect("valid config");
        let (batch_out, _) = batch.parse_batch(&messages);

        // Same partition of lines into templates.
        let mut svc_groups: HashMap<u32, Vec<u64>> = HashMap::new();
        for (seq, t) in &by_seq {
            svc_groups.entry(*t).or_default().push(*seq);
        }
        let mut batch_groups: HashMap<u32, Vec<u64>> = HashMap::new();
        for (i, o) in batch_out.iter().enumerate() {
            batch_groups.entry(o.template.0).or_default().push(i as u64);
        }
        let normalize = |m: HashMap<u32, Vec<u64>>| {
            let mut v: Vec<Vec<u64>> = m
                .into_values()
                .map(|mut g| {
                    g.sort_unstable();
                    g
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(normalize(svc_groups), normalize(batch_groups));
    }

    #[test]
    fn try_submit_reports_saturation() {
        // Capacity 1 everywhere and no consumer: the pipeline must fill and
        // try_submit must start failing rather than buffering unboundedly.
        let service =
            ShardedParseService::spawn(1, DrainConfig::default(), 1).expect("valid config");
        let mut accepted = 0;
        let mut saturated = false;
        for i in 0..1_000 {
            match service.try_submit(i, format!("line {i} body")) {
                Ok(()) => accepted += 1,
                Err(_) => {
                    saturated = true;
                    break;
                }
            }
            // Give the router/worker a moment to move items along.
            if i % 10 == 0 {
                std::thread::yield_now();
            }
        }
        assert!(
            saturated,
            "pipeline never saturated after {accepted} unconsumed lines"
        );
        assert!(accepted < 1_000);
        // accepted items ≤ total queue capacity (input + shard + output + in-flight).
        assert!(
            accepted <= 8,
            "buffered {accepted} items with capacity-1 queues"
        );
    }

    #[test]
    fn close_then_drain_terminates() {
        let mut service =
            ShardedParseService::spawn(2, DrainConfig::default(), 16).expect("valid config");
        for i in 0..8 {
            service.submit(i, format!("alpha beta {i}")).expect("space");
        }
        service.close();
        let (rest, counts) = service.shutdown();
        assert_eq!(rest.len(), 8);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let service =
            ShardedParseService::spawn(2, DrainConfig::default(), 4).expect("valid config");
        for i in 0..4 {
            let _ = service.try_submit(i, "x y z".to_string());
        }
        drop(service); // must join cleanly via Drop
    }

    #[test]
    fn spawn_rejects_degenerate_configs() {
        use crate::config::ConfigError;
        let err = ShardedParseService::spawn(0, DrainConfig::default(), 8).err();
        assert_eq!(err, Some(ConfigError::ZeroShards));
        let err = ShardedParseService::spawn(2, DrainConfig::default(), 0).err();
        assert_eq!(err, Some(ConfigError::ZeroCapacity));
        let err = crate::pipeline::ParallelShardedDrain::new(0, DrainConfig::default()).err();
        assert_eq!(err, Some(ConfigError::ZeroShards));
    }

    #[test]
    fn workers_record_parse_latency_and_gauges() {
        let corpus = corpus::hdfs_like(30, 17);
        let mut service =
            ShardedParseService::spawn(2, DrainConfig::default(), 64).expect("valid config");
        let n = corpus.logs.len();
        let mut got = 0;
        std::thread::scope(|s| {
            let svc = &service;
            s.spawn(move || {
                for (i, log) in corpus.logs.iter().enumerate() {
                    svc.submit(i as u64, log.record.message.clone())
                        .expect("accepts");
                }
            });
            while got < n {
                if svc.recv().is_some() {
                    got += 1;
                }
            }
        });
        service.close();
        let snap = service.registry().snapshot();
        assert_eq!(
            snap.stage("parse").expect("parse stage").count,
            n as u64,
            "one parse latency sample per line"
        );
        assert!(snap.stage("parse").unwrap().max_ns > 0);
        assert_eq!(snap.shards.len(), 2);
        assert!(
            snap.shards.iter().map(|s| s.templates).sum::<u64>() > 0,
            "template gauges populated: {snap:?}"
        );
        let (_, counts) = service.shutdown();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn submit_after_close_errors() {
        let mut service =
            ShardedParseService::spawn(1, DrainConfig::default(), 4).expect("valid config");
        service.close();
        assert!(service.submit(0, "line".into()).is_err());
        assert!(service.try_submit(0, "line".into()).is_err());
    }
}
