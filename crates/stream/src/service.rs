//! Long-lived sharded parsing service.
//!
//! [`crate::pipeline::ParallelShardedDrain`] is batch-shaped: it spawns
//! workers per call. A deployment ("MoniLog input is a log stream fueled
//! by various log sources", Section II) needs *standing* workers consuming
//! from queues with **backpressure** — when parsing falls behind, the
//! ingestion side must block rather than buffer unboundedly.
//!
//! [`ShardedParseService`] spawns one router thread plus one Drain worker
//! per shard. The caller-facing input queue and the fan-in output queue
//! are bounded crossbeam channels (many producers / many consumers); the
//! router→worker hop — exactly one producer and one consumer per shard —
//! is a [`crate::ring`] SPSC ring with a batched doorbell:
//!
//! ```text
//!  submit_batch() ─▶ [input q] ─▶ router ─▶ (spsc ring)×N ─▶ workers ─▶ [output q] ─▶ recv()
//! ```
//!
//! Workers are pinned thread-per-core (best effort, shard *i* → core *i*
//! mod cores; see [`crate::affinity`]) so each shard's Drain tree and
//! match cache stay resident in one core's cache.
//!
//! ## Batched transport
//!
//! Every queue slot carries a *batch* (`Vec` of items), not a single
//! line, and items carry [`ByteLine`]s — views into arrival buffers — so
//! a batch hop moves 24-byte handles, never the text itself.
//! [`ShardedParseService::submit_batch`] moves a whole chunk through
//! the input queue in one send; the router routes each line with the
//! load-balanced sticky [`BalancedRouter`] and accumulates per-shard
//! buffers, flushing a buffer to its shard when it reaches the batch
//! target or when the input has been idle past the flush deadline
//! (defaults [`MAX_BATCH`]/[`BATCH_FLUSH_INTERVAL`], tunable via
//! [`BatchConfig`] / `--batch-lines` / `--batch-deadline-ms`). The
//! per-line transfer cost (synchronization, wakeups) is amortized across
//! the batch — the dominant win measured by `exp_d3` live-mode throughput.
//!
//! Latency accounting splits the old "parse" timer in two:
//! [`Stage::ParseQueueWait`] is the time a batch sat between admission and
//! worker pickup (recorded once per batch, attributed to every line);
//! [`Stage::Parse`] (`parse_exec`) is pure parser execution per line.
//!
//! Every queue is bounded by `capacity` batches, and the router never
//! buffers more than `min(MAX_BATCH, capacity)` lines per shard, so a
//! stalled consumer still propagates back to `submit()` blocking — the
//! backpressure contract. Output order is arrival order *per shard* but
//! unordered across shards; callers that need global order reorder by the
//! submitted sequence number (e.g. via [`crate::merge::BoundedReorderBuffer`]).

use crate::config::BatchConfig;
use crate::metrics::PipelineMetrics;
use crate::observe::{MetricsRegistry, ShardGauges, Stage};
use crate::ring::{self, Producer};
use crate::trace::{SpanRecord, SpanStage, Tracer};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use monilog_model::ByteLine;
use monilog_parse::{BalancedRouter, Drain, DrainConfig, OnlineParser, ParseOutcome};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An item flowing through the service: caller-chosen sequence tag + line.
/// The line is a [`ByteLine`] view into its arrival buffer, so moving an
/// item between threads never copies the text.
pub type Item = (u64, ByteLine);

/// A batch admitted into the service, stamped at submit time.
#[derive(Debug)]
struct InBatch {
    submitted: Instant,
    items: Vec<Item>,
}

/// A routed batch bound for one shard. `enqueued` is the submit stamp of
/// the first line placed into the (then-empty) router buffer, so the
/// queue-wait it yields is the *oldest* line's admission→pickup time — an
/// upper bound for the rest of the batch.
#[derive(Debug)]
struct ShardBatch {
    enqueued: Instant,
    items: Vec<Item>,
}

/// A parsed item: the tag plus the shard-local outcome, with the shard
/// index so callers can interpret template ids (`shard * STRIDE + local`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedItem {
    pub seq: u64,
    pub shard: usize,
    pub outcome: ParseOutcome,
}

/// Stride separating each shard's template-id space in [`ParsedItem`].
pub const SHARD_ID_STRIDE: u32 = 1 << 20;

/// Most lines the router accumulates for one shard before flushing
/// (clamped down to the queue capacity so batching never weakens
/// backpressure).
pub const MAX_BATCH: usize = 64;

/// How long the router lets partial shard buffers sit when the input is
/// idle before flushing them — the latency cost ceiling of batching.
pub const BATCH_FLUSH_INTERVAL: Duration = Duration::from_millis(1);

/// The error [`ShardedParseService::submit`]/[`submit_batch`] return: the
/// blocking APIs only fail once the service can no longer accept input.
/// (`submit_batch` consumed the items by then — use the non-blocking
/// [`ShardedParseService::try_submit_batch`] to get rejected items back.)
///
/// [`submit_batch`]: ShardedParseService::submit_batch
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// [`ShardedParseService::close`] was called, or the router is gone.
    Closed,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Closed => f.write_str("service input already closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A rejected non-blocking submission. The items are handed back intact —
/// the caller decides whether to spill, retry, or shed; the service never
/// silently drops them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySubmitError {
    /// Every input-queue slot is full (backpressure).
    Saturated(Vec<Item>),
    /// The service input is closed or its threads are gone.
    Closed(Vec<Item>),
}

impl TrySubmitError {
    /// Recover the rejected items.
    pub fn into_items(self) -> Vec<Item> {
        match self {
            TrySubmitError::Saturated(items) | TrySubmitError::Closed(items) => items,
        }
    }
}

impl fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySubmitError::Saturated(items) => {
                write!(f, "pipeline saturated ({} items returned)", items.len())
            }
            TrySubmitError::Closed(items) => {
                write!(f, "service closed ({} items returned)", items.len())
            }
        }
    }
}

/// Handle to a running sharded parse service.
#[derive(Debug)]
pub struct ShardedParseService {
    input: Option<Sender<InBatch>>,
    output: Receiver<Vec<ParsedItem>>,
    /// Items from a received output batch not yet handed out by the
    /// single-item [`Self::recv`] compatibility API.
    recv_buf: Mutex<VecDeque<ParsedItem>>,
    router: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<usize>>,
    registry: Arc<MetricsRegistry>,
}

impl ShardedParseService {
    /// Spawn the service: `n_shards` Drain workers, all queues bounded by
    /// `capacity` batches. Creates a fresh [`MetricsRegistry`] with one
    /// gauge set per shard; use [`Self::spawn_with_registry`] to share one.
    pub fn spawn(
        n_shards: usize,
        drain: DrainConfig,
        capacity: usize,
    ) -> Result<Self, crate::config::ConfigError> {
        Self::spawn_with_registry(
            n_shards,
            drain,
            capacity,
            MetricsRegistry::shared_with_shards(n_shards),
        )
    }

    /// Spawn the service recording into `registry`: workers record queue
    /// wait into [`Stage::ParseQueueWait`], parser execution into
    /// [`Stage::Parse`], match-cache hit/miss counters, and keep their
    /// shard's queue-depth and template gauges current (the registry must
    /// track at least `n_shards` shard gauge sets).
    pub fn spawn_with_registry(
        n_shards: usize,
        drain: DrainConfig,
        capacity: usize,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, crate::config::ConfigError> {
        Self::spawn_with_tracer(n_shards, drain, capacity, registry, None)
    }

    /// Spawn with a span tracer in addition to the registry: workers record
    /// queue-wait and parse spans (template id, cache hit/miss) for every
    /// sampled line into the tracer's flight recorder.
    pub fn spawn_with_tracer(
        n_shards: usize,
        drain: DrainConfig,
        capacity: usize,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<Self, crate::config::ConfigError> {
        Self::spawn_tuned(
            n_shards,
            drain,
            capacity,
            registry,
            tracer,
            BatchConfig::default(),
        )
    }

    /// Full-control spawn: like [`Self::spawn_with_tracer`] plus the
    /// router's batch-flush tuning and worker pinning ([`BatchConfig`],
    /// surfaced on the CLI as `--batch-lines` / `--batch-deadline-ms`).
    pub fn spawn_tuned(
        n_shards: usize,
        drain: DrainConfig,
        capacity: usize,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
        batch: BatchConfig,
    ) -> Result<Self, crate::config::ConfigError> {
        if n_shards == 0 {
            return Err(crate::config::ConfigError::ZeroShards);
        }
        if capacity == 0 || batch.max_lines == 0 {
            return Err(crate::config::ConfigError::ZeroCapacity);
        }
        if registry.n_shards() < n_shards {
            return Err(crate::config::ConfigError::ZeroShards);
        }
        let (input_tx, input_rx) = bounded::<InBatch>(capacity);
        let (output_tx, output_rx) = bounded::<Vec<ParsedItem>>(capacity);

        let tracer = tracer.unwrap_or_else(Tracer::disabled);
        let mut shard_txs = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let (tx, rx) = ring::spsc::<ShardBatch>(capacity);
            shard_txs.push(tx);
            let out = output_tx.clone();
            let reg = Arc::clone(&registry);
            let tracer = Arc::clone(&tracer);
            let pin = batch.pin_workers;
            workers.push(std::thread::spawn(move || {
                if pin {
                    // Thread-per-core: best effort, never fatal.
                    crate::affinity::pin_current_thread(shard);
                }
                let mut parser = Drain::new(drain);
                let (mut seen_hits, mut seen_misses) = (0u64, 0u64);
                while let Some(ShardBatch { enqueued, items }) = rx.pop() {
                    let wait_ns = enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    reg.stage(Stage::ParseQueueWait)
                        .record_ns_n(wait_ns, items.len() as u64);
                    // The batch's pickup moment, for queue-wait spans of any
                    // sampled lines it carries.
                    let wait_end_ns = tracer.now_ns();
                    let mut parsed = Vec::with_capacity(items.len());
                    for (seq, line) in items {
                        let trace = tracer.trace_for(seq);
                        let start = Instant::now();
                        let mut outcome = parser.parse(&line);
                        reg.record(Stage::Parse, start);
                        outcome.template = monilog_model::TemplateId(
                            shard as u32 * SHARD_ID_STRIDE + outcome.template.0,
                        );
                        if let Some(t) = trace {
                            tracer.record(SpanRecord {
                                trace: t,
                                stage: SpanStage::QueueWait,
                                shard: shard as u16,
                                start_ns: wait_end_ns.saturating_sub(wait_ns),
                                end_ns: wait_end_ns,
                                template: None,
                                cache_hit: None,
                            });
                            tracer.record_since(
                                t,
                                SpanStage::Parse,
                                shard as u16,
                                start,
                                Some(outcome.template.0),
                                Some(parser.last_parse_cache_hit()),
                            );
                        }
                        parsed.push(ParsedItem {
                            seq,
                            shard,
                            outcome,
                        });
                    }
                    let (hits, misses) = parser.cache_stats();
                    PipelineMetrics::add(&reg.counters().cache_hits, hits - seen_hits);
                    PipelineMetrics::add(&reg.counters().cache_misses, misses - seen_misses);
                    (seen_hits, seen_misses) = (hits, misses);
                    let gauges = reg.shard(shard);
                    ShardGauges::set(&gauges.queue_depth, rx.len() as u64);
                    ShardGauges::set(&gauges.templates, parser.store().len() as u64);
                    if out.send(parsed).is_err() {
                        break; // consumer went away: stop quietly
                    }
                }
                ShardGauges::set(&reg.shard(shard).queue_depth, 0);
                parser.store().len()
            }));
        }
        drop(output_tx);

        let router = std::thread::spawn(move || {
            let mut router = BalancedRouter::new(n_shards);
            let max_batch = batch.max_lines.min(capacity);
            let flush_interval = batch.deadline;
            // Per-shard accumulation buffer + the submit stamp of its
            // oldest line.
            let mut bufs: Vec<(Option<Instant>, Vec<Item>)> =
                (0..n_shards).map(|_| (None, Vec::new())).collect();
            let flush = |shard: usize,
                         bufs: &mut Vec<(Option<Instant>, Vec<Item>)>,
                         shard_txs: &[Producer<ShardBatch>]|
             -> bool {
                let (stamp, buf) = &mut bufs[shard];
                if buf.is_empty() {
                    return true;
                }
                let batch = ShardBatch {
                    enqueued: stamp.take().unwrap_or_else(Instant::now),
                    items: std::mem::take(buf),
                };
                // One ring publish + one doorbell per flushed batch.
                shard_txs[shard].push(batch).is_ok()
            };
            loop {
                match input_rx.recv_timeout(flush_interval) {
                    Ok(InBatch { submitted, items }) => {
                        for (seq, line) in items {
                            let shard = router.route(&line);
                            let (stamp, buf) = &mut bufs[shard];
                            stamp.get_or_insert(submitted);
                            buf.push((seq, line));
                            if buf.len() >= max_batch && !flush(shard, &mut bufs, &shard_txs) {
                                return;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        for shard in 0..n_shards {
                            if !flush(shard, &mut bufs, &shard_txs) {
                                return;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        for shard in 0..n_shards {
                            if !flush(shard, &mut bufs, &shard_txs) {
                                return;
                            }
                        }
                        // Dropping shard_txs lets workers drain and exit.
                        return;
                    }
                }
            }
        });

        Ok(ShardedParseService {
            input: Some(input_tx),
            output: output_rx,
            recv_buf: Mutex::new(VecDeque::new()),
            router: Some(router),
            workers,
            registry,
        })
    }

    /// The observability registry the workers record into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Account one accepted batch.
    fn note_batch(&self, len: usize) {
        PipelineMetrics::incr(&self.registry.counters().batches_submitted);
        self.registry.batch_sizes().record(len as u64);
    }

    /// Submit a line; **blocks** when the pipeline is saturated (this is
    /// the backpressure contract). Errors only after [`Self::close`].
    pub fn submit(&self, seq: u64, line: impl Into<ByteLine>) -> Result<(), SubmitError> {
        self.submit_batch(vec![(seq, line.into())])
    }

    /// Submit a chunk of lines as one batch — one channel transfer instead
    /// of `items.len()`. **Blocks** when the pipeline is saturated. An
    /// empty batch is a no-op.
    pub fn submit_batch(&self, items: Vec<Item>) -> Result<(), SubmitError> {
        if items.is_empty() {
            return Ok(());
        }
        let len = items.len();
        match &self.input {
            Some(tx) => {
                tx.send(InBatch {
                    submitted: Instant::now(),
                    items,
                })
                .map_err(|_| SubmitError::Closed)?;
                self.note_batch(len);
                Ok(())
            }
            None => Err(SubmitError::Closed),
        }
    }

    /// Non-blocking submit; the rejected line comes back intact inside the
    /// error — what a collector uses to shed or spill instead of stalling.
    pub fn try_submit(&self, seq: u64, line: impl Into<ByteLine>) -> Result<(), TrySubmitError> {
        self.try_submit_batch(vec![(seq, line.into())])
    }

    /// Non-blocking batch submit. On saturation or shutdown the whole
    /// batch is returned intact via [`TrySubmitError`] — never partially
    /// enqueued, never dropped.
    pub fn try_submit_batch(&self, items: Vec<Item>) -> Result<(), TrySubmitError> {
        if items.is_empty() {
            return Ok(());
        }
        let len = items.len();
        match &self.input {
            Some(tx) => match tx.try_send(InBatch {
                submitted: Instant::now(),
                items,
            }) {
                Ok(()) => {
                    self.note_batch(len);
                    Ok(())
                }
                Err(TrySendError::Full(batch)) => Err(TrySubmitError::Saturated(batch.items)),
                Err(TrySendError::Disconnected(batch)) => Err(TrySubmitError::Closed(batch.items)),
            },
            None => Err(TrySubmitError::Closed(items)),
        }
    }

    /// Receive the next parsed item; `None` once the service is closed and
    /// drained. Single-item view over the batched output.
    pub fn recv(&self) -> Option<ParsedItem> {
        let mut buf = self.recv_buf.lock();
        loop {
            if let Some(item) = buf.pop_front() {
                return Some(item);
            }
            match self.output.recv() {
                Ok(items) => buf.extend(items),
                Err(_) => return None,
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<ParsedItem> {
        let mut buf = self.recv_buf.lock();
        if let Some(item) = buf.pop_front() {
            return Some(item);
        }
        match self.output.try_recv() {
            Ok(items) => {
                buf.extend(items);
                buf.pop_front()
            }
            Err(_) => None,
        }
    }

    /// Receive the next parsed batch (one shard flush worth of items, or
    /// whatever the single-item API left buffered); `None` once closed and
    /// drained.
    pub fn recv_batch(&self) -> Option<Vec<ParsedItem>> {
        {
            let mut buf = self.recv_buf.lock();
            if !buf.is_empty() {
                return Some(buf.drain(..).collect());
            }
        }
        self.output.recv().ok()
    }

    /// Close the input: workers drain their queues and exit. Call before
    /// the final `recv()` drain.
    pub fn close(&mut self) {
        self.input = None;
    }

    /// Close, drain remaining outputs, join all threads; returns the
    /// drained items and each shard's discovered-template count.
    pub fn shutdown(mut self) -> (Vec<ParsedItem>, Vec<usize>) {
        self.close();
        let mut rest = Vec::new();
        while let Some(item) = self.recv() {
            rest.push(item);
        }
        if let Some(router) = self.router.take() {
            router.join().expect("router thread panicked");
        }
        let counts = self
            .workers
            .drain(..)
            .map(|w| w.join().expect("worker thread panicked"))
            .collect();
        (rest, counts)
    }
}

impl Drop for ShardedParseService {
    fn drop(&mut self) {
        self.input = None;
        // Drain until the output channel disconnects, not merely until it
        // is momentarily empty: items still queued upstream (input queue,
        // router buffers, shard queues) keep refilling the bounded output
        // queue, and a worker blocked on a full output queue would
        // deadlock the joins below. Disconnect happens exactly when the
        // router and every worker have flushed and exited.
        while self.output.recv().is_ok() {}
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_loggen::corpus;
    use std::collections::HashMap;

    #[test]
    fn round_trip_is_complete_and_tagged() {
        let corpus = corpus::hdfs_like(50, 61);
        let mut service =
            ShardedParseService::spawn(4, DrainConfig::default(), 64).expect("valid config");
        let n = corpus.logs.len();
        // Producer thread feeds while we consume (bounded queues would
        // deadlock a single-threaded feed-everything-then-read pattern —
        // by design).
        let mut received = Vec::new();
        std::thread::scope(|s| {
            let svc = &service;
            s.spawn(move || {
                for (i, log) in corpus.logs.iter().enumerate() {
                    svc.submit(i as u64, log.record.message.clone())
                        .expect("accepts");
                }
            });
            while received.len() < n {
                if let Some(item) = svc_recv(svc) {
                    received.push(item);
                }
            }
        });
        service.close();
        let (rest, counts) = service.shutdown();
        assert!(rest.is_empty());
        let mut seqs: Vec<u64> = received.iter().map(|p| p.seq).collect();
        seqs.sort_unstable();
        assert_eq!(
            seqs,
            (0..n as u64).collect::<Vec<_>>(),
            "every line exactly once"
        );
        assert!(
            counts.iter().sum::<usize>() >= 7,
            "templates discovered across shards"
        );
    }

    fn svc_recv(svc: &ShardedParseService) -> Option<ParsedItem> {
        svc.recv()
    }

    #[test]
    fn batched_submit_matches_single_submit() {
        // The same lines through submit_batch() and submit() produce the
        // same multiset of (seq, template) pairs — batching is a transport
        // optimization, invisible in the output.
        let corpus = corpus::cloud_mixed(8, 29);
        let messages: Vec<String> = corpus.messages().map(str::to_string).collect();
        let run = |batched: bool| -> Vec<(u64, u32)> {
            let mut service =
                ShardedParseService::spawn(3, DrainConfig::default(), 32).expect("valid config");
            let mut got = Vec::new();
            std::thread::scope(|s| {
                let svc = &service;
                let msgs = &messages;
                s.spawn(move || {
                    if batched {
                        for (b, chunk) in msgs.chunks(17).enumerate() {
                            let items: Vec<Item> = chunk
                                .iter()
                                .enumerate()
                                .map(|(i, m)| ((b * 17 + i) as u64, m.clone().into()))
                                .collect();
                            svc.submit_batch(items).expect("accepts");
                        }
                    } else {
                        for (i, m) in msgs.iter().enumerate() {
                            svc.submit(i as u64, m.clone()).expect("accepts");
                        }
                    }
                });
                while got.len() < messages.len() {
                    if let Some(item) = svc.recv() {
                        got.push((item.seq, item.outcome.template.0));
                    }
                }
            });
            service.close();
            let _ = service.shutdown();
            got.sort_unstable();
            got
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn grouping_matches_batch_parallel_sharding() {
        let corpus = corpus::cloud_mixed(10, 63);
        let messages: Vec<&str> = corpus.messages().collect();

        let mut service =
            ShardedParseService::spawn(4, DrainConfig::default(), 32).expect("valid config");
        let mut by_seq: HashMap<u64, u32> = HashMap::new();
        std::thread::scope(|s| {
            let svc = &service;
            let msgs = &messages;
            s.spawn(move || {
                for (i, m) in msgs.iter().enumerate() {
                    svc.submit(i as u64, m.to_string()).expect("accepts");
                }
            });
            while by_seq.len() < messages.len() {
                if let Some(item) = svc.recv() {
                    by_seq.insert(item.seq, item.outcome.template.0);
                }
            }
        });
        let (_, _) = {
            service.close();
            service.shutdown()
        };

        let batch = crate::pipeline::ParallelShardedDrain::new(4, DrainConfig::default())
            .expect("valid config");
        let (batch_out, _) = batch.parse_batch(&messages);

        // Same partition of lines into templates.
        let mut svc_groups: HashMap<u32, Vec<u64>> = HashMap::new();
        for (seq, t) in &by_seq {
            svc_groups.entry(*t).or_default().push(*seq);
        }
        let mut batch_groups: HashMap<u32, Vec<u64>> = HashMap::new();
        for (i, o) in batch_out.iter().enumerate() {
            batch_groups.entry(o.template.0).or_default().push(i as u64);
        }
        let normalize = |m: HashMap<u32, Vec<u64>>| {
            let mut v: Vec<Vec<u64>> = m
                .into_values()
                .map(|mut g| {
                    g.sort_unstable();
                    g
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(normalize(svc_groups), normalize(batch_groups));
    }

    #[test]
    fn try_submit_reports_saturation() {
        // Capacity 1 everywhere and no consumer: the pipeline must fill and
        // try_submit must start failing rather than buffering unboundedly.
        let service =
            ShardedParseService::spawn(1, DrainConfig::default(), 1).expect("valid config");
        let mut accepted = 0;
        let mut saturated = false;
        for i in 0..1_000 {
            match service.try_submit(i, format!("line {i} body")) {
                Ok(()) => accepted += 1,
                Err(_) => {
                    saturated = true;
                    break;
                }
            }
            // Give the router/worker a moment to move items along.
            if i % 10 == 0 {
                std::thread::yield_now();
            }
        }
        assert!(
            saturated,
            "pipeline never saturated after {accepted} unconsumed lines"
        );
        assert!(accepted < 1_000);
        // accepted items ≤ total queue capacity (input + shard + output + in-flight).
        assert!(
            accepted <= 8,
            "buffered {accepted} items with capacity-1 queues"
        );
    }

    #[test]
    fn rejected_batches_come_back_intact() {
        // Saturate the service, then verify a rejected batch returns every
        // item unchanged — nothing partially enqueued, nothing dropped.
        let service =
            ShardedParseService::spawn(1, DrainConfig::default(), 1).expect("valid config");
        let probe: Vec<Item> = (0..4)
            .map(|i| (1_000 + i, format!("probe payload {i}").into()))
            .collect();
        let mut seq = 0u64;
        loop {
            match service.try_submit_batch(vec![(seq, format!("filler {seq}").into())]) {
                Ok(()) => seq += 1,
                Err(_) => break,
            }
            assert!(seq < 1_000, "never saturated");
        }
        match service.try_submit_batch(probe.clone()) {
            Err(TrySubmitError::Saturated(items)) => assert_eq!(items, probe),
            other => panic!("expected Saturated with items, got {other:?}"),
        }
        // Closed path returns items intact too.
        let mut service = service;
        service.close();
        match service.try_submit_batch(probe.clone()) {
            Err(TrySubmitError::Closed(items)) => {
                assert_eq!(items.len(), probe.len());
                assert_eq!(items, probe);
            }
            other => panic!("expected Closed with items, got {other:?}"),
        }
    }

    #[test]
    fn close_then_drain_terminates() {
        let mut service =
            ShardedParseService::spawn(2, DrainConfig::default(), 16).expect("valid config");
        for i in 0..8 {
            service.submit(i, format!("alpha beta {i}")).expect("space");
        }
        service.close();
        let (rest, counts) = service.shutdown();
        assert_eq!(rest.len(), 8);
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let service =
            ShardedParseService::spawn(2, DrainConfig::default(), 4).expect("valid config");
        for i in 0..4 {
            let _ = service.try_submit(i, "x y z".to_string());
        }
        drop(service); // must join cleanly via Drop
    }

    #[test]
    fn spawn_rejects_degenerate_configs() {
        use crate::config::ConfigError;
        let err = ShardedParseService::spawn(0, DrainConfig::default(), 8).err();
        assert_eq!(err, Some(ConfigError::ZeroShards));
        let err = ShardedParseService::spawn(2, DrainConfig::default(), 0).err();
        assert_eq!(err, Some(ConfigError::ZeroCapacity));
        let err = crate::pipeline::ParallelShardedDrain::new(0, DrainConfig::default()).err();
        assert_eq!(err, Some(ConfigError::ZeroShards));
    }

    #[test]
    fn workers_record_parse_latency_and_gauges() {
        let corpus = corpus::hdfs_like(30, 17);
        let mut service =
            ShardedParseService::spawn(2, DrainConfig::default(), 64).expect("valid config");
        let n = corpus.logs.len();
        let mut got = 0;
        std::thread::scope(|s| {
            let svc = &service;
            s.spawn(move || {
                for (i, log) in corpus.logs.iter().enumerate() {
                    svc.submit(i as u64, log.record.message.clone())
                        .expect("accepts");
                }
            });
            while got < n {
                if svc.recv().is_some() {
                    got += 1;
                }
            }
        });
        service.close();
        let snap = service.registry().snapshot();
        assert_eq!(
            snap.stage("parse_exec").expect("parse stage").count,
            n as u64,
            "one parse latency sample per line"
        );
        assert!(snap.stage("parse_exec").unwrap().max_ns > 0);
        assert_eq!(
            snap.stage("parse_queue_wait").expect("queue wait").count,
            n as u64,
            "every line's queue wait accounted"
        );
        assert_eq!(snap.shards.len(), 2);
        assert!(
            snap.shards.iter().map(|s| s.templates).sum::<u64>() > 0,
            "template gauges populated: {snap:?}"
        );
        // Batched-transport accounting: every submit was a batch of one.
        assert_eq!(snap.counter("batches_submitted"), Some(n as u64));
        assert_eq!(snap.batch_sizes.count, n as u64);
        assert_eq!(snap.batch_sizes.sum, n as u64);
        // Repeated templates make the match cache earn hits.
        let hits = snap.counter("cache_hits").unwrap();
        let misses = snap.counter("cache_misses").unwrap();
        assert_eq!(hits + misses, n as u64, "every line consulted the cache");
        assert!(hits > 0, "repetitive corpus must produce cache hits");
        let (_, counts) = service.shutdown();
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn submit_after_close_errors() {
        let mut service =
            ShardedParseService::spawn(1, DrainConfig::default(), 4).expect("valid config");
        service.close();
        assert!(service.submit(0, "line").is_err());
        assert!(service.try_submit(0, "line").is_err());
    }
}
