//! Per-sink circuit breaker: closed → open → half-open.
//!
//! A sink that keeps failing should not be hammered with full delivery
//! batches on every retry tick — it slows the drain loop for healthy
//! routes and can make a struggling endpoint worse. The breaker quarantines
//! it instead:
//!
//! ```text
//!        failures >= threshold               probe healthcheck fails
//!   Closed ───────────────────▶ Open ◀──────────────────────────── HalfOpen
//!     ▲                          │ open interval elapsed              │
//!     │                          ▼                                    │
//!     └──────── probe healthcheck succeeds ◀── HalfOpen ◀─────────────┘
//! ```
//!
//! While **open**, delivery attempts are blocked outright. Once the open
//! interval elapses the breaker goes **half-open** and admits exactly one
//! cheap probe (the sink's healthcheck, not a report batch). A successful
//! probe closes the breaker; a failed one re-opens it with a doubled
//! (capped) interval, so a dead sink converges to one probe per
//! `open_max_ms` instead of a retry storm.
//!
//! All methods take `now: Instant` explicitly — tests drive the state
//! machine with synthetic clocks and assert exact transitions.

use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive delivery failures (while closed) that open the breaker.
    pub failure_threshold: u32,
    /// First open interval; doubles on every failed probe.
    pub open_ms: u64,
    /// Cap on the open interval growth.
    pub open_max_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_ms: 1_000,
            open_max_ms: 30_000,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// What the drain loop is allowed to do right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Breaker closed: deliver normally.
    Deliver,
    /// Breaker just moved (or already was) half-open: run one probe
    /// healthcheck, then report its outcome.
    Probe,
    /// Breaker open: do nothing this tick.
    Blocked,
}

#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// Current open interval (grows on failed probes).
    dwell: Duration,
    /// Transition counters for metrics: times opened / went half-open.
    opened: u64,
    half_opened: u64,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            dwell: Duration::from_millis(config.open_ms),
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: None,
            opened: 0,
            half_opened: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has transitioned into Open / HalfOpen (cumulative,
    /// mirrored into the `breaker_opened` / `breaker_half_open` counters).
    pub fn transition_counts(&self) -> (u64, u64) {
        (self.opened, self.half_opened)
    }

    /// What may happen at `now`. Open → HalfOpen transition occurs here
    /// when the open interval has elapsed.
    pub fn admit(&mut self, now: Instant) -> Admit {
        match self.state {
            BreakerState::Closed => Admit::Deliver,
            BreakerState::HalfOpen => Admit::Probe,
            BreakerState::Open => {
                if self.open_until.is_some_and(|t| now >= t) {
                    self.state = BreakerState::HalfOpen;
                    self.half_opened += 1;
                    Admit::Probe
                } else {
                    Admit::Blocked
                }
            }
        }
    }

    /// A delivery or probe succeeded: close and reset.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.open_until = None;
        self.dwell = Duration::from_millis(self.config.open_ms);
    }

    /// A delivery or probe failed. Returns `true` when this failure opened
    /// the breaker (for the `breaker_opened` counter).
    pub fn on_failure(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.open(now);
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                // Failed probe: back off harder.
                self.dwell = (self.dwell * 2).min(Duration::from_millis(self.config.open_max_ms));
                self.open(now);
                true
            }
            BreakerState::Open => false,
        }
    }

    fn open(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.open_until = Some(now + self.dwell);
        self.opened += 1;
        self.consecutive_failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_ms: 100,
            open_max_ms: 400,
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.admit(t0), Admit::Deliver);
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(t0), "third failure opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(t0), Admit::Blocked);
        assert_eq!(b.transition_counts(), (1, 0));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(t0);
        }
        assert_eq!(b.admit(t0 + Duration::from_millis(50)), Admit::Blocked);
        assert_eq!(b.admit(t0 + Duration::from_millis(100)), Admit::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t0 + Duration::from_millis(101)), Admit::Deliver);
        assert_eq!(b.transition_counts(), (1, 1));
    }

    #[test]
    fn failed_probe_doubles_the_open_interval_up_to_the_cap() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let mut now = t0;
        // Fail probes repeatedly: dwell 100 → 200 → 400 → 400 (capped).
        for expected_dwell in [200u64, 400, 400, 400] {
            now += Duration::from_millis(1_000); // way past any dwell
            assert_eq!(b.admit(now), Admit::Probe);
            assert!(b.on_failure(now), "failed probe re-opens");
            assert_eq!(
                b.admit(now + Duration::from_millis(expected_dwell - 1)),
                Admit::Blocked,
                "dwell {expected_dwell} not yet elapsed"
            );
            assert_eq!(
                b.admit(now + Duration::from_millis(expected_dwell)),
                Admit::Probe
            );
            // Re-block by failing again from HalfOpen at the same instant
            // is covered by the next loop iteration.
            b.state = BreakerState::Open;
            b.open_until = Some(now + Duration::from_millis(expected_dwell));
        }
        let (opened, half) = b.transition_counts();
        assert!(opened >= 5);
        assert!(half >= 4);
    }

    #[test]
    fn recovery_resets_dwell_growth() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.on_failure(t0);
        }
        let now = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(now), Admit::Probe);
        b.on_failure(now); // dwell now 200
        let now2 = now + Duration::from_millis(200);
        assert_eq!(b.admit(now2), Admit::Probe);
        b.on_success();
        // Next trip opens with the base interval again.
        for _ in 0..3 {
            b.on_failure(now2);
        }
        assert_eq!(b.admit(now2 + Duration::from_millis(99)), Admit::Blocked);
        assert_eq!(b.admit(now2 + Duration::from_millis(100)), Admit::Probe);
    }
}
