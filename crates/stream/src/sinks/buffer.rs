//! The CRC-framed on-disk delivery buffer.
//!
//! One buffer file per sink route. Accepting a report appends a frame and
//! fsyncs *before* the caller acks it upstream — acceptance is the
//! durability point; everything after (delivery, retry, spill) can crash
//! freely without losing a report. The file reuses the ingest journal's
//! framing:
//!
//! ```text
//! header (16 bytes): "MLDB" magic, version u16, reserved u16, epoch u64
//! frame            : [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload          : [report_id: u64 LE][class tag: u8][report JSON bytes]
//! ```
//!
//! A read **cursor** (byte offset of the first undelivered frame) tracks
//! sink progress. The cursor lives in memory and in the checkpoint
//! manifest — *not* in the buffer file — so a crash rewinds it to the last
//! checkpoint and re-delivers a suffix: at-least-once, deduped by report
//! id at the receiver. When the buffer fully drains it is compacted
//! (truncated back to the header) and its **epoch** bumps; a manifest
//! position from an older epoch no longer describes the file and is
//! discarded, which again errs on re-delivery, never on loss.
//!
//! Corruption tolerance mirrors the journal: opening scans frames and
//! truncates at the first torn or bit-flipped one — the tail after a
//! mid-buffer flip is re-accepted by the upstream replay path, not
//! silently trusted.

use super::MAX_FRAME_BYTES;
use crate::durable::DurabilityError;
use monilog_model::{crc32, DeliveryClass};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const BUFFER_MAGIC: [u8; 4] = *b"MLDB";
const BUFFER_VERSION: u16 = 1;
/// Magic + version + reserved + epoch.
pub const BUFFER_HEADER_LEN: u64 = 16;

/// A sink's progress through its buffer, as persisted in the checkpoint
/// manifest. `offset` is the byte position of the first undelivered frame
/// within epoch `epoch` of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferPosition {
    pub epoch: u64,
    pub offset: u64,
}

/// One report as stored in (and read back from) a delivery buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferedReport {
    /// Dense report id — stable across crash/replay (PR 5), the receiver's
    /// dedup key.
    pub id: u64,
    pub class: DeliveryClass,
    /// The report's JSON rendering, one line.
    pub body: String,
}

/// Append/read handle to one route's buffer file.
#[derive(Debug)]
pub struct DeliveryBuffer {
    path: PathBuf,
    file: File,
    /// Valid length: header + every intact frame. Appends go here;
    /// anything beyond was torn/corrupt and has been truncated away.
    len: u64,
    epoch: u64,
    /// First undelivered byte (always `BUFFER_HEADER_LEN ..= len`).
    cursor: u64,
}

impl DeliveryBuffer {
    /// Open (creating if needed) the buffer at `path`, scanning for the
    /// valid frame prefix and truncating any torn tail. `position` is the
    /// cursor recovered from the checkpoint manifest; it is honoured only
    /// if its epoch matches the file's — otherwise the cursor rewinds to
    /// the first frame (re-delivery over loss).
    pub fn open(
        path: impl Into<PathBuf>,
        position: Option<BufferPosition>,
    ) -> Result<DeliveryBuffer, DurabilityError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let epoch;
        let valid_len;
        if bytes.is_empty() {
            epoch = 0;
            write_header(&mut file, epoch)?;
            valid_len = BUFFER_HEADER_LEN;
        } else {
            if bytes.len() < BUFFER_HEADER_LEN as usize
                || bytes[..4] != BUFFER_MAGIC
                || u16::from_le_bytes([bytes[4], bytes[5]]) != BUFFER_VERSION
            {
                return Err(DurabilityError::Corrupt("delivery buffer header"));
            }
            epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("sized"));
            valid_len = scan_valid_len(&bytes);
            if valid_len < bytes.len() as u64 {
                // Torn or bit-flipped tail: drop it. The reports it held
                // were accepted but their upstream ack depended on this
                // very fsync — the replay path re-produces them.
                file.set_len(valid_len)?;
                file.sync_data()?;
            }
        }

        let cursor = match position {
            Some(p) if p.epoch == epoch => p.offset.clamp(BUFFER_HEADER_LEN, valid_len),
            _ => BUFFER_HEADER_LEN,
        };
        Ok(DeliveryBuffer {
            path,
            file,
            len: valid_len,
            epoch,
            cursor,
        })
    }

    /// Durably append reports (fsync before returning). Returns bytes
    /// written.
    pub fn append(&mut self, reports: &[BufferedReport]) -> Result<u64, DurabilityError> {
        if reports.is_empty() {
            return Ok(0);
        }
        let mut buf = Vec::new();
        for r in reports {
            let payload = super::encode_report_payload(r);
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(&payload).to_le_bytes());
            buf.extend_from_slice(&payload);
        }
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.len += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Read up to `max` undelivered reports from the cursor. Returns the
    /// reports and the offset just past them (pass to
    /// [`DeliveryBuffer::advance`] once a sink acknowledged the batch).
    pub fn peek(&mut self, max: usize) -> Result<(Vec<BufferedReport>, u64), DurabilityError> {
        let mut out = Vec::new();
        let mut off = self.cursor;
        if off >= self.len || max == 0 {
            return Ok((out, off));
        }
        self.file.seek(SeekFrom::Start(off))?;
        let mut rest = vec![0u8; (self.len - off) as usize];
        self.file.read_exact(&mut rest)?;
        let mut pos = 0usize;
        while out.len() < max {
            let Some((payload, next)) = next_frame(&rest, pos) else {
                break;
            };
            if let Some(report) = super::decode_report_payload(payload) {
                out.push(report);
            }
            pos = next;
        }
        off += pos as u64;
        Ok((out, off))
    }

    /// Mark everything before `offset` delivered. When the whole buffer is
    /// drained it compacts: truncate to the header and bump the epoch, so
    /// the file never grows without bound across a long run.
    pub fn advance(&mut self, offset: u64) -> Result<(), DurabilityError> {
        self.cursor = offset.clamp(self.cursor, self.len);
        if self.cursor == self.len && self.len > BUFFER_HEADER_LEN {
            self.epoch += 1;
            self.file.set_len(BUFFER_HEADER_LEN)?;
            write_header(&mut self.file, self.epoch)?;
            self.len = BUFFER_HEADER_LEN;
            self.cursor = BUFFER_HEADER_LEN;
        }
        Ok(())
    }

    /// Cursor position for the checkpoint manifest.
    pub fn position(&self) -> BufferPosition {
        BufferPosition {
            epoch: self.epoch,
            offset: self.cursor,
        }
    }

    /// Bytes accepted but not yet delivered.
    pub fn pending_bytes(&self) -> u64 {
        self.len - self.cursor
    }

    pub fn is_drained(&self) -> bool {
        self.cursor >= self.len
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn write_header(file: &mut File, epoch: u64) -> Result<(), DurabilityError> {
    let mut header = [0u8; BUFFER_HEADER_LEN as usize];
    header[..4].copy_from_slice(&BUFFER_MAGIC);
    header[4..6].copy_from_slice(&BUFFER_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&epoch.to_le_bytes());
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)?;
    file.sync_data()?;
    Ok(())
}

/// Length of the valid prefix: header plus every frame whose length and
/// CRC check out. The first bad frame ends the scan.
fn scan_valid_len(bytes: &[u8]) -> u64 {
    let body = &bytes[BUFFER_HEADER_LEN as usize..];
    let mut pos = 0usize;
    while let Some((_, next)) = next_frame(body, pos) {
        pos = next;
    }
    BUFFER_HEADER_LEN + pos as u64
}

/// Parse the frame at `pos`; `None` if torn, corrupt or past the end.
/// Returns the payload slice and the offset just past the frame.
fn next_frame(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let header_end = pos.checked_add(8)?;
    if header_end > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?);
    if len > MAX_FRAME_BYTES {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().ok()?);
    let end = header_end.checked_add(len as usize)?;
    if end > bytes.len() {
        return None;
    }
    let payload = &bytes[header_end..end];
    if crc32(payload) != crc {
        return None;
    }
    Some((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "monilog-delivery-buffer-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir.join("route.buf")
    }

    fn report(id: u64) -> BufferedReport {
        BufferedReport {
            id,
            class: DeliveryClass::from_tag((id % 3) as u8),
            body: format!("{{\"id\":{id},\"detector\":\"deeplog\"}}"),
        }
    }

    fn cleanup(path: &Path) {
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn append_peek_advance_round_trip() {
        let path = tmp("roundtrip");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        assert!(buf.is_drained());
        buf.append(&[report(1), report(2), report(3)]).unwrap();
        assert!(!buf.is_drained());
        let (batch, off) = buf.peek(2).unwrap();
        assert_eq!(batch, vec![report(1), report(2)]);
        buf.advance(off).unwrap();
        let (rest, off2) = buf.peek(10).unwrap();
        assert_eq!(rest, vec![report(3)]);
        buf.advance(off2).unwrap();
        assert!(buf.is_drained());
        cleanup(&path);
    }

    #[test]
    fn cursor_survives_reopen_via_position() {
        let path = tmp("reopen");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        buf.append(&[report(1), report(2), report(3)]).unwrap();
        let (_, off) = buf.peek(1).unwrap();
        buf.advance(off).unwrap();
        let pos = buf.position();
        drop(buf);
        let mut again = DeliveryBuffer::open(&path, Some(pos)).unwrap();
        let (pending, _) = again.peek(10).unwrap();
        assert_eq!(pending, vec![report(2), report(3)]);
        cleanup(&path);
    }

    #[test]
    fn stale_position_without_checkpoint_redelivers_a_suffix() {
        // A crash after delivery but before the next checkpoint: the
        // manifest cursor is behind reality → re-delivery, never loss.
        let path = tmp("stale");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        buf.append(&[report(1), report(2)]).unwrap();
        let checkpointed = buf.position();
        let (_, off) = buf.peek(10).unwrap();
        buf.advance(off).unwrap(); // delivered both, compacts + bumps epoch
        buf.append(&[report(3)]).unwrap();
        drop(buf);
        // Restart recovers the *older* manifest position; epoch moved on,
        // so the cursor rewinds to the first frame of the current epoch.
        let mut again = DeliveryBuffer::open(&path, Some(checkpointed)).unwrap();
        let (pending, _) = again.peek(10).unwrap();
        assert_eq!(pending, vec![report(3)]);
        cleanup(&path);
    }

    #[test]
    fn drain_compacts_and_bumps_epoch() {
        let path = tmp("compact");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        buf.append(&[report(1), report(2)]).unwrap();
        let grown = fs::metadata(&path).unwrap().len();
        assert!(grown > BUFFER_HEADER_LEN);
        let (_, off) = buf.peek(10).unwrap();
        buf.advance(off).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), BUFFER_HEADER_LEN);
        assert_eq!(buf.position().epoch, 1);
        // Fresh appends after compaction read back fine.
        buf.append(&[report(9)]).unwrap();
        let (batch, _) = buf.peek(10).unwrap();
        assert_eq!(batch, vec![report(9)]);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_recovers_to_last_good_frame() {
        let path = tmp("torn");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        buf.append(&[report(1), report(2)]).unwrap();
        let full = fs::metadata(&path).unwrap().len();
        drop(buf);
        // Crash mid-append: cut the final frame at every possible point.
        let intact = fs::read(&path).unwrap();
        let second_frame_start = {
            let body = &intact[BUFFER_HEADER_LEN as usize..];
            let (_, first_end) = next_frame(body, 0).unwrap();
            BUFFER_HEADER_LEN as usize + first_end
        };
        for cut in second_frame_start..full as usize {
            fs::write(&path, &intact[..cut]).unwrap();
            let mut b = DeliveryBuffer::open(&path, None).unwrap();
            let (pending, _) = b.peek(10).unwrap();
            assert_eq!(pending, vec![report(1)], "cut at {cut}");
            // The torn tail was truncated away; appends continue cleanly.
            b.append(&[report(7)]).unwrap();
            let (pending, _) = b.peek(10).unwrap();
            assert_eq!(pending, vec![report(1), report(7)]);
        }
        cleanup(&path);
    }

    #[test]
    fn bit_flip_mid_buffer_truncates_from_the_flip() {
        let path = tmp("bitflip");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        buf.append(&[report(1), report(2), report(3)]).unwrap();
        drop(buf);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit inside the second frame's payload.
        let body_start = BUFFER_HEADER_LEN as usize;
        let (_, first_end) = next_frame(&bytes[body_start..], 0).unwrap();
        let flip_at = body_start + first_end + 12; // inside frame 2's payload
        bytes[flip_at] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let mut b = DeliveryBuffer::open(&path, None).unwrap();
        let (pending, _) = b.peek(10).unwrap();
        assert_eq!(pending, vec![report(1)], "frames after the flip are gone");
        assert!(
            fs::metadata(&path).unwrap().len() < bytes.len() as u64,
            "corrupt tail truncated on open"
        );
        cleanup(&path);
    }

    #[test]
    fn corrupt_header_is_a_typed_error_not_a_panic() {
        let path = tmp("header");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"not a delivery buffer at all").unwrap();
        match DeliveryBuffer::open(&path, None) {
            Err(DurabilityError::Corrupt(what)) => assert!(what.contains("header")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn position_from_wrong_epoch_is_ignored() {
        let path = tmp("epoch");
        let mut buf = DeliveryBuffer::open(&path, None).unwrap();
        buf.append(&[report(5)]).unwrap();
        drop(buf);
        let bogus = BufferPosition {
            epoch: 42,
            offset: 999_999,
        };
        let mut b = DeliveryBuffer::open(&path, Some(bogus)).unwrap();
        let (pending, _) = b.peek(10).unwrap();
        assert_eq!(pending, vec![report(5)]);
        cleanup(&path);
    }
}
