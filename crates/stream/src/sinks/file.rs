//! The local file sink: JSONL append with size rotation.
//!
//! The terminal route for low-severity reports ("the rest → TCP/file") and
//! the simplest possible [`Sink`]: append each report's JSON line to a
//! [`RotatingLog`] and fsync. It has no transient failure mode — disk
//! full or permission errors are real I/O errors and surface as
//! retryable (the delivery buffer holds the batch; an operator fixing the
//! disk unblocks the drain).

use super::{BufferedReport, Sink, SinkError};
use crate::durable::RotatingLog;
use crate::metrics::PipelineMetrics;
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Sink that appends reports to a rotating local JSONL file.
pub struct FileSink {
    log: RotatingLog,
    /// Rotation-dropped bytes are accounted here (the pipeline wires this
    /// to `spill_bytes_dropped`).
    dropped_bytes: Option<Arc<PipelineMetrics>>,
}

impl FileSink {
    /// Open (creating parents) the sink file with a rotation cap and
    /// retained-generation count.
    pub fn open(
        path: impl Into<PathBuf>,
        rotate_bytes: u64,
        retain: usize,
    ) -> Result<FileSink, SinkError> {
        let log = RotatingLog::open(path, rotate_bytes, retain)
            .map_err(|e| SinkError::Fatal(format!("open file sink: {e}")))?;
        Ok(FileSink {
            log,
            dropped_bytes: None,
        })
    }

    /// Account rotation-dropped bytes into `metrics.spill_bytes_dropped`.
    pub fn with_metrics(mut self, metrics: Arc<PipelineMetrics>) -> FileSink {
        self.dropped_bytes = Some(metrics);
        self
    }

    fn counter(&self) -> Option<&AtomicU64> {
        self.dropped_bytes.as_ref().map(|m| &m.spill_bytes_dropped)
    }
}

impl Sink for FileSink {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn healthcheck(&mut self) -> Result<(), SinkError> {
        // Liveness = the directory is writable; an empty append is a no-op
        // but opening the file exercises the same path.
        self.log
            .append_text("")
            .map(|_| ())
            .map_err(|e| SinkError::Retryable(format!("file sink: {e}")))
    }

    fn deliver(&mut self, batch: &[BufferedReport]) -> Result<(), SinkError> {
        let mut text = String::new();
        for r in batch {
            text.push_str(&r.body);
            text.push('\n');
        }
        let dropped = self
            .log
            .append_text(&text)
            .map_err(|e| SinkError::Retryable(format!("file sink append: {e}")))?;
        if dropped > 0 {
            if let Some(counter) = self.counter() {
                PipelineMetrics::add(counter, dropped);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_model::DeliveryClass;
    use std::fs;

    #[test]
    fn appends_jsonl_and_rotates_with_accounting() {
        let dir = std::env::temp_dir().join(format!("monilog-filesink-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("reports.jsonl");
        let metrics = PipelineMetrics::shared();
        let mut sink = FileSink::open(&path, 200, 1)
            .unwrap()
            .with_metrics(Arc::clone(&metrics));
        sink.healthcheck().unwrap();
        for i in 0..20u64 {
            sink.deliver(&[BufferedReport {
                id: i,
                class: DeliveryClass::Log,
                body: format!("{{\"id\":{i},\"pad\":\"{}\"}}", "p".repeat(30)),
            }])
            .unwrap();
        }
        assert!(path.exists());
        assert!(
            PipelineMetrics::get(&metrics.spill_bytes_dropped) > 0,
            "rotation past the cap was accounted"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
