//! The HTTP/webhook sink: `POST` a batch of reports as ndjson.
//!
//! A deliberately minimal blocking HTTP/1.1 client over `TcpStream` — the
//! same no-external-deps approach as the [`crate::export`] server side.
//! One request per batch with `Connection: close`; the status line decides
//! the error class:
//!
//! - `2xx` → delivered;
//! - `408`, `429`, `5xx` → [`SinkError::Retryable`] (the endpoint is
//!   overloaded or flaky — back off and retry the same batch);
//! - any other status → [`SinkError::Fatal`] (the endpoint understood the
//!   request and rejected it; retrying identical bytes cannot help).
//!
//! Connection-level failures (refused, reset, timeout) are retryable.
//! The healthcheck is `GET /healthz` — the same convention the metrics
//! exporter serves, so any MoniLog-aware receiver answers it.

use super::{BufferedReport, Sink, SinkError};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Sink that POSTs report batches to an HTTP endpoint.
pub struct WebhookSink {
    host: String,
    port: u16,
    path: String,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl WebhookSink {
    /// Parse an `http://host:port/path` URL. Only plain HTTP is supported
    /// (this stack vendors no TLS); `https://` is rejected up front.
    pub fn from_url(url: &str) -> Result<WebhookSink, String> {
        let rest = url
            .strip_prefix("http://")
            .ok_or_else(|| format!("unsupported sink url (need http://): {url}"))?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (
                h.to_string(),
                p.parse::<u16>()
                    .map_err(|_| format!("bad port in sink url: {url}"))?,
            ),
            None => (authority.to_string(), 80),
        };
        if host.is_empty() {
            return Err(format!("missing host in sink url: {url}"));
        }
        Ok(WebhookSink {
            host,
            port,
            path: path.to_string(),
            connect_timeout: Duration::from_millis(1_000),
            io_timeout: Duration::from_millis(2_000),
        })
    }

    /// Override the connect and per-read/write timeouts (tests and the
    /// fault-injection harness use short ones).
    pub fn with_timeouts(mut self, connect: Duration, io: Duration) -> WebhookSink {
        self.connect_timeout = connect;
        self.io_timeout = io;
        self
    }

    fn connect(&self) -> Result<TcpStream, SinkError> {
        let addr = format!("{}:{}", self.host, self.port)
            .to_socket_addrs()
            .map_err(|e| SinkError::Retryable(format!("resolve {}: {e}", self.host)))?
            .next()
            .ok_or_else(|| SinkError::Retryable(format!("no address for {}", self.host)))?;
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(|e| SinkError::Retryable(format!("connect {addr}: {e}")))?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// One request/response round trip; returns the HTTP status code.
    fn request(&self, head: &str, body: &[u8]) -> Result<u16, SinkError> {
        let mut stream = self.connect()?;
        stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            stream.write_all(body)?;
        }
        stream.flush()?;
        // Read just enough of the response for the status line.
        let mut buf = Vec::with_capacity(256);
        let mut chunk = [0u8; 256];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    buf.extend_from_slice(&chunk[..n]);
                    if buf.contains(&b'\n') || buf.len() > 4096 {
                        break;
                    }
                }
                Err(e) => return Err(SinkError::Retryable(format!("read response: {e}"))),
            }
        }
        parse_status_line(&buf)
            .ok_or_else(|| SinkError::Retryable("malformed HTTP response".into()))
    }
}

/// Extract the status code from an HTTP/1.x status line.
fn parse_status_line(buf: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(buf).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    parts.next()?.parse().ok()
}

/// Map a response status to the delivery outcome.
fn classify_status(status: u16) -> Result<(), SinkError> {
    match status {
        200..=299 => Ok(()),
        408 | 429 | 500..=599 => Err(SinkError::Retryable(format!("HTTP {status}"))),
        _ => Err(SinkError::Fatal(format!("HTTP {status}"))),
    }
}

impl Sink for WebhookSink {
    fn kind(&self) -> &'static str {
        "webhook"
    }

    fn healthcheck(&mut self) -> Result<(), SinkError> {
        let head = format!(
            "GET /healthz HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.host
        );
        let status = self.request(&head, &[])?;
        // Any well-formed answer proves liveness for the probe's purposes,
        // but only 2xx closes the breaker — a 5xx healthz is still sick.
        classify_status(status)
    }

    fn deliver(&mut self, batch: &[BufferedReport]) -> Result<(), SinkError> {
        let mut body = String::new();
        for r in batch {
            body.push_str(&r.body);
            body.push('\n');
        }
        let head = format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/x-ndjson\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.path,
            self.host,
            body.len()
        );
        let status = self.request(&head, body.as_bytes())?;
        classify_status(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parsing_accepts_the_obvious_shapes() {
        let s = WebhookSink::from_url("http://127.0.0.1:9900/hooks/monilog").unwrap();
        assert_eq!(s.host, "127.0.0.1");
        assert_eq!(s.port, 9900);
        assert_eq!(s.path, "/hooks/monilog");
        let s = WebhookSink::from_url("http://alerts.example.com").unwrap();
        assert_eq!(s.port, 80);
        assert_eq!(s.path, "/");
        assert!(WebhookSink::from_url("https://secure.example.com").is_err());
        assert!(WebhookSink::from_url("ftp://x").is_err());
        assert!(WebhookSink::from_url("http://:80/").is_err());
        assert!(WebhookSink::from_url("http://h:notaport/").is_err());
    }

    #[test]
    fn status_classification_matches_the_contract() {
        assert!(classify_status(200).is_ok());
        assert!(classify_status(204).is_ok());
        for retryable in [408u16, 429, 500, 502, 503] {
            assert!(
                classify_status(retryable).unwrap_err().is_retryable(),
                "{retryable}"
            );
        }
        for fatal in [400u16, 401, 403, 404, 410] {
            assert!(
                !classify_status(fatal).unwrap_err().is_retryable(),
                "{fatal}"
            );
        }
    }

    #[test]
    fn status_line_parsing_is_tolerant() {
        assert_eq!(parse_status_line(b"HTTP/1.1 200 OK\r\n"), Some(200));
        assert_eq!(parse_status_line(b"HTTP/1.0 503 Unavailable\n"), Some(503));
        assert_eq!(parse_status_line(b"garbage"), None);
        assert_eq!(parse_status_line(b""), None);
        assert_eq!(parse_status_line(&[0xFF, 0xFE]), None);
    }

    #[test]
    fn connection_refused_is_retryable() {
        // Port 1 on localhost is essentially never listening.
        let mut sink = WebhookSink::from_url("http://127.0.0.1:1/x")
            .unwrap()
            .with_timeouts(Duration::from_millis(200), Duration::from_millis(200));
        let err = sink
            .deliver(&[BufferedReport {
                id: 1,
                class: monilog_model::DeliveryClass::Page,
                body: "{}".into(),
            }])
            .unwrap_err();
        assert!(err.is_retryable(), "{err}");
    }
}
