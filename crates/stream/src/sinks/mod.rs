//! At-least-once anomaly delivery: sinks, disk buffering, retry and
//! circuit breaking.
//!
//! MoniLog's output is not a local JSONL file — the paper frames detection
//! as feeding an alerting loop where administrators are notified of
//! critical anomalies. This module is that pipeline edge, built around one
//! invariant: **an accepted report is never dropped and the ingest hot
//! path is never blocked by a slow sink**.
//!
//! The moving parts:
//!
//! - [`Sink`] — the delivery contract: a healthcheck plus a batched
//!   `deliver` returning *typed* errors ([`SinkError::Retryable`] vs
//!   [`SinkError::Fatal`]), mirroring Vector's `delivery: "at_least_once"`
//!   sink semantics. Implementations: [`WebhookSink`] (HTTP POST of
//!   ndjson), [`FramedTcpSink`] (length+CRC framed, per-report acks) and
//!   [`FileSink`] (local JSONL, cannot fail transiently).
//! - [`DeliveryBuffer`] — a CRC-framed on-disk buffer reusing the WAL
//!   framing from [`crate::durable::journal`]. `accept` appends + fsyncs
//!   *before* acking, so the point of acceptance is the point of
//!   durability; a read cursor tracks what each sink has acknowledged.
//! - [`CircuitBreaker`] — per-sink closed → open → half-open state
//!   machine; a sink that keeps failing is quarantined and re-admitted
//!   via probe healthchecks instead of hammering it with full batches.
//! - [`DeliveryPipeline`] — routes reports to sinks by
//!   [`DeliveryClass`] (page → webhook, ticket → TCP, log → file), drains
//!   buffers with capped exponential backoff + deterministic jitter, and
//!   degrades to a rotating local spill file when a breaker stays open
//!   past its grace deadline — degraded, but nothing is dropped.
//!
//! ## Exactly-once, end to end
//!
//! Delivery here is at-least-once: a crash between a sink acknowledging a
//! batch and the cursor advance being checkpointed re-sends that batch.
//! Exactly-once emerges at the receiver: every report carries its dense
//! report id, and PR 5's emitted-id dedup means ids are stable across
//! crash/replay, so the receiver keeps a seen-id set and duplicates are
//! detectable (and in our harness, counted). Lost is impossible, duplicate
//! is idempotent — the same argument Vector's at-least-once contract makes.

pub mod breaker;
pub mod buffer;
pub mod file;
pub mod http;
pub mod pipeline;
pub mod tcp;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use buffer::{BufferPosition, BufferedReport, DeliveryBuffer};
pub use file::FileSink;
pub use http::WebhookSink;
pub use pipeline::{
    decode_positions, encode_positions, AcceptedReport, DeliveryConfig, DeliveryPipeline,
    DeliveryWorker, PumpReport, RouteSpec,
};
pub use tcp::FramedTcpSink;

use std::fmt;
use std::io::{Read, Write};

use monilog_model::crc32;

/// Why a delivery attempt failed, typed so the pipeline can tell a flaky
/// endpoint (retry with backoff, maybe open the breaker) from a hopeless
/// request (divert to the spill file and move on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkError {
    /// Transient: connection refused/reset, timeout, HTTP 408/429/5xx.
    /// The batch stays in the delivery buffer and is retried.
    Retryable(String),
    /// Permanent for this batch: the sink understood the request and
    /// rejected it (e.g. HTTP 4xx other than 408/429). Retrying the same
    /// bytes cannot succeed; the batch is spilled locally instead.
    Fatal(String),
}

impl SinkError {
    pub fn is_retryable(&self) -> bool {
        matches!(self, SinkError::Retryable(_))
    }
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Retryable(m) => write!(f, "retryable sink error: {m}"),
            SinkError::Fatal(m) => write!(f, "fatal sink error: {m}"),
        }
    }
}

impl From<std::io::Error> for SinkError {
    /// I/O failures are transient by definition — the bytes never reached
    /// a sink that could judge them.
    fn from(e: std::io::Error) -> Self {
        SinkError::Retryable(e.to_string())
    }
}

/// A delivery target. Implementations are driven by one pipeline thread at
/// a time, so `&mut self` is fine; they own their connections and may
/// reconnect lazily inside `deliver`.
pub trait Sink: Send {
    /// Stable name for metrics and logs (e.g. `"webhook"`, `"tcp"`).
    fn kind(&self) -> &'static str;

    /// Cheap liveness probe used by the half-open circuit breaker: must
    /// not send reports, must exercise the same path a delivery would
    /// (the shared convention is `GET /healthz` for HTTP sinks, a ping
    /// frame for framed-TCP ones).
    fn healthcheck(&mut self) -> Result<(), SinkError>;

    /// Deliver a batch. `Ok` means every report in the batch is durably
    /// with the receiver; a partial success must be reported as an error
    /// (the whole batch is retried — receivers dedup by report id).
    fn deliver(&mut self, batch: &[BufferedReport]) -> Result<(), SinkError>;
}

// ---------------------------------------------------------------------------
// The framed-TCP wire protocol, shared by `FramedTcpSink` and the chaos
// harness's in-process receiver (`crate::chaos::FlakySinkServer`).
//
//   frame   = [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//   payload = [report_id: u64 LE][class tag: u8][report JSON bytes]
//   ping    = empty payload (len = 0)
//
// The receiver acknowledges every data frame with the 8-byte LE report id
// once it has recorded the report, and every ping with `PING_ACK`. The
// sender treats a missing/mismatched ack as a retryable failure — TCP
// write success alone proves nothing about receiver-side delivery.
// ---------------------------------------------------------------------------

/// Ack value for a ping (empty) frame.
pub const PING_ACK: u64 = u64::MAX;

/// Frames larger than this are rejected as corruption rather than
/// allocated — same guard as the ingest journal.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Write one frame (length, CRC, payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame; `Ok(None)` on clean EOF before the length word. A
/// corrupt length or CRC is an error (the connection is poisoned).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::other(format!("frame too large: {len}")));
    }
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != u32::from_le_bytes(crc_buf) {
        return Err(std::io::Error::other("frame CRC mismatch"));
    }
    Ok(Some(payload))
}

/// Encode a data-frame payload (`report_id`, class tag, body bytes).
pub fn encode_report_payload(report: &BufferedReport) -> Vec<u8> {
    let body = report.body.as_bytes();
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.extend_from_slice(&report.id.to_le_bytes());
    payload.push(report.class.tag());
    payload.extend_from_slice(body);
    payload
}

/// Decode a data-frame payload back into a report. Returns `None` for a
/// ping (empty payload) or a malformed payload.
pub fn decode_report_payload(payload: &[u8]) -> Option<BufferedReport> {
    if payload.len() < 9 {
        return None;
    }
    let id = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let class = monilog_model::DeliveryClass::from_tag(payload[8]);
    let body = String::from_utf8_lossy(&payload[9..]).into_owned();
    Some(BufferedReport { id, class, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monilog_model::DeliveryClass;

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let reports = [
            BufferedReport {
                id: 1,
                class: DeliveryClass::Page,
                body: "{\"id\":1}".into(),
            },
            BufferedReport {
                id: 99,
                class: DeliveryClass::Log,
                body: "{\"id\":99,\"x\":\"héllo\"}".into(),
            },
        ];
        let mut wire = Vec::new();
        for r in &reports {
            write_frame(&mut wire, &encode_report_payload(r)).unwrap();
        }
        write_frame(&mut wire, &[]).unwrap(); // ping
        let mut cursor = &wire[..];
        for r in &reports {
            let payload = read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(decode_report_payload(&payload).unwrap(), *r);
        }
        let ping = read_frame(&mut cursor).unwrap().unwrap();
        assert!(ping.is_empty());
        assert!(decode_report_payload(&ping).is_none());
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_frames_error_instead_of_panicking() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &encode_report_payload(&BufferedReport {
                id: 7,
                class: DeliveryClass::Ticket,
                body: "{}".into(),
            }),
        )
        .unwrap();
        // Flip a payload bit: CRC mismatch.
        let mut flipped = wire.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(read_frame(&mut &flipped[..]).is_err());
        // Absurd length word: rejected before allocation.
        let mut huge = (u32::MAX).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 8]);
        assert!(read_frame(&mut &huge[..]).is_err());
        // Truncated mid-payload: error (a poisoned connection, not EOF).
        let torn = &wire[..wire.len() - 1];
        assert!(read_frame(&mut &torn[..]).is_err());
    }

    #[test]
    fn sink_error_displays_and_classifies() {
        let r = SinkError::Retryable("connection refused".into());
        let f = SinkError::Fatal("400 bad request".into());
        assert!(r.is_retryable());
        assert!(!f.is_retryable());
        assert!(r.to_string().contains("retryable"));
        assert!(f.to_string().contains("fatal"));
        let io: SinkError = std::io::Error::other("boom").into();
        assert!(io.is_retryable());
    }
}
