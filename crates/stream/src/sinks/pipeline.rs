//! The delivery pipeline: buffer-first acceptance, routed retried drains.
//!
//! Two call paths, deliberately decoupled:
//!
//! - **accept** (hot path, called at pipeline commit points): route each
//!   report by [`DeliveryClass`], append to the matching route's
//!   [`DeliveryBuffer`] and fsync. No network I/O ever happens here — a
//!   slow or dead sink cannot block ingest.
//! - **pump** (drain path, a background worker or an explicit call):
//!   per route, read a batch from the buffer, attempt delivery through
//!   the route's [`Sink`], and advance the cursor on success. Failures
//!   back off exponentially with deterministic jitter (reusing
//!   [`RetryPolicy::backoff`]); repeated failures open the route's
//!   [`CircuitBreaker`]; a breaker open past its grace deadline degrades
//!   the route to its local **spill file** — reports keep landing on disk,
//!   never dropped, and the buffer cannot grow without bound.
//!
//! Buffer cursors ("positions") are exported for the durable checkpoint
//! manifest and honoured on reopen, so a SIGKILL replays only the
//! undelivered suffix. Replay can re-deliver (at-least-once); receivers
//! dedup by report id.

use super::breaker::{Admit, BreakerConfig, BreakerState, CircuitBreaker};
use super::buffer::{BufferPosition, BufferedReport, DeliveryBuffer};
use super::{Sink, SinkError};
use crate::config::RetryPolicy;
use crate::durable::{DurabilityError, RotatingLog};
use crate::metrics::PipelineMetrics;
use crate::observe::{MetricsRegistry, Stage};
use monilog_model::DeliveryClass;
use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A report handed to [`DeliveryPipeline::accept`]. Identical shape to
/// what the buffer stores.
pub type AcceptedReport = BufferedReport;

/// Delivery tuning knobs (`--sink-retry-max-ms`, `--sink-buffer-bytes`).
#[derive(Debug, Clone)]
pub struct DeliveryConfig {
    /// Directory holding per-route buffer and spill files.
    pub dir: PathBuf,
    /// Backoff policy between failed delivery attempts (`max_retries` is
    /// ignored: delivery never gives up on retryable errors — the breaker
    /// and spill grace handle persistent failure).
    pub retry: RetryPolicy,
    pub breaker: BreakerConfig,
    /// Reports per delivery attempt.
    pub batch_max: usize,
    /// A breaker continuously open for this long degrades the route to
    /// its spill file (pending + future reports until the sink recovers).
    pub spill_grace_ms: u64,
    /// Pending bytes per route above which the oldest buffered reports
    /// are spilled (bounds buffer growth while a sink is slow).
    pub buffer_spill_bytes: u64,
    /// Spill file rotation cap and retained generations.
    pub spill_rotate_bytes: u64,
    pub spill_retain: usize,
}

impl DeliveryConfig {
    pub fn new(dir: impl Into<PathBuf>) -> DeliveryConfig {
        DeliveryConfig {
            dir: dir.into(),
            retry: RetryPolicy {
                max_retries: u32::MAX,
                base_backoff: Duration::from_millis(50),
                max_backoff: Duration::from_millis(5_000),
            },
            breaker: BreakerConfig::default(),
            batch_max: 64,
            spill_grace_ms: 60_000,
            buffer_spill_bytes: 64 * 1024 * 1024,
            spill_rotate_bytes: 16 * 1024 * 1024,
            spill_retain: 2,
        }
    }
}

/// A sink plus the delivery classes it serves. Routing picks the first
/// route whose `classes` contain a report's class, falling back to the
/// last route — by convention the file sink, which cannot refuse.
pub struct RouteSpec {
    pub name: String,
    pub classes: Vec<DeliveryClass>,
    pub sink: Box<dyn Sink>,
}

struct RouteState {
    buffer: DeliveryBuffer,
    breaker: CircuitBreaker,
    attempt: u32,
    next_attempt_at: Option<Instant>,
    /// When the breaker (continuously) opened; drives the spill grace.
    open_since: Option<Instant>,
    /// Breaker transition counts already mirrored into global metrics.
    mirrored_opened: u64,
    mirrored_half_open: u64,
}

struct Route {
    name: String,
    classes: Vec<DeliveryClass>,
    sink: Mutex<Box<dyn Sink>>,
    state: Mutex<RouteState>,
    spill: RotatingLog,
}

/// What one [`DeliveryPipeline::pump_once`] tick did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    pub delivered: u64,
    pub retried: u64,
    pub spilled: u64,
    /// Bytes still waiting across all route buffers after the tick.
    pub pending_bytes: u64,
}

struct Shared {
    routes: Vec<Arc<Route>>,
    config: DeliveryConfig,
    metrics: Arc<PipelineMetrics>,
    registry: Arc<MetricsRegistry>,
    /// Live override for `config.retry.max_backoff`, in milliseconds
    /// (0 = use the configured value). Set by hot config reload
    /// (`sink-retry-max-ms`) so an operator can shorten retry stalls on a
    /// recovering sink without a restart.
    retry_max_ms: AtomicU64,
    /// Live override for the route serving [`DeliveryClass::Page`]: the
    /// index of the overriding route, or `usize::MAX` for "use the static
    /// `RouteSpec.classes`". Set by hot config reload (`route-critical`)
    /// so pages can be re-pointed at a healthier sink without a restart.
    page_route: AtomicUsize,
    /// Serialises drain ticks (worker vs explicit flush). Never taken by
    /// `accept`.
    pump_lock: Mutex<()>,
}

impl Shared {
    /// The retry policy currently in force (configured values with the
    /// hot override applied).
    fn retry(&self) -> RetryPolicy {
        let mut policy = self.config.retry;
        let over = self.retry_max_ms.load(Ordering::Relaxed);
        if over > 0 {
            policy.max_backoff = Duration::from_millis(over);
        }
        policy
    }
}

/// Cloneable handle to the delivery pipeline.
#[derive(Clone)]
pub struct DeliveryPipeline {
    shared: Arc<Shared>,
}

impl DeliveryPipeline {
    /// Open the pipeline: one buffer file (`<dir>/<name>.buf`) and spill
    /// file (`<dir>/<name>.spill.jsonl`) per route. `positions` are the
    /// cursors recovered from the checkpoint manifest (unknown names are
    /// ignored; missing names start from the beginning — re-delivery over
    /// loss).
    pub fn open(
        config: DeliveryConfig,
        specs: Vec<RouteSpec>,
        positions: &[(String, BufferPosition)],
        registry: Arc<MetricsRegistry>,
    ) -> Result<DeliveryPipeline, DurabilityError> {
        assert!(
            !specs.is_empty(),
            "delivery pipeline needs at least one route"
        );
        std::fs::create_dir_all(&config.dir)?;
        let metrics = Arc::clone(registry.counters());
        let mut routes = Vec::with_capacity(specs.len());
        for spec in specs {
            let pos = positions
                .iter()
                .find(|(n, _)| *n == spec.name)
                .map(|(_, p)| *p);
            let buffer = DeliveryBuffer::open(config.dir.join(format!("{}.buf", spec.name)), pos)?;
            let spill = RotatingLog::open(
                config.dir.join(format!("{}.spill.jsonl", spec.name)),
                config.spill_rotate_bytes,
                config.spill_retain,
            )?;
            routes.push(Arc::new(Route {
                name: spec.name,
                classes: spec.classes,
                sink: Mutex::new(spec.sink),
                state: Mutex::new(RouteState {
                    buffer,
                    breaker: CircuitBreaker::new(config.breaker),
                    attempt: 0,
                    next_attempt_at: None,
                    open_since: None,
                    mirrored_opened: 0,
                    mirrored_half_open: 0,
                }),
                spill,
            }));
        }
        Ok(DeliveryPipeline {
            shared: Arc::new(Shared {
                routes,
                config,
                metrics,
                registry,
                retry_max_ms: AtomicU64::new(0),
                page_route: AtomicUsize::new(usize::MAX),
                pump_lock: Mutex::new(()),
            }),
        })
    }

    /// Index of the route serving `class`.
    fn route_index(&self, class: DeliveryClass) -> usize {
        if class == DeliveryClass::Page {
            let over = self.shared.page_route.load(Ordering::Relaxed);
            if over < self.shared.routes.len() {
                return over;
            }
        }
        self.shared
            .routes
            .iter()
            .position(|r| r.classes.contains(&class))
            .unwrap_or(self.shared.routes.len() - 1)
    }

    /// Re-point [`DeliveryClass::Page`] at the named route (the hot
    /// `route-critical` reload); `None` restores the static routing.
    /// Returns false (and changes nothing) if no route has that name.
    /// Only affects reports accepted after the call — already-buffered
    /// reports drain through the route they were appended to.
    pub fn set_page_route(&self, name: Option<&str>) -> bool {
        let index = match name {
            None => usize::MAX,
            Some(n) => match self.shared.routes.iter().position(|r| r.name == n) {
                Some(i) => i,
                None => return false,
            },
        };
        self.shared.page_route.store(index, Ordering::Relaxed);
        true
    }

    /// Durably accept reports: append to the matching route buffers and
    /// fsync. After this returns, a SIGKILL cannot lose any of them. If a
    /// route's pending bytes exceed the cap, its oldest reports are
    /// spilled locally (bounded disk, nothing dropped).
    pub fn accept(&self, reports: &[AcceptedReport]) -> Result<(), DurabilityError> {
        if reports.is_empty() {
            return Ok(());
        }
        let mut grouped: Vec<Vec<BufferedReport>> = vec![Vec::new(); self.shared.routes.len()];
        for r in reports {
            grouped[self.route_index(r.class)].push(r.clone());
        }
        for (route, group) in self.shared.routes.iter().zip(grouped) {
            if group.is_empty() {
                continue;
            }
            let mut st = route.state.lock();
            st.buffer.append(&group)?;
            PipelineMetrics::add(&self.shared.metrics.reports_accepted, group.len() as u64);
            while st.buffer.pending_bytes() > self.shared.config.buffer_spill_bytes {
                let n = self.spill_batch(route, &mut st)?;
                if n == 0 {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Move one batch from the buffer front to the spill file. Returns the
    /// number of reports spilled.
    fn spill_batch(&self, route: &Route, st: &mut RouteState) -> Result<u64, DurabilityError> {
        let (batch, next_off) = st.buffer.peek(self.shared.config.batch_max)?;
        if batch.is_empty() {
            return Ok(0);
        }
        let mut text = String::new();
        for r in &batch {
            text.push_str(&r.body);
            text.push('\n');
        }
        let dropped = route.spill.append_text(&text)?;
        st.buffer.advance(next_off)?;
        let m = &self.shared.metrics;
        PipelineMetrics::add(&m.reports_spilled, batch.len() as u64);
        if dropped > 0 {
            PipelineMetrics::add(&m.spill_bytes_dropped, dropped);
        }
        Ok(batch.len() as u64)
    }

    /// Mirror a route's breaker transition counts into the global metrics.
    fn sync_breaker_metrics(&self, st: &mut RouteState) {
        let (opened, half) = st.breaker.transition_counts();
        let m = &self.shared.metrics;
        if opened > st.mirrored_opened {
            PipelineMetrics::add(&m.breaker_opened, opened - st.mirrored_opened);
            st.mirrored_opened = opened;
        }
        if half > st.mirrored_half_open {
            PipelineMetrics::add(&m.breaker_half_open, half - st.mirrored_half_open);
            st.mirrored_half_open = half;
        }
    }

    /// One drain tick over every route. Serialised against concurrent
    /// pumps; never blocks `accept`.
    pub fn pump_once(&self, now: Instant) -> Result<PumpReport, DurabilityError> {
        let _pump = self.shared.pump_lock.lock();
        let mut out = PumpReport::default();
        for route in &self.shared.routes {
            self.pump_route(route, now, &mut out)?;
        }
        out.pending_bytes = self.pending_bytes();
        Ok(out)
    }

    fn pump_route(
        &self,
        route: &Arc<Route>,
        now: Instant,
        out: &mut PumpReport,
    ) -> Result<(), DurabilityError> {
        let config = &self.shared.config;

        let mut st = route.state.lock();
        if st.buffer.is_drained() {
            return Ok(());
        }
        if let Some(t) = st.next_attempt_at {
            if now < t {
                return Ok(());
            }
            st.next_attempt_at = None;
        }
        match st.breaker.admit(now) {
            Admit::Blocked => {
                self.sync_breaker_metrics(&mut st);
                // Degradation: a sink open past its grace deadline stops
                // holding reports hostage — they land in the spill file.
                let grace = Duration::from_millis(config.spill_grace_ms);
                if st
                    .open_since
                    .is_some_and(|t| now.duration_since(t) >= grace)
                {
                    loop {
                        let n = self.spill_batch(route, &mut st)?;
                        out.spilled += n;
                        if n == 0 {
                            break;
                        }
                    }
                    st.open_since = Some(now);
                }
                return Ok(());
            }
            Admit::Probe => {
                self.sync_breaker_metrics(&mut st);
                drop(st);
                let probe = route.sink.lock().healthcheck();
                let mut st = route.state.lock();
                match probe {
                    Ok(()) => {
                        st.breaker.on_success();
                        st.open_since = None;
                        // Fall through to a real delivery attempt below.
                    }
                    Err(_) => {
                        st.breaker.on_failure(now);
                        self.sync_breaker_metrics(&mut st);
                        return Ok(());
                    }
                }
                drop(st);
                return self.deliver_batch(route, now, out);
            }
            Admit::Deliver => {}
        }
        drop(st);
        self.deliver_batch(route, now, out)
    }

    /// Attempt one batch on a route whose breaker admitted delivery.
    fn deliver_batch(
        &self,
        route: &Arc<Route>,
        now: Instant,
        out: &mut PumpReport,
    ) -> Result<(), DurabilityError> {
        let config = &self.shared.config;
        let m = &self.shared.metrics;

        let mut st = route.state.lock();
        let (batch, next_off) = st.buffer.peek(config.batch_max)?;
        if batch.is_empty() {
            return Ok(());
        }
        drop(st);

        // Network I/O happens outside the state lock: accept() stays free.
        let start = Instant::now();
        let result = route.sink.lock().deliver(&batch);
        self.shared.registry.record(Stage::Deliver, start);

        let mut st = route.state.lock();
        match result {
            Ok(()) => {
                st.buffer.advance(next_off)?;
                st.attempt = 0;
                st.next_attempt_at = None;
                st.open_since = None;
                st.breaker.on_success();
                PipelineMetrics::add(&m.reports_delivered, batch.len() as u64);
                out.delivered += batch.len() as u64;
            }
            Err(SinkError::Retryable(_)) => {
                st.attempt = st.attempt.saturating_add(1);
                PipelineMetrics::incr(&m.delivery_retries);
                out.retried += 1;
                let backoff = self.shared.retry().backoff(st.attempt, batch[0].id);
                st.next_attempt_at = Some(now + backoff);
                if st.breaker.on_failure(now) && st.open_since.is_none() {
                    st.open_since = Some(now);
                }
                self.sync_breaker_metrics(&mut st);
            }
            Err(SinkError::Fatal(_)) => {
                // The sink judged the batch and said no. Spill it so the
                // operator has the bytes, and move on.
                let mut text = String::new();
                for r in &batch {
                    text.push_str(&r.body);
                    text.push('\n');
                }
                let dropped = route.spill.append_text(&text)?;
                st.buffer.advance(next_off)?;
                PipelineMetrics::add(&m.delivery_failures, batch.len() as u64);
                PipelineMetrics::add(&m.reports_spilled, batch.len() as u64);
                if dropped > 0 {
                    PipelineMetrics::add(&m.spill_bytes_dropped, dropped);
                }
                out.spilled += batch.len() as u64;
            }
        }
        Ok(())
    }

    /// Pump until every buffer drains or `timeout` elapses. Returns the
    /// pending bytes left (0 = fully delivered).
    pub fn flush(&self, timeout: Duration) -> Result<u64, DurabilityError> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let report = self.pump_once(now)?;
            if report.pending_bytes == 0 {
                return Ok(0);
            }
            if Instant::now() >= deadline {
                return Ok(report.pending_bytes);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Current buffer cursors, for the checkpoint manifest.
    pub fn positions(&self) -> Vec<(String, BufferPosition)> {
        self.shared
            .routes
            .iter()
            .map(|r| (r.name.clone(), r.state.lock().buffer.position()))
            .collect()
    }

    /// Bytes accepted but not yet delivered (or spilled), across routes.
    pub fn pending_bytes(&self) -> u64 {
        self.shared
            .routes
            .iter()
            .map(|r| r.state.lock().buffer.pending_bytes())
            .sum()
    }

    /// Cap every future retry backoff at `ms` milliseconds (0 restores
    /// the configured cap). The hot `sink-retry-max-ms` reload path.
    pub fn set_retry_max_ms(&self, ms: u64) {
        self.shared.retry_max_ms.store(ms, Ordering::Relaxed);
    }

    /// The retry policy currently in force (configured values plus any
    /// live override).
    pub fn retry_policy(&self) -> RetryPolicy {
        self.shared.retry()
    }

    /// Breaker state per route (for tests and status lines).
    pub fn breaker_states(&self) -> Vec<(String, BreakerState)> {
        self.shared
            .routes
            .iter()
            .map(|r| (r.name.clone(), r.state.lock().breaker.state()))
            .collect()
    }

    /// Spawn the background drain worker. The worker wakes every
    /// `poll` and pumps once; drop (or `stop()`) the handle to join it.
    pub fn spawn_worker(&self, poll: Duration) -> DeliveryWorker {
        let stop = Arc::new(AtomicBool::new(false));
        let pipeline = self.clone();
        let flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("monilog-delivery".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    let _ = pipeline.pump_once(Instant::now());
                    std::thread::sleep(poll);
                }
            })
            .expect("spawn delivery worker");
        DeliveryWorker {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to the background drain thread; stops and joins on drop.
pub struct DeliveryWorker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DeliveryWorker {
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DeliveryWorker {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Checkpoint-manifest encoding of buffer positions.
// ---------------------------------------------------------------------------

/// Encode route positions for the manifest's `delivery` section:
/// `[count u32][per entry: name_len u16, name bytes, epoch u64, offset u64]`.
pub fn encode_positions(positions: &[(String, BufferPosition)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(positions.len() as u32).to_le_bytes());
    for (name, pos) in positions {
        let name = name.as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&pos.epoch.to_le_bytes());
        out.extend_from_slice(&pos.offset.to_le_bytes());
    }
    out
}

/// Decode a `delivery` manifest section; `None` on any structural damage
/// (recovery then starts cursors from the beginning — re-delivery, not
/// loss).
pub fn decode_positions(bytes: &[u8]) -> Option<Vec<(String, BufferPosition)>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let s = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().ok()?) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).ok()?;
        let epoch = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        out.push((name, BufferPosition { epoch, offset }));
    }
    if pos != bytes.len() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::fs;
    use std::sync::Mutex as StdMutex;

    /// Scripted in-memory sink: pops one result per deliver call, records
    /// what it acknowledged. An empty script means "succeed".
    struct ScriptSink {
        script: Arc<StdMutex<VecDeque<Result<(), SinkError>>>>,
        delivered: Arc<StdMutex<Vec<u64>>>,
        healthy: Arc<AtomicBool>,
        healthchecks: Arc<StdMutex<u64>>,
    }

    #[derive(Clone)]
    struct ScriptHandle {
        script: Arc<StdMutex<VecDeque<Result<(), SinkError>>>>,
        delivered: Arc<StdMutex<Vec<u64>>>,
        healthy: Arc<AtomicBool>,
        healthchecks: Arc<StdMutex<u64>>,
    }

    fn script_sink(outcomes: Vec<Result<(), SinkError>>) -> (Box<dyn Sink>, ScriptHandle) {
        let handle = ScriptHandle {
            script: Arc::new(StdMutex::new(outcomes.into_iter().collect())),
            delivered: Arc::new(StdMutex::new(Vec::new())),
            healthy: Arc::new(AtomicBool::new(true)),
            healthchecks: Arc::new(StdMutex::new(0)),
        };
        let sink = ScriptSink {
            script: Arc::clone(&handle.script),
            delivered: Arc::clone(&handle.delivered),
            healthy: Arc::clone(&handle.healthy),
            healthchecks: Arc::clone(&handle.healthchecks),
        };
        (Box::new(sink), handle)
    }

    impl Sink for ScriptSink {
        fn kind(&self) -> &'static str {
            "script"
        }
        fn healthcheck(&mut self) -> Result<(), SinkError> {
            *self.healthchecks.lock().unwrap() += 1;
            if self.healthy.load(Ordering::Relaxed) {
                Ok(())
            } else {
                Err(SinkError::Retryable("unhealthy".into()))
            }
        }
        fn deliver(&mut self, batch: &[BufferedReport]) -> Result<(), SinkError> {
            let outcome = self.script.lock().unwrap().pop_front().unwrap_or(Ok(()));
            if outcome.is_ok() {
                self.delivered
                    .lock()
                    .unwrap()
                    .extend(batch.iter().map(|r| r.id));
            }
            outcome
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "monilog-delivery-pipeline-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn report(id: u64, class: DeliveryClass) -> BufferedReport {
        BufferedReport {
            id,
            class,
            body: format!("{{\"id\":{id}}}"),
        }
    }

    fn fast_config(dir: &std::path::Path) -> DeliveryConfig {
        let mut c = DeliveryConfig::new(dir);
        c.retry.base_backoff = Duration::from_millis(1);
        c.retry.max_backoff = Duration::from_millis(5);
        c.breaker = BreakerConfig {
            failure_threshold: 3,
            open_ms: 10,
            open_max_ms: 40,
        };
        c
    }

    #[test]
    fn accept_then_pump_delivers_in_order() {
        let dir = tmp_dir("order");
        let (sink, handle) = script_sink(vec![]);
        let registry = MetricsRegistry::shared();
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        p.accept(&[
            report(1, DeliveryClass::Page),
            report(2, DeliveryClass::Log),
        ])
        .unwrap();
        p.accept(&[report(3, DeliveryClass::Ticket)]).unwrap();
        let rep = p.pump_once(Instant::now()).unwrap();
        assert_eq!(rep.delivered, 3);
        assert_eq!(rep.pending_bytes, 0);
        assert_eq!(*handle.delivered.lock().unwrap(), vec![1, 2, 3]);
        let m = registry.counters();
        assert_eq!(PipelineMetrics::get(&m.reports_accepted), 3);
        assert_eq!(PipelineMetrics::get(&m.reports_delivered), 3);
        assert!(registry.stage(Stage::Deliver).count() >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn severity_routing_sends_classes_to_their_routes() {
        let dir = tmp_dir("routing");
        let (page_sink, page) = script_sink(vec![]);
        let (rest_sink, rest) = script_sink(vec![]);
        let registry = MetricsRegistry::shared();
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![
                RouteSpec {
                    name: "webhook".into(),
                    classes: vec![DeliveryClass::Page],
                    sink: page_sink,
                },
                RouteSpec {
                    name: "file".into(),
                    classes: vec![DeliveryClass::Ticket, DeliveryClass::Log],
                    sink: rest_sink,
                },
            ],
            &[],
            registry,
        )
        .unwrap();
        p.accept(&[
            report(1, DeliveryClass::Page),
            report(2, DeliveryClass::Ticket),
            report(3, DeliveryClass::Log),
            report(4, DeliveryClass::Page),
        ])
        .unwrap();
        p.pump_once(Instant::now()).unwrap();
        assert_eq!(*page.delivered.lock().unwrap(), vec![1, 4]);
        assert_eq!(*rest.delivered.lock().unwrap(), vec![2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn page_route_override_repoints_pages_live() {
        let dir = tmp_dir("page-route");
        let (page_sink, page) = script_sink(vec![]);
        let (rest_sink, rest) = script_sink(vec![]);
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![
                RouteSpec {
                    name: "webhook".into(),
                    classes: vec![DeliveryClass::Page],
                    sink: page_sink,
                },
                RouteSpec {
                    name: "file".into(),
                    classes: vec![DeliveryClass::Ticket, DeliveryClass::Log],
                    sink: rest_sink,
                },
            ],
            &[],
            MetricsRegistry::shared(),
        )
        .unwrap();
        p.accept(&[report(1, DeliveryClass::Page)]).unwrap();
        // Re-point pages at the file route; an unknown route is refused
        // and changes nothing.
        assert!(!p.set_page_route(Some("nope")));
        assert!(p.set_page_route(Some("file")));
        p.accept(&[report(2, DeliveryClass::Page)]).unwrap();
        // Clearing the override restores the static RouteSpec routing.
        assert!(p.set_page_route(None));
        p.accept(&[report(3, DeliveryClass::Page)]).unwrap();
        p.pump_once(Instant::now()).unwrap();
        assert_eq!(*page.delivered.lock().unwrap(), vec![1, 3]);
        assert_eq!(*rest.delivered.lock().unwrap(), vec![2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retryable_failure_backs_off_then_succeeds() {
        let dir = tmp_dir("retry");
        let (sink, handle) = script_sink(vec![
            Err(SinkError::Retryable("flaky".into())),
            Err(SinkError::Retryable("flaky".into())),
        ]);
        let registry = MetricsRegistry::shared();
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        p.accept(&[report(7, DeliveryClass::Ticket)]).unwrap();
        let t0 = Instant::now();
        assert_eq!(p.pump_once(t0).unwrap().retried, 1);
        // Before the backoff elapses nothing happens.
        assert_eq!(p.pump_once(t0).unwrap().retried, 0);
        // Drive virtual time forward past each backoff.
        let rep = p.pump_once(t0 + Duration::from_millis(60)).unwrap();
        assert_eq!(rep.retried, 1);
        let rep = p.pump_once(t0 + Duration::from_millis(120)).unwrap();
        assert_eq!(rep.delivered, 1);
        assert_eq!(*handle.delivered.lock().unwrap(), vec![7]);
        let m = registry.counters();
        assert_eq!(PipelineMetrics::get(&m.delivery_retries), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_cap_override_shortens_backoff_live() {
        let dir = tmp_dir("retry-cap");
        let (sink, handle) = script_sink(vec![Err(SinkError::Retryable("flaky".into()))]);
        let registry = MetricsRegistry::shared();
        let mut config = fast_config(&dir);
        // Configured backoff is enormous: without the override the retry
        // would stall for 10 s of virtual time.
        config.retry.base_backoff = Duration::from_secs(10);
        config.retry.max_backoff = Duration::from_secs(10);
        let p = DeliveryPipeline::open(
            config,
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        p.set_retry_max_ms(20);
        assert_eq!(p.retry_policy().max_backoff, Duration::from_millis(20));
        p.accept(&[report(9, DeliveryClass::Ticket)]).unwrap();
        let t0 = Instant::now();
        assert_eq!(p.pump_once(t0).unwrap().retried, 1);
        // Worst case with +50% jitter the capped backoff is 30 ms; at
        // +60 ms the retry must fire and deliver.
        let rep = p.pump_once(t0 + Duration::from_millis(60)).unwrap();
        assert_eq!(rep.delivered, 1);
        assert_eq!(*handle.delivered.lock().unwrap(), vec![9]);
        // Clearing the override restores the configured cap.
        p.set_retry_max_ms(0);
        assert_eq!(p.retry_policy().max_backoff, Duration::from_secs(10));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn breaker_opens_probes_and_recovers() {
        let dir = tmp_dir("breaker");
        let (sink, handle) = script_sink(vec![
            Err(SinkError::Retryable("down".into())),
            Err(SinkError::Retryable("down".into())),
            Err(SinkError::Retryable("down".into())),
        ]);
        handle.healthy.store(false, Ordering::Relaxed);
        let registry = MetricsRegistry::shared();
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        p.accept(&[report(1, DeliveryClass::Page)]).unwrap();
        let t0 = Instant::now();
        let mut now = t0;
        // Three failures open the breaker (each after its backoff).
        for _ in 0..3 {
            p.pump_once(now).unwrap();
            now += Duration::from_millis(20);
        }
        assert_eq!(p.breaker_states()[0].1, BreakerState::Open);
        let m = registry.counters();
        assert_eq!(PipelineMetrics::get(&m.breaker_opened), 1);
        // While open and unhealthy: probes fail, no deliveries happen.
        now += Duration::from_millis(50);
        p.pump_once(now).unwrap();
        assert!(PipelineMetrics::get(&m.breaker_half_open) >= 1);
        assert_eq!(*handle.delivered.lock().unwrap(), Vec::<u64>::new());
        assert!(*handle.healthchecks.lock().unwrap() >= 1);
        // Sink recovers: next probe closes the breaker and delivery flows.
        handle.healthy.store(true, Ordering::Relaxed);
        now += Duration::from_millis(200);
        let rep = p.pump_once(now).unwrap();
        assert_eq!(rep.delivered, 1);
        assert_eq!(p.breaker_states()[0].1, BreakerState::Closed);
        assert_eq!(*handle.delivered.lock().unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fatal_errors_divert_the_batch_to_the_spill_file() {
        let dir = tmp_dir("fatal");
        let (sink, handle) = script_sink(vec![Err(SinkError::Fatal("HTTP 400".into()))]);
        let registry = MetricsRegistry::shared();
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![RouteSpec {
                name: "webhook".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        p.accept(&[report(5, DeliveryClass::Page)]).unwrap();
        let rep = p.pump_once(Instant::now()).unwrap();
        assert_eq!(rep.spilled, 1);
        assert_eq!(rep.pending_bytes, 0, "fatal batch left the buffer");
        assert!(handle.delivered.lock().unwrap().is_empty());
        let spill = fs::read_to_string(dir.join("webhook.spill.jsonl")).unwrap();
        assert!(spill.contains("\"id\":5"));
        let m = registry.counters();
        assert_eq!(PipelineMetrics::get(&m.delivery_failures), 1);
        assert_eq!(PipelineMetrics::get(&m.reports_spilled), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn breaker_open_past_grace_degrades_to_spill() {
        let dir = tmp_dir("grace");
        let (sink, handle) = script_sink(vec![
            Err(SinkError::Retryable("down".into())),
            Err(SinkError::Retryable("down".into())),
            Err(SinkError::Retryable("down".into())),
        ]);
        handle.healthy.store(false, Ordering::Relaxed);
        let registry = MetricsRegistry::shared();
        let mut config = fast_config(&dir);
        config.spill_grace_ms = 100;
        config.breaker.open_ms = 10_000; // stays open, probes far away
        config.breaker.open_max_ms = 10_000;
        let p = DeliveryPipeline::open(
            config,
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        p.accept(&[
            report(1, DeliveryClass::Page),
            report(2, DeliveryClass::Page),
        ])
        .unwrap();
        let t0 = Instant::now();
        let mut now = t0;
        for _ in 0..3 {
            p.pump_once(now).unwrap();
            now += Duration::from_millis(20);
        }
        assert_eq!(p.breaker_states()[0].1, BreakerState::Open);
        // Grace not yet elapsed: reports stay buffered.
        let rep = p.pump_once(now).unwrap();
        assert_eq!(rep.spilled, 0);
        assert!(rep.pending_bytes > 0);
        // Past the grace deadline: everything pending spills.
        now += Duration::from_millis(200);
        let rep = p.pump_once(now).unwrap();
        assert_eq!(rep.spilled, 2);
        assert_eq!(rep.pending_bytes, 0);
        let spill = fs::read_to_string(dir.join("tcp.spill.jsonl")).unwrap();
        assert!(spill.contains("\"id\":1") && spill.contains("\"id\":2"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn buffer_cap_spills_oldest_on_accept() {
        let dir = tmp_dir("cap");
        let (sink, _) = script_sink(vec![]);
        let registry = MetricsRegistry::shared();
        let mut config = fast_config(&dir);
        config.buffer_spill_bytes = 200;
        let p = DeliveryPipeline::open(
            config,
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            Arc::clone(&registry),
        )
        .unwrap();
        let reports: Vec<BufferedReport> = (0..50).map(|i| report(i, DeliveryClass::Log)).collect();
        p.accept(&reports).unwrap();
        assert!(p.pending_bytes() <= 200 + 64, "buffer bounded by the cap");
        let m = registry.counters();
        assert!(PipelineMetrics::get(&m.reports_spilled) > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn positions_restart_resumes_where_delivery_stopped() {
        let dir = tmp_dir("positions");
        let registry = MetricsRegistry::shared();
        let (sink, handle) = script_sink(vec![]);
        let spec = |sink| {
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }]
        };
        let mut config = fast_config(&dir);
        config.batch_max = 2;
        let p =
            DeliveryPipeline::open(config.clone(), spec(sink), &[], Arc::clone(&registry)).unwrap();
        p.accept(&[
            report(1, DeliveryClass::Log),
            report(2, DeliveryClass::Log),
            report(3, DeliveryClass::Log),
        ])
        .unwrap();
        p.pump_once(Instant::now()).unwrap(); // delivers 1, 2 (batch_max)
        assert_eq!(*handle.delivered.lock().unwrap(), vec![1, 2]);
        let positions = p.positions();
        let encoded = encode_positions(&positions);
        drop(p);
        // "Restart": decode the manifest section, reopen, only 3 remains.
        let decoded = decode_positions(&encoded).unwrap();
        assert_eq!(decoded, positions);
        let (sink2, handle2) = script_sink(vec![]);
        let p2 = DeliveryPipeline::open(config, spec(sink2), &decoded, registry).unwrap();
        p2.pump_once(Instant::now()).unwrap();
        assert_eq!(*handle2.delivered.lock().unwrap(), vec![3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn position_codec_rejects_damage() {
        let positions = vec![
            (
                "webhook".to_string(),
                BufferPosition {
                    epoch: 3,
                    offset: 1024,
                },
            ),
            ("file".to_string(), BufferPosition::default()),
        ];
        let bytes = encode_positions(&positions);
        assert_eq!(decode_positions(&bytes).unwrap(), positions);
        assert!(decode_positions(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_positions(&extra).is_none());
        assert!(decode_positions(&[]).is_none());
        assert_eq!(decode_positions(&0u32.to_le_bytes()).unwrap(), vec![]);
    }

    #[test]
    fn truncated_spill_file_recovers_and_keeps_appending() {
        // A crash mid-spill leaves a torn JSONL tail; reopening must not
        // panic and later spills must still land.
        let dir = tmp_dir("torn-spill");
        let registry = MetricsRegistry::shared();
        let make = |sink| {
            vec![RouteSpec {
                name: "webhook".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }]
        };
        let (sink, _) = script_sink(vec![Err(SinkError::Fatal("HTTP 400".into()))]);
        let p = DeliveryPipeline::open(fast_config(&dir), make(sink), &[], Arc::clone(&registry))
            .unwrap();
        p.accept(&[report(1, DeliveryClass::Page)]).unwrap();
        p.pump_once(Instant::now()).unwrap(); // spills report 1
        drop(p);
        let spill_path = dir.join("webhook.spill.jsonl");
        let bytes = fs::read(&spill_path).unwrap();
        fs::write(&spill_path, &bytes[..bytes.len() / 2]).unwrap(); // torn tail
        let (sink2, _) = script_sink(vec![Err(SinkError::Fatal("HTTP 400".into()))]);
        let p2 = DeliveryPipeline::open(fast_config(&dir), make(sink2), &[], registry).unwrap();
        p2.accept(&[report(2, DeliveryClass::Page)]).unwrap();
        p2.pump_once(Instant::now()).unwrap();
        let text = fs::read_to_string(&spill_path).unwrap();
        assert!(text.contains("\"id\":2"), "spill keeps working: {text}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_worker_drains_without_explicit_pumps() {
        let dir = tmp_dir("worker");
        let (sink, handle) = script_sink(vec![]);
        let registry = MetricsRegistry::shared();
        let p = DeliveryPipeline::open(
            fast_config(&dir),
            vec![RouteSpec {
                name: "tcp".into(),
                classes: DeliveryClass::ALL.to_vec(),
                sink,
            }],
            &[],
            registry,
        )
        .unwrap();
        let mut worker = p.spawn_worker(Duration::from_millis(2));
        p.accept(&[report(1, DeliveryClass::Page)]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while p.pending_bytes() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        worker.stop();
        assert_eq!(*handle.delivered.lock().unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
