//! The length-framed TCP sink.
//!
//! Speaks the frame protocol defined in [`crate::sinks`] (length + CRC +
//! payload) over a persistent connection, reconnecting lazily. Delivery
//! is **ack-driven**: the receiver answers every data frame with the
//! 8-byte report id once it has recorded the report, and the sink only
//! reports success when every frame in the batch is acknowledged. A TCP
//! write completing proves nothing — the kernel buffers it, the peer may
//! reset mid-frame — so acks are what make "delivered" mean
//! receiver-side delivered, which is exactly what the fault-injection
//! harness asserts on.
//!
//! Every failure here is [`SinkError::Retryable`]: a framed peer has no
//! way to say "well-formed but rejected", it either records and acks or
//! the connection dies.

use super::{write_frame, BufferedReport, Sink, SinkError, PING_ACK};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Sink that streams CRC-framed reports to a TCP receiver.
pub struct FramedTcpSink {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    conn: Option<TcpStream>,
}

impl FramedTcpSink {
    pub fn new(addr: impl Into<String>) -> FramedTcpSink {
        FramedTcpSink {
            addr: addr.into(),
            connect_timeout: Duration::from_millis(1_000),
            io_timeout: Duration::from_millis(2_000),
            conn: None,
        }
    }

    /// Override the connect and per-read/write timeouts.
    pub fn with_timeouts(mut self, connect: Duration, io: Duration) -> FramedTcpSink {
        self.connect_timeout = connect;
        self.io_timeout = io;
        self
    }

    fn resolve(&self) -> Result<SocketAddr, SinkError> {
        self.addr
            .to_socket_addrs()
            .map_err(|e| SinkError::Retryable(format!("resolve {}: {e}", self.addr)))?
            .next()
            .ok_or_else(|| SinkError::Retryable(format!("no address for {}", self.addr)))
    }

    /// Get (or re-establish) the connection.
    fn stream(&mut self) -> Result<&mut TcpStream, SinkError> {
        if self.conn.is_none() {
            let addr = self.resolve()?;
            let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
                .map_err(|e| SinkError::Retryable(format!("connect {addr}: {e}")))?;
            stream.set_read_timeout(Some(self.io_timeout))?;
            stream.set_write_timeout(Some(self.io_timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just set"))
    }

    /// Run `f` on the connection; any error poisons it (next call
    /// reconnects) and is retryable.
    fn with_conn<R>(
        &mut self,
        f: impl FnOnce(&mut TcpStream) -> std::io::Result<R>,
    ) -> Result<R, SinkError> {
        let stream = self.stream()?;
        match f(stream) {
            Ok(r) => Ok(r),
            Err(e) => {
                self.conn = None;
                Err(SinkError::Retryable(e.to_string()))
            }
        }
    }
}

fn read_ack(stream: &mut impl Read) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    stream.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

impl Sink for FramedTcpSink {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    /// Probe: a ping frame (empty payload) the receiver must ack with
    /// [`PING_ACK`]. Exercises connect + write + receiver read loop + ack
    /// path without sending a report.
    fn healthcheck(&mut self) -> Result<(), SinkError> {
        self.with_conn(|stream| {
            write_frame(stream, &[])?;
            stream.flush()?;
            let ack = read_ack(stream)?;
            if ack != PING_ACK {
                return Err(std::io::Error::other(format!("bad ping ack: {ack:#x}")));
            }
            Ok(())
        })
    }

    /// Write every frame, then collect one ack per frame (pipelined). Any
    /// short write, reset, timeout or ack mismatch fails the whole batch —
    /// the receiver dedups re-sent ids, so coarse retry is safe.
    fn deliver(&mut self, batch: &[BufferedReport]) -> Result<(), SinkError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.with_conn(|stream| {
            for r in batch {
                write_frame(stream, &super::encode_report_payload(r))?;
            }
            stream.flush()?;
            for r in batch {
                let ack = read_ack(stream)?;
                if ack != r.id {
                    return Err(std::io::Error::other(format!(
                        "ack mismatch: sent {}, acked {ack}",
                        r.id
                    )));
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::read_frame;
    use monilog_model::DeliveryClass;
    use std::net::TcpListener;

    fn report(id: u64) -> BufferedReport {
        BufferedReport {
            id,
            class: DeliveryClass::Ticket,
            body: format!("{{\"id\":{id}}}"),
        }
    }

    /// Minimal in-test receiver: ack everything, record ids.
    fn ack_server(listener: TcpListener, conns: usize) -> std::thread::JoinHandle<Vec<u64>> {
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            for _ in 0..conns {
                let (mut s, _) = listener.accept().unwrap();
                while let Ok(Some(payload)) = read_frame(&mut s) {
                    let ack = match super::super::decode_report_payload(&payload) {
                        Some(r) => {
                            seen.push(r.id);
                            r.id
                        }
                        None => PING_ACK,
                    };
                    if s.write_all(&ack.to_le_bytes()).is_err() {
                        break;
                    }
                }
            }
            seen
        })
    }

    #[test]
    fn delivers_batches_and_healthchecks_over_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ack_server(listener, 1);
        let mut sink = FramedTcpSink::new(addr.to_string())
            .with_timeouts(Duration::from_millis(500), Duration::from_millis(500));
        sink.healthcheck().unwrap();
        sink.deliver(&[report(1), report(2)]).unwrap();
        sink.deliver(&[report(3)]).unwrap();
        drop(sink); // closes the connection so the server thread exits
        assert_eq!(server.join().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn refused_connection_is_retryable_and_recovers() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // nothing listening now
        let mut sink = FramedTcpSink::new(addr.to_string())
            .with_timeouts(Duration::from_millis(200), Duration::from_millis(200));
        assert!(sink.deliver(&[report(9)]).unwrap_err().is_retryable());
        // Endpoint comes back (new listener on the same port is racy on
        // some systems; bind a fresh one and repoint instead).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener.local_addr().unwrap();
        let server = ack_server(listener, 1);
        sink.addr = addr2.to_string();
        sink.deliver(&[report(9)]).unwrap();
        drop(sink);
        assert_eq!(server.join().unwrap(), vec![9]);
    }

    #[test]
    fn peer_reset_mid_batch_is_retryable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Server accepts, reads one frame, then drops without acking.
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_frame(&mut s);
            // dropped: connection resets under the sink's ack read
        });
        let mut sink = FramedTcpSink::new(addr.to_string())
            .with_timeouts(Duration::from_millis(300), Duration::from_millis(300));
        let err = sink.deliver(&[report(1), report(2)]).unwrap_err();
        assert!(err.is_retryable(), "{err}");
        server.join().unwrap();
    }
}
