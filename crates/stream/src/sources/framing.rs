//! Stream framing for TCP syslog (RFC 6587): octet-counting
//! (`"<len> SP <msg>"`) and non-transparent LF framing, auto-detected per
//! connection from the first frame.
//!
//! The decoder is deliberately byte-oriented: frames are only converted to
//! UTF-8 once complete, so multi-byte characters torn across read-buffer
//! boundaries always reassemble correctly.

/// Framing mode, fixed per connection after the first frame. RFC 6587 octet
/// counting starts every frame with ASCII digits + SP; non-transparent
/// framing can't (syslog messages start with `<pri>` or free text), so the
/// first bytes of a connection disambiguate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    OctetCounted,
    LineDelimited,
}

/// Unrecoverable framing failure. Octet-count desync can't be resynchronised
/// (RFC 6587 §3.4.1), so the connection must be dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Octet-count header longer than 10 digits or not followed by SP.
    BadOctetHeader,
    /// Declared frame length above the configured maximum.
    OversizedFrame { declared: u64, max: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadOctetHeader => write!(f, "malformed octet-count header"),
            FrameError::OversizedFrame { declared, max } => {
                write!(f, "declared frame of {declared} bytes exceeds max {max}")
            }
        }
    }
}

/// Stateful per-connection frame decoder.
pub struct FrameDecoder {
    max_frame: usize,
    mode: Option<Mode>,
    /// In line mode: an oversized line is being discarded until the next LF.
    discarding: bool,
    /// Frames dropped (oversized lines) since construction.
    pub dropped: u64,
}

impl FrameDecoder {
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            max_frame,
            mode: None,
            discarding: false,
            dropped: 0,
        }
    }

    /// Extract every complete frame at the front of `buf` into `out`,
    /// draining consumed bytes. Remaining bytes are a partial frame and stay
    /// buffered for the next read. Errors are unrecoverable for the
    /// connection.
    pub fn drain(&mut self, buf: &mut Vec<u8>, out: &mut Vec<String>) -> Result<(), FrameError> {
        let mut pos = 0usize;
        let res = self.drain_from(buf, &mut pos, out);
        buf.drain(..pos);
        res
    }

    fn drain_from(
        &mut self,
        buf: &[u8],
        pos: &mut usize,
        out: &mut Vec<String>,
    ) -> Result<(), FrameError> {
        loop {
            let rest = &buf[*pos..];
            if rest.is_empty() {
                return Ok(());
            }
            if self.mode.is_none() {
                // Sticky auto-detect on the first byte of the connection.
                self.mode = Some(if rest[0].is_ascii_digit() {
                    Mode::OctetCounted
                } else {
                    Mode::LineDelimited
                });
            }
            match self.mode.unwrap() {
                Mode::OctetCounted => {
                    // Header: 1..=10 ASCII digits then a single SP.
                    let mut digits = 0usize;
                    while digits < rest.len() && rest[digits].is_ascii_digit() {
                        digits += 1;
                        if digits > 10 {
                            return Err(FrameError::BadOctetHeader);
                        }
                    }
                    if digits == rest.len() {
                        return Ok(()); // header still arriving
                    }
                    if digits == 0 || rest[digits] != b' ' {
                        return Err(FrameError::BadOctetHeader);
                    }
                    let declared: u64 = std::str::from_utf8(&rest[..digits])
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or(FrameError::BadOctetHeader)?;
                    if declared as usize > self.max_frame {
                        return Err(FrameError::OversizedFrame {
                            declared,
                            max: self.max_frame,
                        });
                    }
                    let body_start = digits + 1;
                    let body_end = body_start + declared as usize;
                    if rest.len() < body_end {
                        return Ok(()); // body still arriving
                    }
                    out.push(to_message(&rest[body_start..body_end]));
                    *pos += body_end;
                }
                Mode::LineDelimited => {
                    match rest.iter().position(|&b| b == b'\n') {
                        Some(nl) => {
                            if self.discarding {
                                self.discarding = false;
                            } else if nl > self.max_frame {
                                self.dropped += 1;
                            } else if nl > 0 {
                                out.push(to_message(&rest[..nl]));
                            }
                            // Empty lines between frames are ignored.
                            *pos += nl + 1;
                        }
                        None => {
                            if self.discarding {
                                // Still inside an oversized line: throw the
                                // bytes away, keep waiting for the LF.
                                *pos += rest.len();
                            } else if rest.len() > self.max_frame {
                                // Oversized line: drop buffered bytes now and
                                // keep discarding until the next LF.
                                self.discarding = true;
                                self.dropped += 1;
                                *pos += rest.len();
                            }
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// Bytes still buffered at disconnect form an incomplete frame. A torn
    /// frame is sender-crash garbage — emitting half a message would mint a
    /// bogus template downstream — so it is discarded and counted, never
    /// flushed.
    pub fn finish(&mut self, buf: &mut Vec<u8>) -> u64 {
        let torn = if buf.is_empty() && !self.discarding {
            0
        } else {
            1
        };
        self.dropped += torn;
        buf.clear();
        self.discarding = false;
        torn
    }
}

/// Complete frame bytes -> message string: lossy UTF-8, trailing CR/LF
/// trimmed (octet-counted senders often include the newline in the count).
fn to_message(frame: &[u8]) -> String {
    let mut end = frame.len();
    while end > 0 && (frame[end - 1] == b'\n' || frame[end - 1] == b'\r') {
        end -= 1;
    }
    let mut start = 0;
    // Trim a single leading CR left over from CRLF line endings.
    while start < end && frame[start] == b'\r' {
        start += 1;
    }
    String::from_utf8_lossy(&frame[start..end]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(dec: &mut FrameDecoder, buf: &mut Vec<u8>, bytes: &[u8]) -> Vec<String> {
        buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        dec.drain(buf, &mut out).unwrap();
        out
    }

    #[test]
    fn lf_framing_basic() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        let got = feed(&mut dec, &mut buf, b"<13>hello\n<13>world\n");
        assert_eq!(got, vec!["<13>hello", "<13>world"]);
        assert!(buf.is_empty());
    }

    #[test]
    fn lf_partial_line_waits_for_more_bytes() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        assert!(feed(&mut dec, &mut buf, b"<13>par").is_empty());
        let got = feed(&mut dec, &mut buf, b"tial\n");
        assert_eq!(got, vec!["<13>partial"]);
    }

    #[test]
    fn octet_counting_basic_and_split_header() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        // "9 <13>hello" : 9 bytes of body.
        let got = feed(&mut dec, &mut buf, b"9 <13>hello5 <13>a");
        assert_eq!(got, vec!["<13>hello", "<13>a"]);

        // Header split across reads: digits only, then the rest.
        assert!(feed(&mut dec, &mut buf, b"1").is_empty());
        let got = feed(&mut dec, &mut buf, b"0 <13>again!");
        assert_eq!(got, vec!["<13>again!"]);
    }

    #[test]
    fn octet_count_includes_trailing_newline_trimmed() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        let got = feed(&mut dec, &mut buf, b"10 <13>hello\n");
        assert_eq!(got, vec!["<13>hello"]);
    }

    #[test]
    fn torn_utf8_across_buffer_boundary_reassembles() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        let msg = "<13>temp 30\u{00b0}C rising"; // multi-byte degree sign
        let bytes = format!("{msg}\n").into_bytes();
        // Split inside the 2-byte UTF-8 sequence.
        let split = bytes.iter().position(|&b| b == 0xc2).unwrap() + 1;
        assert!(feed(&mut dec, &mut buf, &bytes[..split]).is_empty());
        let got = feed(&mut dec, &mut buf, &bytes[split..]);
        assert_eq!(got, vec![msg]);
    }

    #[test]
    fn oversized_octet_header_is_fatal() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = b"99999999999 x".to_vec(); // 11 digits
        let mut out = Vec::new();
        assert_eq!(
            dec.drain(&mut buf, &mut out),
            Err(FrameError::BadOctetHeader)
        );
    }

    #[test]
    fn oversized_declared_frame_is_fatal() {
        let mut dec = FrameDecoder::new(64);
        let mut buf = b"4096 ".to_vec();
        let mut out = Vec::new();
        assert_eq!(
            dec.drain(&mut buf, &mut out),
            Err(FrameError::OversizedFrame {
                declared: 4096,
                max: 64
            })
        );
    }

    #[test]
    fn digits_then_garbage_is_a_bad_header() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = b"12x oops".to_vec();
        let mut out = Vec::new();
        assert_eq!(
            dec.drain(&mut buf, &mut out),
            Err(FrameError::BadOctetHeader)
        );
    }

    #[test]
    fn oversized_lf_line_is_dropped_not_fatal() {
        let mut dec = FrameDecoder::new(8);
        let mut buf = Vec::new();
        let got = feed(
            &mut dec,
            &mut buf,
            b"<13>this line is far too long\n<13>ok\n",
        );
        assert_eq!(got, vec!["<13>ok"]);
        assert_eq!(dec.dropped, 1);

        // Oversized line spanning multiple reads: discard state persists.
        assert!(feed(&mut dec, &mut buf, b"<13>aaaaaaaaaaaaaaaa").is_empty());
        assert!(feed(&mut dec, &mut buf, b"bbbbbbbb\n").is_empty());
        let got = feed(&mut dec, &mut buf, b"<13>ok2\n");
        assert_eq!(got, vec!["<13>ok2"]);
        assert_eq!(dec.dropped, 2);
    }

    #[test]
    fn mid_line_disconnect_discards_the_partial_frame() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        let got = feed(&mut dec, &mut buf, b"<13>complete\n<13>torn-mid-");
        assert_eq!(got, vec!["<13>complete"]);
        assert_eq!(dec.finish(&mut buf), 1);
        assert!(buf.is_empty());

        // A clean disconnect (buffer empty) counts nothing.
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        feed(&mut dec, &mut buf, b"<13>done\n");
        assert_eq!(dec.finish(&mut buf), 0);
    }

    #[test]
    fn mid_frame_disconnect_in_octet_mode_discards() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        assert!(feed(&mut dec, &mut buf, b"100 <13>only-the-start").is_empty());
        assert_eq!(dec.finish(&mut buf), 1);
    }

    #[test]
    fn crlf_lines_are_trimmed() {
        let mut dec = FrameDecoder::new(1024);
        let mut buf = Vec::new();
        let got = feed(&mut dec, &mut buf, b"<13>one\r\n<13>two\r\n");
        assert_eq!(got, vec!["<13>one", "<13>two"]);
    }
}
