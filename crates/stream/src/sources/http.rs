//! HTTP bulk-ingest source: `POST /ingest` with a newline-delimited
//! body, a JSON array of strings (`Content-Type: application/json`), or
//! either of those gzipped (`Content-Encoding: gzip`, decompressed by
//! the vendored [`super::inflate`] — no compression crate).
//!
//! Admission control happens *before* the body is accepted into the
//! pipeline: a `Content-Length` above the configured cap is refused with
//! 413 (the body is discarded, not buffered; the same cap bounds the
//! *decompressed* size of a gzip body), and a body whose line count
//! exceeds the ingest queue's free space is refused with 429 +
//! `Retry-After` so well-behaved clients back off instead of silently
//! losing a prefix of their batch — a bulk POST is all-or-nothing, and a
//! malformed JSON or gzip body rejects whole with 400.

use super::{inflate, Shared, SourceEvent, HTTP_SOURCE};
use crate::metrics::PipelineMetrics;
use crate::net::{AsLoopFd, Handler, Interest, LoopCtx, Next};
use monilog_model::ByteLine;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on the request-head bytes (request line + headers).
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Deadline for receiving the complete request.
const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Deadline for flushing the response.
const WRITE_DEADLINE: Duration = Duration::from_secs(5);

pub(super) struct IngestListener {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl IngestListener {
    pub(super) fn new(listener: TcpListener, shared: Arc<Shared>) -> Self {
        IngestListener { listener, shared }
    }
}

impl Handler for IngestListener {
    fn ready(&mut self, _r: bool, _w: bool, ctx: &mut LoopCtx<'_>) -> Next {
        loop {
            match self.listener.accept() {
                Ok((conn, _peer)) => {
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    PipelineMetrics::add(&self.shared.metrics.sources_connections, 1);
                    let fd = conn.loop_fd();
                    ctx.register(fd, Box::new(IngestConn::new(conn, self.shared.clone())));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Next::Keep,
                Err(_) => return Next::Keep,
            }
        }
    }
}

enum Phase {
    Head,
    /// Reading `remaining` body bytes (accepted request).
    Body {
        remaining: usize,
    },
    /// Discarding `remaining` refused-body bytes before answering, so the
    /// close does not RST the status line away.
    Discard {
        remaining: usize,
    },
    Write {
        since: Instant,
    },
}

struct IngestConn {
    conn: TcpStream,
    shared: Arc<Shared>,
    phase: Phase,
    head: Vec<u8>,
    body: Vec<u8>,
    out: Vec<u8>,
    /// Lines parsed from an accepted body, not yet in the queue.
    pending: VecDeque<ByteLine>,
    accepted: usize,
    opened: Instant,
    /// `Content-Encoding: gzip` on the current request.
    gzip: bool,
    /// `Content-Type: application/json` on the current request: the body
    /// is a JSON array of strings, one log line per element.
    json: bool,
}

impl IngestConn {
    fn new(conn: TcpStream, shared: Arc<Shared>) -> Self {
        IngestConn {
            conn,
            shared,
            phase: Phase::Head,
            head: Vec::with_capacity(512),
            body: Vec::new(),
            out: Vec::new(),
            pending: VecDeque::new(),
            accepted: 0,
            opened: Instant::now(),
            gzip: false,
            json: false,
        }
    }

    fn close(&self) -> Next {
        PipelineMetrics::add(&self.shared.metrics.sources_disconnects, 1);
        Next::Close
    }

    fn respond(&mut self, status: &str, extra_headers: &str, body: &str) {
        self.out = format!(
            "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n{extra_headers}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .into_bytes();
        self.phase = Phase::Write {
            since: Instant::now(),
        };
    }

    fn reject(&mut self, status: &str, extra_headers: &str, body: &str, discard: usize) {
        PipelineMetrics::add(&self.shared.metrics.sources_http_rejected, 1);
        if discard > 0 {
            // Answer only after the refused body has drained past us.
            self.out.clear();
            self.phase = Phase::Discard { remaining: discard };
            self.body.clear();
            let line = format!(
                "HTTP/1.1 {status}\r\nContent-Type: application/json\r\n{extra_headers}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            self.out = line.into_bytes();
        } else {
            self.respond(status, extra_headers, body);
        }
    }

    /// Head is complete: route it.
    fn on_head(&mut self, head_end: usize) {
        let head = String::from_utf8_lossy(&self.head[..head_end]).into_owned();
        let mut lines = head.lines();
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");

        let mut content_length = 0usize;
        let mut encoding_supported = true;
        self.gzip = false;
        self.json = false;
        for l in lines {
            let Some((name, value)) = l.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().unwrap_or(0);
            } else if name.eq_ignore_ascii_case("content-encoding") {
                match value.to_ascii_lowercase().as_str() {
                    "gzip" | "x-gzip" => self.gzip = true,
                    "identity" | "" => {}
                    _ => encoding_supported = false,
                }
            } else if name.eq_ignore_ascii_case("content-type") {
                // Parameters (`; charset=...`) don't change the shape.
                self.json = value
                    .split(';')
                    .next()
                    .unwrap_or("")
                    .trim()
                    .eq_ignore_ascii_case("application/json");
            }
        }

        // Body bytes that already arrived behind the head.
        let trailing = self.head.split_off(head_end);

        match (method, path) {
            ("GET", "/healthz") => self.respond("200 OK", "", "{\"status\":\"ok\"}\n"),
            ("POST", "/ingest") | ("POST", "/") => {
                if !encoding_supported {
                    let already = trailing.len().min(content_length);
                    self.reject(
                        "415 Unsupported Media Type",
                        "",
                        "{\"error\":\"only identity or gzip content-encoding\"}\n",
                        content_length - already,
                    );
                    return;
                }
                if content_length > self.shared.max_http_body_bytes {
                    let already = trailing.len().min(content_length);
                    self.reject(
                        "413 Payload Too Large",
                        "",
                        &format!(
                            "{{\"error\":\"body exceeds {} bytes\"}}\n",
                            self.shared.max_http_body_bytes
                        ),
                        content_length - already,
                    );
                    return;
                }
                self.body = trailing;
                if self.body.len() >= content_length {
                    self.body.truncate(content_length);
                    self.on_body();
                } else {
                    let remaining = content_length - self.body.len();
                    self.phase = Phase::Body { remaining };
                }
            }
            ("POST", _) | ("GET", _) => {
                self.reject(
                    "404 Not Found",
                    "",
                    "{\"error\":\"try POST /ingest or GET /healthz\"}\n",
                    content_length.saturating_sub(trailing.len()),
                );
            }
            _ => {
                self.reject(
                    "405 Method Not Allowed",
                    "",
                    "{\"error\":\"POST newline-delimited lines to /ingest\"}\n",
                    content_length.saturating_sub(trailing.len()),
                );
            }
        }
    }

    /// Body is complete: admission-check the whole batch, then enqueue.
    fn on_body(&mut self) {
        let mut raw = std::mem::take(&mut self.body);
        if self.gzip {
            // The body cap applies to what the pipeline would hold, so
            // the *decompressed* size is capped too — a compression bomb
            // stops inflating at the limit and is refused.
            match inflate::gunzip(&raw, self.shared.max_http_body_bytes) {
                Ok(decompressed) => raw = decompressed,
                Err(inflate::InflateError::TooLarge) => {
                    self.reject(
                        "413 Payload Too Large",
                        "",
                        &format!(
                            "{{\"error\":\"decompressed body exceeds {} bytes\"}}\n",
                            self.shared.max_http_body_bytes
                        ),
                        0,
                    );
                    return;
                }
                Err(e) => {
                    self.reject(
                        "400 Bad Request",
                        "",
                        &format!("{{\"error\":\"invalid gzip body: {e}\"}}\n"),
                        0,
                    );
                    return;
                }
            }
        }
        let lines: Vec<ByteLine> = if self.json {
            // JSON array of strings: one log line per element, decoded
            // into owned lines (escapes make zero-copy slicing moot).
            let text = match std::str::from_utf8(&raw) {
                Ok(text) => text,
                Err(_) => {
                    self.reject(
                        "400 Bad Request",
                        "",
                        "{\"error\":\"json body is not valid utf-8\"}\n",
                        0,
                    );
                    return;
                }
            };
            match parse_json_string_array(text) {
                Ok(items) => items
                    .into_iter()
                    .map(|s| s.trim_end().to_string())
                    .filter(|s| !s.is_empty())
                    .map(ByteLine::from_string)
                    .collect(),
                Err(why) => {
                    self.reject(
                        "400 Bad Request",
                        "",
                        &format!("{{\"error\":\"invalid json body: {why}\"}}\n"),
                        0,
                    );
                    return;
                }
            }
        } else {
            // The whole body becomes one refcounted arrival buffer; each
            // line is a sub-slice sharing it — no per-line allocation.
            // (Invalid UTF-8 is lossy-repaired once, inside `from_bytes`.)
            let body = ByteLine::from_bytes(raw.into());
            body.lines()
                .map(str::trim_end)
                .filter(|l| !l.is_empty())
                .map(|l| body.slice_of(l))
                .collect()
        };
        if lines.len() > self.shared.tx.free() {
            self.reject(
                "429 Too Many Requests",
                "Retry-After: 1\r\n",
                "{\"error\":\"ingest queue saturated, retry with backoff\"}\n",
                0,
            );
            return;
        }
        self.accepted = lines.len();
        self.pending = VecDeque::from(lines);
        if self.flush_lines() {
            self.finish_accept();
        }
        // else: queue filled up between the check and the pushes (another
        // source raced us); keep draining from tick, answer when done.
    }

    /// Returns true once every accepted line is in the queue.
    fn flush_lines(&mut self) -> bool {
        while let Some(line) = self.pending.pop_front() {
            let ev = SourceEvent {
                source: HTTP_SOURCE,
                line,
                cursor: None,
                seq: None,
            };
            if let Err(ev) = self.shared.push_or_apply_policy(ev, true) {
                self.pending.push_front(ev.line);
                return false;
            }
        }
        true
    }

    fn finish_accept(&mut self) {
        let n = self.accepted;
        self.respond("200 OK", "", &format!("{{\"accepted\":{n}}}\n"));
    }

    /// Read for the current phase. Returns `Some(next)` to terminate.
    fn pump_read(&mut self) -> Option<Next> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Phase::Write { .. } = self.phase {
                return None;
            }
            match self.conn.read(&mut chunk) {
                Ok(0) => {
                    // EOF before the request completed: nothing to answer.
                    return match self.phase {
                        Phase::Head | Phase::Body { .. } | Phase::Discard { .. } => {
                            Some(self.close())
                        }
                        Phase::Write { .. } => None,
                    };
                }
                Ok(n) => match &mut self.phase {
                    Phase::Head => {
                        self.head.extend_from_slice(&chunk[..n]);
                        if let Some(end) = find_head_end(&self.head) {
                            self.on_head(end);
                        } else if self.head.len() > MAX_HEAD_BYTES {
                            self.reject(
                                "400 Bad Request",
                                "",
                                "{\"error\":\"request head too large\"}\n",
                                0,
                            );
                        }
                    }
                    Phase::Body { remaining } => {
                        let take = n.min(*remaining);
                        self.body.extend_from_slice(&chunk[..take]);
                        *remaining -= take;
                        if *remaining == 0 {
                            self.on_body();
                        }
                    }
                    Phase::Discard { remaining } => {
                        *remaining = remaining.saturating_sub(n);
                        if *remaining == 0 {
                            self.phase = Phase::Write {
                                since: Instant::now(),
                            };
                        }
                    }
                    Phase::Write { .. } => {}
                },
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return None,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Some(self.close()),
            }
        }
    }

    fn pump_write(&mut self) -> Result<bool, ()> {
        while !self.out.is_empty() {
            match self.conn.write(&self.out) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    self.out.drain(..n);
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(()),
            }
        }
        Ok(true)
    }
}

/// Parse a JSON array of strings — the only JSON shape `/ingest`
/// accepts. Strict by design: the admission contract is all-or-nothing,
/// so the first malformed element rejects the whole body. Small enough
/// to live here rather than pull in a JSON crate.
fn parse_json_string_array(text: &str) -> Result<Vec<String>, &'static str> {
    fn skip_ws(b: &[u8], i: &mut usize) {
        while matches!(b.get(*i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            *i += 1;
        }
    }

    fn hex4(b: &[u8], i: &mut usize) -> Result<u32, &'static str> {
        let hex = b.get(*i..*i + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?;
        *i += 4;
        u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")
    }

    fn parse_string(b: &[u8], i: &mut usize) -> Result<String, &'static str> {
        if b.get(*i) != Some(&b'"') {
            return Err("array elements must be strings");
        }
        *i += 1;
        let mut s: Vec<u8> = Vec::new();
        loop {
            let c = *b.get(*i).ok_or("unterminated string")?;
            *i += 1;
            match c {
                b'"' => {
                    // Raw multi-byte UTF-8 passed through untouched; the
                    // input was validated as UTF-8 before parsing.
                    return String::from_utf8(s).map_err(|_| "invalid utf-8 in string");
                }
                b'\\' => {
                    let e = *b.get(*i).ok_or("unterminated escape")?;
                    *i += 1;
                    let ch = match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        b'u' => {
                            let hi = hex4(b, i)?;
                            if (0xD800..0xDC00).contains(&hi) {
                                if b.get(*i..*i + 2) != Some(b"\\u") {
                                    return Err("lone high surrogate");
                                }
                                *i += 2;
                                let lo = hex4(b, i)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid surrogate pair");
                                }
                                char::from_u32(0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00))
                                    .ok_or("invalid surrogate pair")?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err("lone low surrogate");
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            }
                        }
                        _ => return Err("unknown escape"),
                    };
                    s.extend_from_slice(ch.encode_utf8(&mut [0u8; 4]).as_bytes());
                }
                0x00..=0x1F => return Err("unescaped control character"),
                _ => s.push(c),
            }
        }
    }

    let b = text.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'[') {
        return Err("body is not a JSON array");
    }
    i += 1;
    skip_ws(b, &mut i);
    let mut items = Vec::new();
    if b.get(i) == Some(&b']') {
        i += 1;
    } else {
        loop {
            skip_ws(b, &mut i);
            items.push(parse_string(b, &mut i)?);
            skip_ws(b, &mut i);
            match b.get(i) {
                Some(&b',') => i += 1,
                Some(&b']') => {
                    i += 1;
                    break;
                }
                _ => return Err("expected ',' or ']'"),
            }
        }
    }
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err("trailing data after the array");
    }
    Ok(items)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

impl Handler for IngestConn {
    fn ready(&mut self, readable: bool, _writable: bool, _ctx: &mut LoopCtx<'_>) -> Next {
        if readable {
            if let Some(next) = self.pump_read() {
                return next;
            }
        }
        if let Phase::Write { .. } = self.phase {
            if !self.out.is_empty() || self.pending.is_empty() {
                match self.pump_write() {
                    Ok(true) => return self.close(),
                    Ok(false) => {}
                    Err(()) => return self.close(),
                }
            }
        }
        Next::Keep
    }

    fn tick(&mut self, now: Instant, _ctx: &mut LoopCtx<'_>) -> Next {
        // Accepted batch still waiting on queue space?
        if !self.pending.is_empty() && self.out.is_empty() && self.flush_lines() {
            self.finish_accept();
        }
        match self.phase {
            Phase::Write { since } => {
                match self.pump_write() {
                    Ok(true) => return self.close(),
                    Ok(false) => {}
                    Err(()) => return self.close(),
                }
                if now.duration_since(since) >= WRITE_DEADLINE {
                    return self.close();
                }
            }
            _ => {
                if now.duration_since(self.opened) >= REQUEST_DEADLINE {
                    PipelineMetrics::add(&self.shared.metrics.sources_http_rejected, 1);
                    self.respond(
                        "408 Request Timeout",
                        "",
                        "{\"error\":\"request timed out\"}\n",
                    );
                }
            }
        }
        Next::Keep
    }

    fn interest(&self) -> Interest {
        let writing = matches!(self.phase, Phase::Write { .. }) && !self.out.is_empty();
        Interest {
            read: true,
            write: writing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{MetricsEndpoint, SourceQueue, SourcesConfig, SourcesServer};
    use crate::observe::MetricsRegistry;
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn spawn(queue_capacity: usize) -> (SourcesServer, SourceQueue, SocketAddr) {
        let cfg = SourcesConfig {
            http: Some("127.0.0.1:0".parse().unwrap()),
            queue_capacity,
            max_http_body_bytes: 4096,
            assumed_year: 2026,
            ..SourcesConfig::default()
        };
        let (server, queue) =
            SourcesServer::spawn(cfg, MetricsRegistry::shared_with_shards(1), None, None).unwrap();
        let addr = server.http_addr().unwrap();
        (server, queue, addr)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(
            conn,
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn bulk_post_ingests_every_line() {
        let (_server, queue, addr) = spawn(1024);
        let body = "alpha line\nbeta line\n\ngamma line\n";
        let response = post(addr, "/ingest", body);
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"accepted\":3"), "{response}");
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < 3 && Instant::now() < deadline {
            got.extend(queue.recv_batch(16, Duration::from_millis(20)));
        }
        let lines: Vec<&str> = got.iter().map(|e| e.line.as_str()).collect();
        assert_eq!(lines, vec!["alpha line", "beta line", "gamma line"]);
    }

    /// POST with arbitrary extra headers and a binary body.
    fn post_raw(addr: SocketAddr, extra_headers: &str, body: &[u8]) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(
            conn,
            "POST /ingest HTTP/1.1\r\nHost: t\r\n{extra_headers}Content-Length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        conn.write_all(body).unwrap();
        let mut response = String::new();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.read_to_string(&mut response).unwrap();
        response
    }

    /// A gzip member wrapping one stored deflate block — enough to
    /// exercise the whole decode path without a compressor.
    fn gzip_stored(payload: &[u8]) -> Vec<u8> {
        let mut g = vec![0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 255];
        g.push(0x01); // BFINAL=1, BTYPE=stored
        g.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        g.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        g.extend_from_slice(payload);
        g.extend_from_slice(&monilog_model::codec::crc32(payload).to_le_bytes());
        g.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        g
    }

    fn drain(queue: &SourceQueue, want: usize) -> Vec<String> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < want && Instant::now() < deadline {
            got.extend(
                queue
                    .recv_batch(16, Duration::from_millis(20))
                    .into_iter()
                    .map(|e| e.line.as_str().to_string()),
            );
        }
        got
    }

    #[test]
    fn gzip_body_ingests_after_inflation() {
        let (_server, queue, addr) = spawn(1024);
        let body = gzip_stored(b"gz alpha\ngz beta\n");
        let response = post_raw(addr, "Content-Encoding: gzip\r\n", &body);
        assert!(response.contains("\"accepted\":2"), "{response}");
        assert_eq!(drain(&queue, 2), vec!["gz alpha", "gz beta"]);
    }

    #[test]
    fn corrupt_gzip_gets_400_all_or_nothing() {
        let (_server, queue, addr) = spawn(1024);
        let mut body = gzip_stored(b"one\ntwo\n");
        let crc_at = body.len() - 8;
        body[crc_at] ^= 0xFF;
        let response = post_raw(addr, "Content-Encoding: gzip\r\n", &body);
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(queue.recv_batch(16, Duration::from_millis(100)).is_empty());
    }

    #[test]
    fn json_array_body_ingests_each_element() {
        let (_server, queue, addr) = spawn(1024);
        let body = br#"[ "json one", "json two\twith tab", "", "json three" ]"#;
        let response = post_raw(addr, "Content-Type: application/json\r\n", body);
        assert!(response.contains("\"accepted\":3"), "{response}");
        assert_eq!(
            drain(&queue, 3),
            vec!["json one", "json two\twith tab", "json three"]
        );
    }

    #[test]
    fn gzipped_json_combines_both_layers() {
        let (_server, queue, addr) = spawn(1024);
        let body = gzip_stored(br#"["deep one","deep two"]"#);
        let response = post_raw(
            addr,
            "Content-Type: application/json\r\nContent-Encoding: gzip\r\n",
            &body,
        );
        assert!(response.contains("\"accepted\":2"), "{response}");
        assert_eq!(drain(&queue, 2), vec!["deep one", "deep two"]);
    }

    #[test]
    fn malformed_json_gets_400() {
        let (_server, queue, addr) = spawn(1024);
        for body in [
            &br#"{"not":"an array"}"#[..],
            br#"["unterminated"#,
            br#"[1, 2, 3]"#,
            br#"["ok"] trailing"#,
        ] {
            let response = post_raw(addr, "Content-Type: application/json\r\n", body);
            assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        }
        assert!(queue.recv_batch(16, Duration::from_millis(100)).is_empty());
    }

    #[test]
    fn unsupported_encoding_gets_415() {
        let (_server, queue, addr) = spawn(1024);
        let response = post_raw(addr, "Content-Encoding: br\r\n", b"whatever\n");
        assert!(response.starts_with("HTTP/1.1 415"), "{response}");
        assert!(queue.recv_batch(16, Duration::from_millis(100)).is_empty());
    }

    #[test]
    fn json_escapes_decode() {
        assert_eq!(
            super::parse_json_string_array(r#"["a\nb", "Aé", "😀"]"#).unwrap(),
            vec!["a\nb".to_string(), "Aé".to_string(), "😀".to_string()]
        );
        assert!(super::parse_json_string_array(r#"["\ud83d"]"#).is_err());
        assert!(super::parse_json_string_array("[\"ctrl\u{1}\"]").is_err());
    }

    #[test]
    fn oversized_body_gets_413_without_buffering() {
        let (_server, queue, addr) = spawn(1024);
        let body = "x".repeat(8192); // over the 4096 cap
        let response = post(addr, "/ingest", &body);
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        assert!(queue.recv_batch(16, Duration::from_millis(100)).is_empty());
    }

    #[test]
    fn saturated_queue_gets_429_all_or_nothing() {
        let (_server, queue, addr) = spawn(4);
        let body = (0..32).map(|i| format!("line {i}\n")).collect::<String>();
        let response = post(addr, "/ingest", &body);
        assert!(response.starts_with("HTTP/1.1 429"), "{response}");
        assert!(response.contains("Retry-After: 1"), "{response}");
        // All-or-nothing: no partial prefix leaked into the queue.
        assert!(queue.recv_batch(16, Duration::from_millis(100)).is_empty());
    }

    #[test]
    fn healthz_and_404() {
        let (_server, _queue, addr) = spawn(16);
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");

        let response = post(addr, "/elsewhere", "body\n");
        assert!(response.starts_with("HTTP/1.1 404"), "{response}");
    }

    #[test]
    fn sources_and_metrics_coexist_under_one_spawn() {
        // The tentpole claim in miniature: ingest + scrape on one loop.
        let cfg = SourcesConfig {
            http: Some("127.0.0.1:0".parse().unwrap()),
            queue_capacity: 64,
            assumed_year: 2026,
            ..SourcesConfig::default()
        };
        let registry = MetricsRegistry::shared_with_shards(1);
        let (server, queue) = SourcesServer::spawn(
            cfg,
            Arc::clone(&registry),
            None,
            Some(MetricsEndpoint {
                addr: "127.0.0.1:0".parse().unwrap(),
                interval: Duration::from_millis(50),
                tracer: None,
                ops: None,
            }),
        )
        .unwrap();
        let response = post(server.http_addr().unwrap(), "/ingest", "one line\n");
        assert!(response.contains("\"accepted\":1"), "{response}");
        let got = queue.recv_batch(4, Duration::from_secs(2));
        assert_eq!(got.len(), 1);

        let mut conn = TcpStream::connect(server.metrics_addr().unwrap()).unwrap();
        write!(conn, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("monilog_sources_lines_total 1"),
            "{response}"
        );
    }
}
