//! Minimal decode-only DEFLATE (RFC 1951) and gzip (RFC 1952) support
//! for the HTTP ingest path, so `POST /ingest` can accept
//! `Content-Encoding: gzip` bodies without pulling in a compression
//! crate. Stored, fixed-Huffman and dynamic-Huffman blocks are all
//! handled; output is capped by the caller's admission limit so a
//! compression bomb is refused before it inflates past the body cap.

use monilog_model::codec::crc32;

/// Decompression failure: a malformed stream, a truncated stream, or an
/// output that would exceed the admission cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InflateError {
    /// The stream ended before the final block completed.
    Truncated,
    /// Structurally invalid data (bad block type, bad Huffman code,
    /// distance past the start of output, bad gzip header/trailer).
    Corrupt(&'static str),
    /// Decompressed output exceeded the caller's limit.
    TooLarge,
}

impl std::fmt::Display for InflateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InflateError::Truncated => write!(f, "truncated deflate stream"),
            InflateError::Corrupt(what) => write!(f, "corrupt deflate stream: {what}"),
            InflateError::TooLarge => write!(f, "decompressed body exceeds the admission cap"),
        }
    }
}

impl std::error::Error for InflateError {}

/// LSB-first bit reader over the compressed stream.
struct BitReader<'a> {
    data: &'a [u8],
    /// Next unread byte.
    pos: usize,
    /// Bits consumed from `data[pos]` (0..8).
    bit: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            bit: 0,
        }
    }

    fn take(&mut self, count: u32) -> Result<u32, InflateError> {
        debug_assert!(count <= 16);
        let mut value = 0u32;
        for i in 0..count {
            let byte = *self.data.get(self.pos).ok_or(InflateError::Truncated)?;
            value |= (((byte >> self.bit) & 1) as u32) << i;
            self.bit += 1;
            if self.bit == 8 {
                self.bit = 0;
                self.pos += 1;
            }
        }
        Ok(value)
    }

    /// Discard partial bits and return the next whole-byte position.
    fn align(&mut self) -> usize {
        if self.bit != 0 {
            self.bit = 0;
            self.pos += 1;
        }
        self.pos
    }
}

/// A canonical Huffman decoder in the zlib "counts + symbols" form.
struct Huffman {
    /// counts[len] = number of codes of bit length `len` (index 0 unused).
    counts: [u16; 16],
    /// Symbols sorted by (code length, symbol value).
    symbols: Vec<u16>,
}

impl Huffman {
    fn new(lengths: &[u8]) -> Result<Huffman, InflateError> {
        let mut counts = [0u16; 16];
        for &len in lengths {
            counts[len as usize] += 1;
        }
        if counts[0] as usize == lengths.len() {
            return Err(InflateError::Corrupt("huffman table with no codes"));
        }
        // An over-subscribed code set can send the decoder out of bounds.
        let mut left = 1i32;
        for &count in &counts[1..] {
            left = (left << 1) - count as i32;
            if left < 0 {
                return Err(InflateError::Corrupt("over-subscribed huffman code"));
            }
        }
        let mut offsets = [0u16; 16];
        for len in 1..15 {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    fn decode(&self, bits: &mut BitReader<'_>) -> Result<u16, InflateError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..16 {
            code |= bits.take(1)? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + code - first) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(InflateError::Corrupt("huffman code past 15 bits"))
    }
}

const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LENGTH_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Order in which code-length code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

fn push(out: &mut Vec<u8>, byte: u8, limit: usize) -> Result<(), InflateError> {
    if out.len() >= limit {
        return Err(InflateError::TooLarge);
    }
    out.push(byte);
    Ok(())
}

/// Decode one Huffman-coded block body into `out`.
fn inflate_block(
    bits: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    limit: usize,
    lit: &Huffman,
    dist: &Huffman,
) -> Result<(), InflateError> {
    loop {
        let symbol = lit.decode(bits)?;
        match symbol {
            0..=255 => push(out, symbol as u8, limit)?,
            256 => return Ok(()),
            257..=285 => {
                let idx = (symbol - 257) as usize;
                let length = LENGTH_BASE[idx] as usize + bits.take(LENGTH_EXTRA[idx])? as usize;
                let dsym = dist.decode(bits)? as usize;
                if dsym >= 30 {
                    return Err(InflateError::Corrupt("invalid distance symbol"));
                }
                let distance = DIST_BASE[dsym] as usize + bits.take(DIST_EXTRA[dsym])? as usize;
                if distance > out.len() {
                    return Err(InflateError::Corrupt("distance before start of output"));
                }
                for _ in 0..length {
                    let byte = out[out.len() - distance];
                    push(out, byte, limit)?;
                }
            }
            _ => return Err(InflateError::Corrupt("invalid literal/length symbol")),
        }
    }
}

/// Build the literal/length + distance tables for a dynamic block
/// (RFC 1951 §3.2.7).
fn dynamic_tables(bits: &mut BitReader<'_>) -> Result<(Huffman, Huffman), InflateError> {
    let hlit = bits.take(5)? as usize + 257;
    let hdist = bits.take(5)? as usize + 1;
    let hclen = bits.take(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(InflateError::Corrupt("dynamic table counts out of range"));
    }
    let mut clen_lengths = [0u8; 19];
    for &slot in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[slot] = bits.take(3)? as u8;
    }
    let clen = Huffman::new(&clen_lengths)?;
    let mut lengths = Vec::with_capacity(hlit + hdist);
    while lengths.len() < hlit + hdist {
        let symbol = clen.decode(bits)?;
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let &prev = lengths
                    .last()
                    .ok_or(InflateError::Corrupt("repeat with no previous length"))?;
                for _ in 0..3 + bits.take(2)? {
                    lengths.push(prev);
                }
            }
            17 => lengths.extend(std::iter::repeat_n(0u8, 3 + bits.take(3)? as usize)),
            18 => lengths.extend(std::iter::repeat_n(0u8, 11 + bits.take(7)? as usize)),
            _ => return Err(InflateError::Corrupt("invalid code-length symbol")),
        }
    }
    if lengths.len() != hlit + hdist {
        return Err(InflateError::Corrupt("code lengths overrun the table"));
    }
    if lengths[256] == 0 {
        return Err(InflateError::Corrupt("no end-of-block code"));
    }
    let lit = Huffman::new(&lengths[..hlit])?;
    let dist = Huffman::new(&lengths[hlit..])?;
    Ok((lit, dist))
}

/// The fixed-Huffman tables (RFC 1951 §3.2.6), built on demand — the
/// ingest path decompresses at most one body per request, so there is
/// nothing to cache across.
fn fixed_tables() -> (Huffman, Huffman) {
    let mut lengths = [0u8; 288];
    lengths[..144].fill(8);
    lengths[144..256].fill(9);
    lengths[256..280].fill(7);
    lengths[280..].fill(8);
    let lit = Huffman::new(&lengths).expect("fixed literal table");
    let dist = Huffman::new(&[5u8; 30]).expect("fixed distance table");
    (lit, dist)
}

/// Decompress a raw DEFLATE stream. `limit` caps the output size.
pub fn inflate(data: &[u8], limit: usize) -> Result<Vec<u8>, InflateError> {
    let mut bits = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let last = bits.take(1)? == 1;
        match bits.take(2)? {
            0 => {
                // Stored: length + one's complement, then raw bytes.
                let start = bits.align();
                let header = data.get(start..start + 4).ok_or(InflateError::Truncated)?;
                let len = u16::from_le_bytes([header[0], header[1]]) as usize;
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if nlen != !(len as u16) {
                    return Err(InflateError::Corrupt("stored length check failed"));
                }
                let body = data
                    .get(start + 4..start + 4 + len)
                    .ok_or(InflateError::Truncated)?;
                if out.len() + len > limit {
                    return Err(InflateError::TooLarge);
                }
                out.extend_from_slice(body);
                bits.pos = start + 4 + len;
            }
            1 => {
                let (lit, dist) = fixed_tables();
                inflate_block(&mut bits, &mut out, limit, &lit, &dist)?;
            }
            2 => {
                let (lit, dist) = dynamic_tables(&mut bits)?;
                inflate_block(&mut bits, &mut out, limit, &lit, &dist)?;
            }
            _ => return Err(InflateError::Corrupt("reserved block type")),
        }
        if last {
            return Ok(out);
        }
    }
}

/// Decompress a gzip member: header, deflate body, CRC-32 + length
/// trailer. Multi-member files are rejected — an ingest body is one
/// member.
pub fn gunzip(data: &[u8], limit: usize) -> Result<Vec<u8>, InflateError> {
    if data.len() < 18 {
        return Err(InflateError::Truncated);
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err(InflateError::Corrupt("bad gzip magic"));
    }
    if data[2] != 8 {
        return Err(InflateError::Corrupt("unsupported gzip method"));
    }
    let flags = data[3];
    if flags & 0xE0 != 0 {
        return Err(InflateError::Corrupt("reserved gzip flags set"));
    }
    // Skip MTIME (4), XFL, OS.
    let mut pos = 10usize;
    if flags & 0x04 != 0 {
        // FEXTRA: u16 length + payload.
        let len = data.get(pos..pos + 2).ok_or(InflateError::Truncated)?;
        pos += 2 + u16::from_le_bytes([len[0], len[1]]) as usize;
    }
    for flag in [0x08u8, 0x10] {
        // FNAME / FCOMMENT: zero-terminated strings.
        if flags & flag != 0 {
            let rest = data.get(pos..).ok_or(InflateError::Truncated)?;
            let nul = rest
                .iter()
                .position(|&b| b == 0)
                .ok_or(InflateError::Truncated)?;
            pos += nul + 1;
        }
    }
    if flags & 0x02 != 0 {
        // FHCRC: 2-byte header checksum.
        pos += 2;
    }
    if pos + 8 > data.len() {
        return Err(InflateError::Truncated);
    }
    let body = &data[pos..data.len() - 8];
    let out = inflate(body, limit)?;
    let trailer = &data[data.len() - 8..];
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if out.len() as u32 != want_len {
        return Err(InflateError::Corrupt("gzip length trailer mismatch"));
    }
    if crc32(&out) != want_crc {
        return Err(InflateError::Corrupt("gzip crc mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `python3 -c "import gzip; print(list(gzip.compress(b'hello hello hello\n', mtime=0)))"`
    const GZ_HELLO: [u8; 29] = [
        31, 139, 8, 0, 0, 0, 0, 0, 2, 3, 203, 72, 205, 201, 201, 87, 200, 64, 144, 92, 0, 59, 124,
        138, 223, 18, 0, 0, 0,
    ];

    /// 40 copies of a 46-byte log line, gzipped the same way — long
    /// enough that CPython emits a dynamic-Huffman block.
    const GZ_REPEATED: [u8; 81] = [
        31, 139, 8, 0, 0, 0, 0, 0, 2, 3, 51, 50, 48, 50, 209, 53, 48, 4, 34, 133, 226, 178, 100, 5,
        79, 63, 55, 127, 133, 162, 212, 194, 210, 212, 226, 18, 5, 67, 133, 140, 196, 188, 148,
        156, 212, 20, 133, 204, 60, 5, 35, 133, 220, 98, 46, 163, 81, 213, 163, 170, 71, 85, 143,
        170, 30, 85, 61, 170, 122, 68, 170, 6, 0, 5, 102, 32, 41, 48, 7, 0, 0,
    ];

    #[test]
    fn gunzip_known_vector() {
        let out = gunzip(&GZ_HELLO, 1024).unwrap();
        assert_eq!(out, b"hello hello hello\n");
    }

    #[test]
    fn gunzip_repeated_lines() {
        let want = b"2024-01-01 svc INFO request 1 handled in 2 ms\n".repeat(40);
        let out = gunzip(&GZ_REPEATED, 4096).unwrap();
        assert_eq!(out, want);
    }

    #[test]
    fn stored_block_round_trip() {
        // A hand-assembled stored block: BFINAL=1, BTYPE=00, aligned
        // LEN/NLEN, then the raw bytes.
        let payload = b"raw stored bytes";
        let mut stream = vec![0x01]; // BFINAL=1, BTYPE=00, then align
        stream.extend_from_slice(&(payload.len() as u16).to_le_bytes());
        stream.extend_from_slice(&(!(payload.len() as u16)).to_le_bytes());
        stream.extend_from_slice(payload);
        assert_eq!(inflate(&stream, 1024).unwrap(), payload);
    }

    #[test]
    fn output_limit_is_enforced() {
        assert_eq!(gunzip(&GZ_HELLO, 4), Err(InflateError::TooLarge));
    }

    #[test]
    fn trailer_corruption_is_detected() {
        let mut bad = GZ_HELLO;
        let crc_at = bad.len() - 8;
        bad[crc_at] ^= 0xFF;
        assert_eq!(
            gunzip(&bad, 1024),
            Err(InflateError::Corrupt("gzip crc mismatch"))
        );
    }

    #[test]
    fn garbage_never_panics() {
        // Deterministic pseudo-random garbage must error, not panic or
        // loop: the ingest path feeds this attacker-controlled bytes.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in [0usize, 1, 2, 10, 18, 64, 512] {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                data.push((state >> 33) as u8);
            }
            let _ = gunzip(&data, 4096);
            let _ = inflate(&data, 4096);
            // Same garbage wearing a valid gzip magic.
            if data.len() >= 4 {
                data[0] = 0x1F;
                data[1] = 0x8B;
                data[2] = 8;
                data[3] = 0;
                let _ = gunzip(&data, 4096);
            }
        }
    }
}
